//! [`LiveEngine`]: open-ended, one-event-at-a-time driving of the
//! packing engine — the in-memory core of a dispatch *service*.
//!
//! The batch [`Engine`](crate::Engine) replays a complete
//! [`Instance`] whose departures are known up front. A serving process
//! cannot do that: items arrive and depart over the wire, the future is
//! unknown, and the run never "finishes". `LiveEngine` wraps the same
//! engine step functions ([`Engine::step_arrive`] /
//! [`Engine::step_depart`](crate::engine::Engine::step_depart)) behind
//! an incremental API, so a live run that receives the batch timeline's
//! events in timeline order produces **bit-identical** state — the
//! conformance harness's layer 8 holds it to that.
//!
//! # Time discipline
//!
//! The paper's equal-tick rule (§2.1) — at one tick, all departures are
//! processed before any arrival — is a property of the *feed*, not of
//! the engine. In [`TimeMode::Strict`] the live engine enforces it:
//! timestamps must be non-decreasing, and a departure at the current
//! tick is rejected once an arrival has been processed at that tick.
//! [`TimeMode::Clamp`] instead clamps early timestamps up to the
//! current tick (`t ← max(t, now)`), accepts equal-tick departures
//! after arrivals, and gives zero-duration items (arrive and depart at
//! one timestamp — common in dirty wall-clock feeds) the minimum
//! one-tick stay by clamping the departure to `arrival + 1` — useful
//! for feeds that cannot promise canonical order, at the price of
//! batch reachability.
//!
//! # Clairvoyance
//!
//! Live items have unknown departure times, so the clairvoyant policy
//! kinds (`DurationClassFirstFit`, `AlignedFit`) are rejected at
//! construction ([`LiveError::Clairvoyant`]). All non-clairvoyant
//! policies honor the documented contract of never reading
//! `Item::departure`; internally a live item carries `Time::MAX` as a
//! placeholder until its departure is announced.
//!
//! # Construction and repacking
//!
//! [`LiveRequest`] is the construction path — capacity, trace and time
//! modes, an owned [`Observer`], and a [`RepackPolicy`]. With repacking
//! attached, a departure may additionally *migrate* bounded numbers of
//! still-active items to drain nearly-empty bins (see
//! [`crate::repack`]); the executed moves come back in
//! [`LiveDeparture::migrations`] and as
//! [`Migrate`](dvbp_obs::ObsEvent) observer events.
//! [`RepackPolicy::NoRepack`] (the default) keeps the engine exactly on
//! the paper's irrevocable model.

use crate::bin::BinId;
use crate::engine::{Engine, Packing, TraceEvent, TraceMode};
use crate::item::{Instance, Item};
use crate::policy::{Policy, PolicyKind};
use crate::repack::RepackPolicy;
use crate::request::PackError;
use dvbp_dimvec::DimVec;
use dvbp_obs::{NoopObserver, Observer};
use dvbp_sim::timeline::{Event, OnlineTimeline};
use dvbp_sim::{Cost, Time};

/// How a [`LiveEngine`] treats request timestamps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TimeMode {
    /// Reject anything the batch timeline could not produce: ticks must
    /// be non-decreasing ([`LiveError::OutOfOrder`]) and, within one
    /// tick, all departures must precede the first arrival
    /// ([`LiveError::EqualTickOrder`]). Keeps the live run on the batch
    /// engine's reachable-state manifold — required for conformance
    /// and recovery equivalence.
    #[default]
    Strict,
    /// Clamp early timestamps up to the current tick (`t ← max(t,
    /// now)`) instead of rejecting, and accept equal-tick departures
    /// after arrivals. A departure clamped onto its item's arrival tick
    /// (a zero-duration item) is clamped one tick further, to
    /// `arrival + 1` — the minimum one-tick stay, matching what the
    /// batch engine would charge for the clamped feed. The effective
    /// (clamped) time is journaled and returned, so recovery still
    /// replays deterministically.
    Clamp,
}

impl std::str::FromStr for TimeMode {
    type Err = String;

    /// Parses `strict` or `clamp` (CLI spelling).
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "strict" => Ok(TimeMode::Strict),
            "clamp" => Ok(TimeMode::Clamp),
            _ => Err(format!(
                "unknown time mode {s:?} (expected strict or clamp)"
            )),
        }
    }
}

/// A rejected live operation. The engine state is unchanged by any
/// rejected call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LiveError {
    /// The arrival failed the same validation an [`Instance`] gets
    /// (dimension mismatch, oversized, zero size, or an unusable
    /// timestamp).
    Pack(PackError),
    /// The policy kind needs announced durations, which a live feed
    /// does not have.
    Clairvoyant {
        /// Display name of the rejected policy.
        policy: String,
    },
    /// Strict mode: the timestamp precedes the engine's current tick.
    OutOfOrder {
        /// The rejected timestamp.
        time: Time,
        /// The engine's current tick.
        now: Time,
    },
    /// Strict mode: a departure at the current tick after an arrival
    /// was already processed at that tick (the paper orders equal-tick
    /// departures first).
    EqualTickOrder {
        /// The rejected timestamp.
        time: Time,
    },
    /// Departure for an item index that never arrived.
    UnknownItem {
        /// The unknown index.
        item: usize,
    },
    /// A streamed feed re-used an item index that is already placed.
    /// Live feeds assign their own dense indices, so this only arises
    /// on the [`EventSource`](crate::EventSource) paths
    /// ([`Engine::run_source`](crate::Engine::run_source) /
    /// [`LiveEngine::drive_source`]), whose items carry caller-chosen
    /// indices.
    DuplicateArrival {
        /// The repeated index.
        item: usize,
    },
    /// Departure for an item that already departed.
    AlreadyDeparted {
        /// The repeated index.
        item: usize,
    },
    /// [`LiveEngine::into_packing`] with items still active.
    StillActive {
        /// Number of items not yet departed.
        active: usize,
    },
    /// [`LiveRequest::build`] without a [`capacity`](LiveRequest::capacity).
    NoCapacity,
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::Pack(e) => write!(f, "{e}"),
            LiveError::Clairvoyant { policy } => {
                write!(
                    f,
                    "policy {policy} is clairvoyant; live items have unknown departures"
                )
            }
            LiveError::OutOfOrder { time, now } => {
                write!(f, "timestamp {time} precedes current tick {now}")
            }
            LiveError::EqualTickOrder { time } => write!(
                f,
                "departure at tick {time} after an arrival at the same tick \
                 (departures precede arrivals within a tick)"
            ),
            LiveError::UnknownItem { item } => write!(f, "item {item} never arrived"),
            LiveError::DuplicateArrival { item } => {
                write!(f, "item {item} already arrived")
            }
            LiveError::AlreadyDeparted { item } => write!(f, "item {item} already departed"),
            LiveError::StillActive { active } => {
                write!(f, "{active} item(s) still active")
            }
            LiveError::NoCapacity => {
                write!(
                    f,
                    "live engine needs a bin capacity (LiveRequest::capacity)"
                )
            }
        }
    }
}

impl std::error::Error for LiveError {}

impl From<PackError> for LiveError {
    fn from(e: PackError) -> Self {
        LiveError::Pack(e)
    }
}

/// Outcome of an accepted [`LiveEngine::arrive`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LivePlacement {
    /// Dense run-local index assigned to the item (arrival order).
    pub item: usize,
    /// The receiving bin.
    pub bin: BinId,
    /// Whether the bin was opened for this item.
    pub opened_new: bool,
    /// The effective tick (equals the request's in strict mode; may be
    /// clamped up in [`TimeMode::Clamp`]).
    pub time: Time,
}

/// Outcome of an accepted [`LiveEngine::depart`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LiveDeparture {
    /// The departing item's run-local index.
    pub item: usize,
    /// The bin it departed from.
    pub bin: BinId,
    /// Whether that departure emptied (and permanently closed) the bin.
    pub closed: bool,
    /// The effective tick.
    pub time: Time,
    /// Migrations the attached [`RepackPolicy`] executed in response, in
    /// execution order. Always empty under [`RepackPolicy::NoRepack`].
    pub migrations: Vec<LiveMigration>,
}

/// One executed repacking move (see [`RepackPolicy`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LiveMigration {
    /// The moved item's run-local index.
    pub item: usize,
    /// The bin it was drained out of.
    pub from: BinId,
    /// The bin it landed in.
    pub to: BinId,
    /// Whether this move emptied (and permanently closed) `from`.
    pub closed_from: bool,
    /// The move's charge under the policy's cost model: `1` for
    /// [`RepackPolicy::DrainOnDepart`], the item's L1 size for
    /// [`RepackPolicy::BudgetedDefrag`].
    pub cost: u64,
}

/// Builder for a [`LiveEngine`] — the single construction path,
/// mirroring [`PackRequest`](crate::PackRequest) for batch runs.
///
/// ```
/// use dvbp_core::{LiveRequest, PolicyKind, RepackPolicy, TimeMode};
/// use dvbp_dimvec::DimVec;
///
/// let mut live = LiveRequest::new(PolicyKind::FirstFit)
///     .capacity(DimVec::from_slice(&[100, 100]))
///     .time_mode(TimeMode::Strict)
///     .repack(RepackPolicy::DrainOnDepart { k: 2 })
///     .build()
///     .unwrap();
/// let placed = live.arrive(DimVec::from_slice(&[60, 20]), 0).unwrap();
/// let gone = live.depart(placed.item, 5).unwrap();
/// assert!(gone.closed);
/// ```
///
/// Unlike `PackRequest`, the observer is **owned** (a live run has no
/// enclosing scope to borrow from); get it back with
/// [`LiveEngine::observer`] / [`LiveEngine::into_parts`].
pub struct LiveRequest<O: Observer = NoopObserver> {
    kind: PolicyKind,
    capacity: Option<DimVec>,
    trace: TraceMode,
    time_mode: TimeMode,
    repack: RepackPolicy,
    observer: O,
    shadow_kinds: Vec<PolicyKind>,
    items_hint: usize,
}

impl LiveRequest<NoopObserver> {
    /// Starts a request for a live engine driven by policy `kind`.
    #[must_use]
    pub fn new(kind: PolicyKind) -> Self {
        LiveRequest {
            kind,
            capacity: None,
            trace: TraceMode::Full,
            time_mode: TimeMode::Strict,
            repack: RepackPolicy::NoRepack,
            observer: NoopObserver,
            shadow_kinds: Vec::new(),
            items_hint: 0,
        }
    }
}

impl<O: Observer> LiveRequest<O> {
    /// Sets the bin capacity vector (required).
    #[must_use]
    pub fn capacity(mut self, capacity: DimVec) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Selects trace recording (default [`TraceMode::Full`]).
    #[must_use]
    pub fn trace_mode(mut self, trace: TraceMode) -> Self {
        self.trace = trace;
        self
    }

    /// Selects the timestamp discipline (default [`TimeMode::Strict`]).
    #[must_use]
    pub fn time_mode(mut self, time_mode: TimeMode) -> Self {
        self.time_mode = time_mode;
        self
    }

    /// Attaches a repacking policy (default [`RepackPolicy::NoRepack`],
    /// which reproduces the irrevocable engine bit for bit).
    #[must_use]
    pub fn repack(mut self, repack: RepackPolicy) -> Self {
        self.repack = repack;
        self
    }

    /// Declares the shadow-policy candidate set for portfolio dispatch
    /// (see the `dvbp-portfolio` crate). The core engine only records
    /// and validates the kinds — clairvoyant candidates are rejected at
    /// [`build`](LiveRequest::build), and duplicates of the live kind
    /// are kept (every candidate gets its own shadow). The portfolio
    /// layer reads them back via [`LiveEngine::shadow_kinds`].
    #[must_use]
    pub fn shadow_policies<I: IntoIterator<Item = PolicyKind>>(mut self, kinds: I) -> Self {
        self.shadow_kinds = kinds.into_iter().collect();
        self
    }

    /// Pre-reserves per-item bookkeeping for an expected stream length.
    /// Purely an optimization: with a hint covering the run, the item
    /// ledger never reallocates in steady state — the portfolio crate's
    /// counting-allocator test drives engines sized this way to prove
    /// shadows add zero steady-state allocations.
    #[must_use]
    pub fn items_hint(mut self, items: usize) -> Self {
        self.items_hint = items;
        self
    }

    /// Attaches an observer, replacing the previous one. The engine
    /// owns it; every arrival, departure, migration, and bin event is
    /// forwarded to it.
    #[must_use]
    pub fn observer<P: Observer>(self, observer: P) -> LiveRequest<P> {
        LiveRequest {
            kind: self.kind,
            capacity: self.capacity,
            trace: self.trace,
            time_mode: self.time_mode,
            repack: self.repack,
            observer,
            shadow_kinds: self.shadow_kinds,
            items_hint: self.items_hint,
        }
    }

    /// Builds the live engine and fires the observer's run-start hook
    /// (`items: 0` — a live run's length is unknown).
    ///
    /// # Errors
    ///
    /// [`LiveError::NoCapacity`] without a capacity;
    /// [`LiveError::Clairvoyant`] for policy kinds that read announced
    /// durations.
    pub fn build(self) -> Result<LiveEngine<O>, LiveError> {
        let Some(capacity) = self.capacity else {
            return Err(LiveError::NoCapacity);
        };
        for kind in std::iter::once(&self.kind).chain(&self.shadow_kinds) {
            if matches!(
                kind,
                PolicyKind::DurationClassFirstFit | PolicyKind::AlignedFit
            ) {
                return Err(LiveError::Clairvoyant {
                    policy: kind.name(),
                });
            }
        }
        let mut policy = self.kind.build();
        policy.reset();
        let mut engine = Engine::new();
        engine.reset_for(capacity.dim(), 0);
        engine.reserve_items(self.items_hint);
        let mut observer = self.observer;
        observer.on_run_start(dvbp_obs::RunStart {
            capacity: capacity.as_slice(),
            items: 0,
        });
        Ok(LiveEngine {
            engine,
            policy,
            kind: self.kind,
            capacity,
            time_mode: self.time_mode,
            repack: self.repack,
            observer,
            full: self.trace == TraceMode::Full,
            items: Vec::with_capacity(self.items_hint),
            departed: Vec::with_capacity(self.items_hint),
            active_items: 0,
            trace: Vec::new(),
            now: 0,
            arrived_this_tick: false,
            active_by_bin: Vec::new(),
            migrations: 0,
            migration_cost: 0,
            closes_since_sweep: 0,
            shadow_kinds: self.shadow_kinds,
            policy_switches: 0,
        })
    }
}

/// An incremental driver over the packing engine: accepts arrivals and
/// departures one at a time, maintains the exact state a batch run over
/// the same event sequence would hold, and can snapshot that state as a
/// [`Packing`] once drained.
///
/// Construct one with [`LiveRequest`]; with a [`RepackPolicy`] attached,
/// departures may additionally migrate items (see
/// [`LiveDeparture::migrations`]).
pub struct LiveEngine<O: Observer = NoopObserver> {
    engine: Engine,
    policy: Box<dyn Policy>,
    kind: PolicyKind,
    capacity: DimVec,
    time_mode: TimeMode,
    repack: RepackPolicy,
    observer: O,
    /// Whether the per-bin item chains / trace are recorded
    /// ([`TraceMode::Full`]).
    full: bool,
    /// Every item ever admitted, by run-local index. Live items hold a
    /// `Time::MAX` departure placeholder (never read by non-clairvoyant
    /// policies); `depart` overwrites it with the real tick.
    items: Vec<Item>,
    departed: Vec<bool>,
    active_items: usize,
    trace: Vec<TraceEvent>,
    now: Time,
    /// Whether an arrival has been processed at tick `now` (strict
    /// equal-tick ordering).
    arrived_this_tick: bool,
    /// Active item indices per bin — the repack planner's drain lists.
    /// Maintained only when `repack.is_enabled()` (empty otherwise).
    active_by_bin: Vec<Vec<usize>>,
    migrations: u64,
    migration_cost: u64,
    /// Natural bin closes since the last defrag sweep.
    closes_since_sweep: u32,
    /// Shadow-policy candidates declared at construction (portfolio
    /// dispatch); the core engine only carries them.
    shadow_kinds: Vec<PolicyKind>,
    /// Accepted [`switch_policy`](LiveEngine::switch_policy) calls.
    policy_switches: u64,
}

impl LiveEngine {
    /// Creates a live engine for `capacity` under `kind` — a shim over
    /// [`LiveRequest`], which is the construction path with the full
    /// option surface ([`RepackPolicy`], owned observers).
    ///
    /// # Errors
    ///
    /// [`LiveError::Clairvoyant`] for policy kinds that read announced
    /// durations.
    pub fn new(
        capacity: DimVec,
        kind: &PolicyKind,
        trace: TraceMode,
        time_mode: TimeMode,
    ) -> Result<Self, LiveError> {
        LiveRequest::new(kind.clone())
            .capacity(capacity)
            .trace_mode(trace)
            .time_mode(time_mode)
            .build()
    }
}

impl<O: Observer> LiveEngine<O> {
    fn effective_time(&self, time: Time) -> Result<Time, LiveError> {
        match self.time_mode {
            TimeMode::Strict if time < self.now => Err(LiveError::OutOfOrder {
                time,
                now: self.now,
            }),
            TimeMode::Strict => Ok(time),
            TimeMode::Clamp => Ok(time.max(self.now)),
        }
    }

    fn advance_tick(&mut self, time: Time) {
        if time > self.now {
            self.arrived_this_tick = false;
        }
        self.now = time;
    }

    /// Admits an item of the given size at `time` and returns its
    /// placement. The item gets the next dense run-local index.
    ///
    /// # Errors
    ///
    /// [`LiveError::Pack`] for an invalid size or unusable timestamp;
    /// [`LiveError::OutOfOrder`] in strict mode for a timestamp before
    /// the current tick. The engine state is unchanged on error.
    pub fn arrive(&mut self, size: DimVec, time: Time) -> Result<LivePlacement, LiveError> {
        let time = self.effective_time(time)?;
        let item = self.items.len();
        if size.dim() != self.capacity.dim() {
            return Err(PackError::DimMismatch { item }.into());
        }
        if !size.fits_within(&self.capacity) {
            return Err(PackError::OversizedItem { item }.into());
        }
        if size.is_zero() {
            return Err(PackError::ZeroSizeItem { item }.into());
        }
        if time == Time::MAX {
            // MAX is the live-departure placeholder; an item arriving
            // there could never have a strictly later departure.
            return Err(PackError::NonMonotoneTime { item }.into());
        }
        // Struct-literal construction (not `Item::new`): the departure
        // is not yet known, so it carries the MAX placeholder that
        // non-clairvoyant policies never read.
        self.items.push(Item {
            size,
            arrival: time,
            departure: Time::MAX,
            announced_duration: None,
        });
        self.departed.push(false);
        let (bin, opened_new) = self.engine.step_arrive(
            &self.capacity,
            time,
            item,
            &self.items[item],
            self.policy.as_mut(),
            &mut self.observer,
            self.full.then_some(&mut self.trace),
        );
        self.active_items += 1;
        if self.repack.is_enabled() {
            if bin.0 >= self.active_by_bin.len() {
                self.active_by_bin.resize_with(bin.0 + 1, Vec::new);
            }
            self.active_by_bin[bin.0].push(item);
        }
        self.advance_tick(time);
        self.arrived_this_tick = true;
        Ok(LivePlacement {
            item,
            bin,
            opened_new,
            time,
        })
    }

    /// Retires the item with run-local index `item` at `time`.
    ///
    /// # Errors
    ///
    /// [`LiveError::UnknownItem`] / [`LiveError::AlreadyDeparted`] for
    /// bad indices; [`LiveError::OutOfOrder`] /
    /// [`LiveError::EqualTickOrder`] for strict-mode time violations;
    /// in strict mode, [`LiveError::Pack`]
    /// ([`PackError::NonMonotoneTime`]) when the tick is not strictly
    /// after the item's arrival (every item occupies at least one
    /// tick). In [`TimeMode::Clamp`] a departure landing on the item's
    /// arrival tick — the zero-duration items real wall-clock feeds
    /// produce — is clamped one tick further, to `arrival + 1`: the
    /// item gets the minimum one-tick stay, so its cost contribution
    /// and any bin-close it triggers match the batch engine packing the
    /// clamped image of the feed (the returned effective tick journals
    /// the clamp, keeping recovery replays deterministic). The engine
    /// state is unchanged on error.
    pub fn depart(&mut self, item: usize, time: Time) -> Result<LiveDeparture, LiveError> {
        self.depart_with_mark(item, time, || {})
    }

    /// [`depart`](LiveEngine::depart) with an observation seam: `mark`
    /// runs after the engine's departure step (and its bookkeeping) and
    /// immediately before the repack policy, letting a latency tracer
    /// charge engine dispatch and repack migrations to separate stages.
    /// `mark` must not touch the engine; it sees no state and runs
    /// exactly once iff the departure succeeds.
    ///
    /// # Errors
    ///
    /// Exactly as [`depart`](LiveEngine::depart).
    pub fn depart_with_mark(
        &mut self,
        item: usize,
        time: Time,
        mark: impl FnOnce(),
    ) -> Result<LiveDeparture, LiveError> {
        let time = self.effective_time(time)?;
        if item >= self.items.len() {
            return Err(LiveError::UnknownItem { item });
        }
        if self.departed[item] {
            return Err(LiveError::AlreadyDeparted { item });
        }
        if self.time_mode == TimeMode::Strict && time == self.now && self.arrived_this_tick {
            return Err(LiveError::EqualTickOrder { time });
        }
        let time = if time <= self.items[item].arrival {
            match self.time_mode {
                TimeMode::Strict => return Err(PackError::NonMonotoneTime { item }.into()),
                // `effective_time` already pulled the tick up to `now ≥
                // arrival`, so this is exactly the zero-duration case:
                // clamp to the minimum one-tick stay. Arrivals at
                // `Time::MAX` are rejected, so the `+ 1` cannot overflow.
                TimeMode::Clamp => self.items[item].arrival + 1,
            }
        } else {
            time
        };
        self.items[item].departure = time;
        let step = self
            .engine
            .step_depart(
                time,
                item,
                &self.items[item],
                self.policy.as_mut(),
                &mut self.observer,
                self.full.then_some(&mut self.trace),
            )
            .expect("checked assignment above");
        self.departed[item] = true;
        self.active_items -= 1;
        if self.repack.is_enabled() {
            self.active_by_bin[step.bin.0].retain(|&i| i != item);
        }
        self.advance_tick(time);
        mark();
        let migrations = self.run_repack(step.bin, step.closed, time);
        Ok(LiveDeparture {
            item,
            bin: step.bin,
            closed: step.closed,
            time,
            migrations,
        })
    }

    /// Runs the attached [`RepackPolicy`] after the departure of an item
    /// from `dep_bin` (which `closed` it or not) at tick `time`, and
    /// returns the executed moves in order.
    fn run_repack(&mut self, dep_bin: BinId, closed: bool, time: Time) -> Vec<LiveMigration> {
        let mut migrations = Vec::new();
        match self.repack {
            RepackPolicy::NoRepack => {}
            RepackPolicy::DrainOnDepart { k } => {
                if !closed && k > 0 {
                    let remaining = self.engine.bin_active(dep_bin.0);
                    if remaining > 0 && remaining <= k {
                        if let Some(plan) = self.plan_drain(dep_bin) {
                            self.execute_drain(time, &plan, true, &mut migrations);
                        }
                    }
                }
            }
            RepackPolicy::BudgetedDefrag { budget, period } => {
                if closed && budget > 0 {
                    self.closes_since_sweep += 1;
                    if self.closes_since_sweep >= period.max(1) {
                        self.closes_since_sweep = 0;
                        self.defrag_sweep(time, budget, &mut migrations);
                    }
                }
            }
        }
        self.migrations += migrations.len() as u64;
        self.migration_cost += migrations.iter().map(|m| m.cost).sum::<u64>();
        migrations
    }

    /// Plans a full drain of `src`: each resident item, in ascending
    /// index order, goes to the first other open bin (ascending id) that
    /// fits it given the residuals left by the earlier planned moves.
    /// All-or-nothing: `None` if any resident has no feasible
    /// destination.
    fn plan_drain(&self, src: BinId) -> Option<Vec<(usize, BinId)>> {
        let d = self.capacity.dim();
        let mut residents: Vec<usize> = self.active_by_bin[src.0].clone();
        residents.sort_unstable();
        // Planned additional load per destination, keyed by bin id.
        let mut extra: Vec<(usize, Vec<u64>)> = Vec::new();
        let mut plan = Vec::with_capacity(residents.len());
        for &it in &residents {
            let size = &self.items[it].size;
            let mut dest = None;
            for &b in self.engine.open_bins() {
                if b == src {
                    continue;
                }
                let load = self.engine.bin_load(b.0);
                let planned = extra.iter().find(|(id, _)| *id == b.0).map(|(_, e)| e);
                let fits = (0..d).all(|j| {
                    let used = load[j] + planned.map_or(0, |e| e[j]);
                    size[j] <= self.capacity[j] - used
                });
                if fits {
                    dest = Some(b);
                    break;
                }
            }
            let b = dest?;
            match extra.iter_mut().find(|(id, _)| *id == b.0) {
                Some((_, e)) => {
                    for j in 0..d {
                        e[j] += size[j];
                    }
                }
                None => extra.push((b.0, size.as_slice().to_vec())),
            }
            plan.push((it, b));
        }
        Some(plan)
    }

    /// Executes a drain plan through [`Engine::step_migrate`], charging
    /// each move `1` (`unit_cost`) or its item's L1 size.
    fn execute_drain(
        &mut self,
        time: Time,
        plan: &[(usize, BinId)],
        unit_cost: bool,
        out: &mut Vec<LiveMigration>,
    ) {
        for &(item, to) in plan {
            let step = self.engine.step_migrate(
                &self.capacity,
                time,
                item,
                &self.items[item],
                to,
                self.policy.as_mut(),
                &mut self.observer,
                self.full.then_some(&mut self.trace),
            );
            self.active_by_bin[step.from.0].retain(|&i| i != item);
            if to.0 >= self.active_by_bin.len() {
                self.active_by_bin.resize_with(to.0 + 1, Vec::new);
            }
            self.active_by_bin[to.0].push(item);
            let cost = if unit_cost {
                1
            } else {
                self.items[item].size.as_slice().iter().sum()
            };
            out.push(LiveMigration {
                item,
                from: step.from,
                to,
                closed_from: step.closed_from,
                cost,
            });
        }
    }

    /// One defragmentation sweep: repeatedly drain the open bin with the
    /// fewest active items (ties to the lowest id) whose full drain is
    /// feasible and affordable within the remaining per-sweep L1-size
    /// `budget`.
    fn defrag_sweep(&mut self, time: Time, budget: u64, out: &mut Vec<LiveMigration>) {
        let mut remaining = budget;
        loop {
            let mut candidates: Vec<BinId> = self.engine.open_bins().to_vec();
            candidates.sort_by_key(|b| (self.engine.bin_active(b.0), b.0));
            let mut executed = false;
            for src in candidates {
                let drain_cost: u64 = self.active_by_bin[src.0]
                    .iter()
                    .map(|&i| self.items[i].size.as_slice().iter().sum::<u64>())
                    .sum();
                if drain_cost > remaining {
                    continue;
                }
                let Some(plan) = self.plan_drain(src) else {
                    continue;
                };
                if plan.is_empty() {
                    continue;
                }
                self.execute_drain(time, &plan, false, out);
                remaining -= drain_cost;
                executed = true;
                break;
            }
            if !executed {
                break;
            }
        }
    }

    /// Swaps the live policy for a fresh instance of `kind` mid-run.
    ///
    /// The incoming policy adopts the current open-bin set through
    /// [`Policy::on_adopt`] — a deterministic function of the open bins,
    /// so replaying the same event/switch sequence (e.g. from a WAL)
    /// reproduces every subsequent decision bit-for-bit. No placed item
    /// moves: only future arrivals see the new policy.
    ///
    /// Callers decide *when*; the portfolio meta-policy layer only
    /// switches at bin-close boundaries so the open set handed to
    /// `on_adopt` is exactly what a fresh run of the incoming policy
    /// could itself be facing. The switch is forwarded to the observer
    /// ([`Observer::on_policy_switch`]) with round-trippable
    /// [`PolicyKind::spec`] spellings.
    ///
    /// # Errors
    ///
    /// [`LiveError::Clairvoyant`] for policy kinds that read announced
    /// durations; the engine state is unchanged.
    pub fn switch_policy(&mut self, kind: PolicyKind) -> Result<(), LiveError> {
        if matches!(
            kind,
            PolicyKind::DurationClassFirstFit | PolicyKind::AlignedFit
        ) {
            return Err(LiveError::Clairvoyant {
                policy: kind.name(),
            });
        }
        let mut policy = kind.build();
        policy.on_adopt(self.engine.open_bins());
        let from = self.kind.spec();
        self.observer
            .on_policy_switch(self.now, &from, &kind.spec());
        self.policy = policy;
        self.kind = kind;
        self.policy_switches += 1;
        Ok(())
    }

    /// Accepted [`switch_policy`](LiveEngine::switch_policy) calls so far.
    #[must_use]
    pub fn policy_switches(&self) -> u64 {
        self.policy_switches
    }

    /// Bin capacity vector.
    #[must_use]
    pub fn capacity(&self) -> &DimVec {
        &self.capacity
    }

    /// The policy kind driving placement.
    #[must_use]
    pub fn kind(&self) -> &PolicyKind {
        &self.kind
    }

    /// The timestamp discipline this engine was built with.
    #[must_use]
    pub fn time_mode(&self) -> TimeMode {
        self.time_mode
    }

    /// Shadow-policy candidates declared via
    /// [`LiveRequest::shadow_policies`] (empty when portfolio dispatch
    /// is not in use). The portfolio layer builds one cost-only shadow
    /// engine per entry.
    #[must_use]
    pub fn shadow_kinds(&self) -> &[PolicyKind] {
        &self.shadow_kinds
    }

    /// The attached repacking policy.
    #[must_use]
    pub fn repack_policy(&self) -> RepackPolicy {
        self.repack
    }

    /// Items migrated by the repacking policy over the run so far.
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Total migration cost charged over the run so far (unit per move
    /// for [`RepackPolicy::DrainOnDepart`], L1 item size for
    /// [`RepackPolicy::BudgetedDefrag`]).
    #[must_use]
    pub fn migration_cost(&self) -> u64 {
        self.migration_cost
    }

    /// The owned observer.
    #[must_use]
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// The owned observer, mutably.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// The engine's current tick (the latest effective timestamp).
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Items ever admitted (the next arrival's run-local index).
    #[must_use]
    pub fn items_seen(&self) -> usize {
        self.items.len()
    }

    /// Items admitted and not yet departed.
    #[must_use]
    pub fn active_items(&self) -> usize {
        self.active_items
    }

    /// Currently open bins.
    #[must_use]
    pub fn open_bins(&self) -> usize {
        self.engine.open_bins().len()
    }

    /// Bins ever opened.
    #[must_use]
    pub fn bins_opened(&self) -> usize {
        self.engine.bins_opened()
    }

    /// Sum of all open bins' loads over all dimensions — the
    /// least-loaded router's shard weight.
    #[must_use]
    pub fn load_l1(&self) -> u128 {
        self.engine
            .open_bins()
            .iter()
            .map(|b| {
                self.engine
                    .bin_load(b.0)
                    .iter()
                    .map(|&v| u128::from(v))
                    .sum::<u128>()
            })
            .sum()
    }

    /// The bin holding `item`, if it has arrived (still set after
    /// departure).
    #[must_use]
    pub fn item_bin(&self, item: usize) -> Option<BinId> {
        self.engine.assignment_of(item)
    }

    /// Whether `item` has departed.
    #[must_use]
    pub fn has_departed(&self, item: usize) -> bool {
        self.departed.get(item).copied().unwrap_or(false)
    }

    /// Accumulated usage time at tick `at` (eq. 1, evaluated mid-run):
    /// closed bins contribute their full usage period, open bins the
    /// span from opening to `max(at, opened)`.
    #[must_use]
    pub fn usage_time_at(&self, at: Time) -> Cost {
        let mut total: Cost = 0;
        for b in 0..self.engine.bins_opened() {
            let opened = self.engine.opened_at(b);
            let end = if self.engine.bin_active(b) > 0 {
                at.max(opened)
            } else {
                self.engine.closed_at(b)
            };
            total += Cost::from(end - opened);
        }
        total
    }

    /// Feeds every event of `source` through the live engine, mapping
    /// the source's item indices to this engine's dense run-local ones
    /// (the map holds only *active* items, so a constant-memory source
    /// drives a constant-memory live run).
    ///
    /// Because departed entries are dropped from the map, a source that
    /// re-uses the index of an already-departed item is admitted as a
    /// fresh item rather than rejected — live engines assign their own
    /// identities. Re-use of a still-active index is rejected.
    ///
    /// # Errors
    ///
    /// [`crate::StreamError::Source`] when the source fails;
    /// [`crate::StreamError::Feed`] when an operation is rejected (the
    /// [`LiveError`] of the failing [`arrive`](Self::arrive) /
    /// [`depart`](Self::depart), state unchanged by the rejected call).
    pub fn drive_source<S: crate::EventSource + ?Sized>(
        &mut self,
        source: &mut S,
    ) -> Result<LiveDriveStats, crate::StreamError> {
        let mut local: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        let mut stats = LiveDriveStats::default();
        while let Some(op) = source.next_event().map_err(crate::StreamError::Source)? {
            match op {
                LiveOp::Arrive { item, size, time } => {
                    if local.contains_key(&item) {
                        return Err(LiveError::DuplicateArrival { item }.into());
                    }
                    let placed = self.arrive(size, time).map_err(crate::StreamError::Feed)?;
                    local.insert(item, placed.item);
                    stats.placed += 1;
                }
                LiveOp::Depart { item, time } => {
                    let Some(idx) = local.remove(&item) else {
                        return Err(LiveError::UnknownItem { item }.into());
                    };
                    if let Err(e) = self.depart(idx, time) {
                        local.insert(item, idx);
                        return Err(crate::StreamError::Feed(e));
                    }
                    stats.departed += 1;
                }
            }
        }
        Ok(stats)
    }

    /// Snapshot of the run as a [`Packing`], consuming the engine.
    /// Requires a drained run (every admitted item departed), since a
    /// packing's bins all have closed usage periods.
    ///
    /// # Errors
    ///
    /// [`LiveError::StillActive`] if items remain.
    pub fn into_packing(self) -> Result<Packing, LiveError> {
        self.into_parts().map(|(packing, _)| packing)
    }

    /// Like [`into_packing`](Self::into_packing), but also returns the
    /// owned observer after firing its run-end hook — the way to get a
    /// [`Recorder`](dvbp_obs::Recorder)'s complete event stream back.
    ///
    /// # Errors
    ///
    /// [`LiveError::StillActive`] if items remain.
    pub fn into_parts(mut self) -> Result<(Packing, O), LiveError> {
        if self.active_items > 0 {
            return Err(LiveError::StillActive {
                active: self.active_items,
            });
        }
        self.observer.on_run_end(dvbp_obs::RunEnd {
            time: self.now,
            items: self.items.len(),
            bins: self.engine.bins_opened(),
        });
        Ok((
            self.engine.snapshot_packing(self.full, self.trace),
            self.observer,
        ))
    }
}

/// Outcome counts of one [`LiveEngine::drive_source`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LiveDriveStats {
    /// Arrivals admitted and placed.
    pub placed: u64,
    /// Departures applied.
    pub departed: u64,
}

/// One replayable live operation. `item` indices refer to positions in
/// the originating [`Instance`]; a [`LiveEngine`] fed these operations
/// assigns its own dense indices in arrival order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LiveOp {
    /// Arrival of instance item `item`.
    Arrive {
        /// Instance item index.
        item: usize,
        /// The item's size vector.
        size: DimVec,
        /// Arrival tick.
        time: Time,
    },
    /// Departure of instance item `item`.
    Depart {
        /// Instance item index.
        item: usize,
        /// Departure tick.
        time: Time,
    },
}

/// The batch engine's exact event order for `instance`, as a list of
/// live operations: departures before arrivals at equal ticks, arrivals
/// tie-broken by item index. Feeding these to a [`LiveEngine`] in order
/// (strict mode) reproduces the batch run bit-for-bit — the canonical
/// feed of the serve conformance layer and the recovery fuzzer.
#[must_use]
pub fn live_ops(instance: &Instance) -> Vec<LiveOp> {
    OnlineTimeline::build(&instance.intervals())
        .events()
        .iter()
        .map(|ev| match *ev {
            Event::Arrival { time, item } => LiveOp::Arrive {
                item,
                size: instance.items[item].size.clone(),
                time,
            },
            Event::Departure { time, item } => LiveOp::Depart { item, time },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PackRequest;
    use std::collections::HashMap;

    fn item(size: &[u64], a: Time, e: Time) -> Item {
        Item::new(DimVec::from_slice(size), a, e)
    }

    fn sample() -> Instance {
        Instance::new(
            DimVec::from_slice(&[10, 10]),
            vec![
                item(&[7, 2], 0, 10),
                item(&[2, 7], 2, 5),
                item(&[3, 3], 4, 6),
                item(&[9, 9], 5, 12),
                item(&[1, 1], 5, 7),
                item(&[5, 5], 10, 14),
            ],
        )
        .unwrap()
    }

    /// Drives `instance` through a live engine in timeline order and
    /// returns the live packing with its assignment/bins/trace mapped
    /// back to instance item indices.
    fn live_run(instance: &Instance, kind: &PolicyKind) -> Packing {
        let mut live = LiveEngine::new(
            instance.capacity.clone(),
            kind,
            TraceMode::Full,
            TimeMode::Strict,
        )
        .unwrap();
        // orig item index -> live index
        let mut local = HashMap::new();
        for op in live_ops(instance) {
            match op {
                LiveOp::Arrive { item, size, time } => {
                    let placed = live.arrive(size, time).unwrap();
                    local.insert(item, placed.item);
                }
                LiveOp::Depart { item, time } => {
                    live.depart(local[&item], time).unwrap();
                }
            }
        }
        assert_eq!(live.active_items(), 0);
        assert_eq!(live.open_bins(), 0);
        let packing = live.into_packing().unwrap();
        // Map live indices back to instance indices.
        let mut back = vec![usize::MAX; local.len()];
        for (&orig, &idx) in &local {
            back[idx] = orig;
        }
        let mut assignment = vec![BinId(usize::MAX); packing.assignment.len()];
        for (idx, &bin) in packing.assignment.iter().enumerate() {
            assignment[back[idx]] = bin;
        }
        let bins = packing
            .bins
            .iter()
            .map(|b| crate::bin::BinUsage {
                opened: b.opened,
                closed: b.closed,
                items: b.items.iter().map(|&i| back[i]).collect(),
            })
            .collect();
        let trace = packing
            .trace
            .iter()
            .map(|ev| match *ev {
                TraceEvent::Packed {
                    time,
                    item,
                    bin,
                    opened_new,
                } => TraceEvent::Packed {
                    time,
                    item: back[item],
                    bin,
                    opened_new,
                },
                closed => closed,
            })
            .collect();
        Packing {
            assignment,
            bins,
            trace,
        }
    }

    #[test]
    fn timeline_feed_is_bit_identical_to_batch_for_every_live_kind() {
        let instance = sample();
        for kind in [
            PolicyKind::FirstFit,
            PolicyKind::IndexedFirstFit,
            PolicyKind::MoveToFront,
            PolicyKind::NextFit,
            PolicyKind::LastFit,
            PolicyKind::BestFit(crate::LoadMeasure::Linf),
            PolicyKind::WorstFit(crate::LoadMeasure::Linf),
            PolicyKind::RandomFit { seed: 11 },
        ] {
            let batch = PackRequest::new(kind.clone()).run(&instance).unwrap();
            let live = live_run(&instance, &kind);
            assert_eq!(live, batch, "{}", kind.name());
        }
    }

    #[test]
    fn clairvoyant_kinds_are_rejected() {
        for kind in [PolicyKind::DurationClassFirstFit, PolicyKind::AlignedFit] {
            let err = LiveEngine::new(
                DimVec::from_slice(&[10]),
                &kind,
                TraceMode::Full,
                TimeMode::Strict,
            )
            .err()
            .expect("clairvoyant kinds must be rejected");
            assert!(matches!(err, LiveError::Clairvoyant { .. }), "{err}");
        }
    }

    #[test]
    fn invalid_arrivals_are_rejected_without_state_change() {
        let mut live = LiveEngine::new(
            DimVec::from_slice(&[10, 10]),
            &PolicyKind::FirstFit,
            TraceMode::Full,
            TimeMode::Strict,
        )
        .unwrap();
        let cases = [
            (DimVec::from_slice(&[5]), 0, "dim mismatch"),
            (DimVec::from_slice(&[11, 1]), 0, "oversized"),
            (DimVec::from_slice(&[0, 0]), 0, "zero size"),
            (DimVec::from_slice(&[1, 1]), Time::MAX, "time at MAX"),
        ];
        for (size, t, what) in cases {
            assert!(
                matches!(live.arrive(size, t), Err(LiveError::Pack(_))),
                "{what}"
            );
        }
        assert_eq!(live.items_seen(), 0);
        assert_eq!(live.bins_opened(), 0);
    }

    #[test]
    fn strict_mode_enforces_order_and_equal_tick_rule() {
        let mut live = LiveEngine::new(
            DimVec::from_slice(&[10]),
            &PolicyKind::FirstFit,
            TraceMode::Full,
            TimeMode::Strict,
        )
        .unwrap();
        live.arrive(DimVec::from_slice(&[5]), 5).unwrap();
        // Time moves backwards: rejected.
        assert!(matches!(
            live.arrive(DimVec::from_slice(&[1]), 4),
            Err(LiveError::OutOfOrder { time: 4, now: 5 })
        ));
        live.arrive(DimVec::from_slice(&[2]), 7).unwrap();
        // A departure at tick 7 after tick-7 arrivals violates the
        // equal-tick rule...
        assert!(matches!(
            live.depart(0, 7),
            Err(LiveError::EqualTickOrder { time: 7 })
        ));
        // ...but a later tick is fine, and frees capacity.
        let dep = live.depart(0, 8).unwrap();
        assert_eq!(dep.bin, BinId(0));
        assert!(!dep.closed);
        // Unknown / duplicate departures.
        assert!(matches!(
            live.depart(9, 9),
            Err(LiveError::UnknownItem { item: 9 })
        ));
        assert!(matches!(
            live.depart(0, 9),
            Err(LiveError::AlreadyDeparted { item: 0 })
        ));
        // Departing the last item closes the bin.
        let dep = live.depart(1, 9).unwrap();
        assert!(dep.closed);
        assert_eq!(live.open_bins(), 0);
        assert_eq!(live.usage_time_at(live.now()), 4);
    }

    #[test]
    fn strict_mode_rejects_zero_duration_departs() {
        // A zero-duration item (depart on its arrival tick) stays an
        // error in strict mode — the batch timeline cannot produce it.
        let mut live = LiveEngine::new(
            DimVec::from_slice(&[10]),
            &PolicyKind::FirstFit,
            TraceMode::Full,
            TimeMode::Strict,
        )
        .unwrap();
        live.arrive(DimVec::from_slice(&[5]), 3).unwrap();
        assert!(matches!(
            live.depart(0, 3),
            Err(LiveError::EqualTickOrder { time: 3 })
        ));
        live.depart(0, 4).unwrap();
    }

    #[test]
    fn clamp_mode_pulls_early_timestamps_forward() {
        let mut live = LiveEngine::new(
            DimVec::from_slice(&[10]),
            &PolicyKind::FirstFit,
            TraceMode::Full,
            TimeMode::Clamp,
        )
        .unwrap();
        live.arrive(DimVec::from_slice(&[5]), 10).unwrap();
        // t=4 is behind the clock: clamped to 10, not rejected.
        let placed = live.arrive(DimVec::from_slice(&[2]), 4).unwrap();
        assert_eq!(placed.time, 10);
        live.arrive(DimVec::from_slice(&[1]), 12).unwrap();
        // An early departure clamps forward to the current tick.
        let dep = live.depart(0, 2).unwrap();
        assert_eq!(dep.time, 12);
    }

    #[test]
    fn clamp_mode_gives_zero_duration_items_a_one_tick_stay() {
        // The dirty-feed shape real traces produce: an item arrives and
        // departs at the same wall-clock tick. Clamp mode charges the
        // minimum one-tick stay instead of rejecting.
        let mut live = LiveEngine::new(
            DimVec::from_slice(&[10]),
            &PolicyKind::FirstFit,
            TraceMode::Full,
            TimeMode::Clamp,
        )
        .unwrap();
        live.arrive(DimVec::from_slice(&[5]), 3).unwrap();
        let dep = live.depart(0, 3).unwrap();
        assert_eq!(dep.time, 4, "zero-duration stay clamps to arrival + 1");
        assert!(dep.closed, "the one-tick stay still closes the bin");
        let clamped = live.into_packing().unwrap();

        // Cost accounting and bin-close events match the batch engine
        // packing the clamped image of the feed ([3, 4)).
        let image = Instance::new(DimVec::from_slice(&[10]), vec![item(&[5], 3, 4)]).unwrap();
        let batch = PackRequest::new(PolicyKind::FirstFit).run(&image).unwrap();
        assert_eq!(clamped, batch);
        assert_eq!(clamped.cost(), 1);
    }

    #[test]
    fn clamp_mode_zero_duration_departure_behind_the_clock() {
        // A departure both behind the clock *and* at/before its item's
        // arrival first clamps to `now`, then (still on the arrival
        // tick) to `arrival + 1`.
        let mut live = LiveEngine::new(
            DimVec::from_slice(&[10]),
            &PolicyKind::FirstFit,
            TraceMode::Full,
            TimeMode::Clamp,
        )
        .unwrap();
        live.arrive(DimVec::from_slice(&[5]), 7).unwrap();
        let dep = live.depart(0, 2).unwrap();
        assert_eq!(dep.time, 8);
        assert_eq!(live.now(), 8);
        assert_eq!(live.usage_time_at(live.now()), 1);
    }

    #[test]
    fn drive_source_replays_an_instance_stream() {
        let instance = sample();
        let mut live = LiveEngine::new(
            instance.capacity.clone(),
            &PolicyKind::FirstFit,
            TraceMode::Full,
            TimeMode::Strict,
        )
        .unwrap();
        let mut source = crate::InstanceSource::new(&instance).unwrap();
        let stats = live.drive_source(&mut source).unwrap();
        assert_eq!(stats.placed, instance.len() as u64);
        assert_eq!(stats.departed, instance.len() as u64);
        // `sample()` is arrival-sorted, so the live engine's dense
        // arrival-order indices coincide with the instance's and the
        // packings compare directly.
        let batch = PackRequest::new(PolicyKind::FirstFit)
            .run(&instance)
            .unwrap();
        assert_eq!(live.into_packing().unwrap(), batch);
    }

    #[test]
    fn usage_time_tracks_open_and_closed_bins() {
        let mut live = LiveEngine::new(
            DimVec::from_slice(&[4]),
            &PolicyKind::FirstFit,
            TraceMode::CostOnly,
            TimeMode::Strict,
        )
        .unwrap();
        live.arrive(DimVec::from_slice(&[3]), 0).unwrap();
        live.arrive(DimVec::from_slice(&[3]), 2).unwrap(); // second bin
        assert_eq!(live.open_bins(), 2);
        assert_eq!(live.load_l1(), 6);
        // At t=5: bin0 open since 0 (5 ticks), bin1 open since 2 (3).
        assert_eq!(live.usage_time_at(5), 5 + 3);
        live.depart(0, 5).unwrap();
        assert_eq!(live.usage_time_at(5), 5 + 3);
        live.depart(1, 6).unwrap();
        assert_eq!(live.usage_time_at(8), 5 + 4);
        let packing = live.into_packing().unwrap();
        assert_eq!(packing.cost(), 9);
    }

    #[test]
    fn into_packing_requires_a_drained_run() {
        let mut live = LiveEngine::new(
            DimVec::from_slice(&[10]),
            &PolicyKind::FirstFit,
            TraceMode::Full,
            TimeMode::Strict,
        )
        .unwrap();
        live.arrive(DimVec::from_slice(&[5]), 0).unwrap();
        assert!(matches!(
            live.into_packing(),
            Err(LiveError::StillActive { active: 1 })
        ));
    }

    #[test]
    fn live_request_requires_capacity() {
        assert!(matches!(
            LiveRequest::new(PolicyKind::FirstFit).build(),
            Err(LiveError::NoCapacity)
        ));
    }

    #[test]
    fn live_request_builds_the_same_engine_as_the_shim() {
        let instance = sample();
        let mut a = LiveEngine::new(
            instance.capacity.clone(),
            &PolicyKind::FirstFit,
            TraceMode::Full,
            TimeMode::Strict,
        )
        .unwrap();
        let mut b = LiveRequest::new(PolicyKind::FirstFit)
            .capacity(instance.capacity.clone())
            .build()
            .unwrap();
        for op in live_ops(&instance) {
            match op {
                LiveOp::Arrive { size, time, .. } => {
                    assert_eq!(
                        a.arrive(size.clone(), time).unwrap(),
                        b.arrive(size, time).unwrap()
                    );
                }
                LiveOp::Depart { item, time } => {
                    // `sample()` is arrival-sorted, so indices coincide.
                    assert_eq!(a.depart(item, time).unwrap(), b.depart(item, time).unwrap());
                }
            }
        }
        assert_eq!(a.into_packing().unwrap(), b.into_packing().unwrap());
    }

    #[test]
    fn drain_on_depart_drains_a_small_bin_and_closes_it() {
        let mut live = LiveRequest::new(PolicyKind::FirstFit)
            .capacity(DimVec::from_slice(&[10]))
            .repack(RepackPolicy::DrainOnDepart { k: 1 })
            .build()
            .unwrap();
        live.arrive(DimVec::from_slice(&[7]), 0).unwrap(); // b0
        live.arrive(DimVec::from_slice(&[7]), 1).unwrap(); // b1
        live.arrive(DimVec::from_slice(&[2]), 2).unwrap(); // b0 (7+2)
        let dep = live.depart(0, 3).unwrap();
        assert!(!dep.closed, "item 2 still occupied b0 at the departure");
        assert_eq!(
            dep.migrations,
            vec![LiveMigration {
                item: 2,
                from: BinId(0),
                to: BinId(1),
                closed_from: true,
                cost: 1,
            }]
        );
        assert_eq!(live.open_bins(), 1);
        assert_eq!(live.item_bin(2), Some(BinId(1)));
        assert_eq!(live.migrations(), 1);
        assert_eq!(live.migration_cost(), 1);
        live.depart(1, 5).unwrap();
        let dep = live.depart(2, 6).unwrap();
        assert!(dep.closed);
        let packing = live.into_packing().unwrap();
        // b0 closed at the drain tick 3, not at item 2's departure.
        assert_eq!(packing.bins[0].closed, 3);
        assert_eq!(packing.cost(), 3 + 5);
    }

    #[test]
    fn drain_is_all_or_nothing() {
        let mut live = LiveRequest::new(PolicyKind::FirstFit)
            .capacity(DimVec::from_slice(&[10]))
            .repack(RepackPolicy::DrainOnDepart { k: 2 })
            .build()
            .unwrap();
        live.arrive(DimVec::from_slice(&[5]), 0).unwrap(); // b0
        live.arrive(DimVec::from_slice(&[8]), 1).unwrap(); // b1
        live.arrive(DimVec::from_slice(&[4]), 2).unwrap(); // b0 (5+4)
                                                           // Departing item 0 leaves item 2 (size 4); b1 has residual 2, so
                                                           // the drain is infeasible and nothing moves.
        let dep = live.depart(0, 3).unwrap();
        assert!(dep.migrations.is_empty());
        assert_eq!(live.open_bins(), 2);
        assert_eq!(live.migrations(), 0);
    }

    #[test]
    fn no_repack_never_migrates() {
        let instance = sample();
        let mut live = LiveRequest::new(PolicyKind::FirstFit)
            .capacity(instance.capacity.clone())
            .build()
            .unwrap();
        let mut local = HashMap::new();
        for op in live_ops(&instance) {
            match op {
                LiveOp::Arrive { item, size, time } => {
                    local.insert(item, live.arrive(size, time).unwrap().item);
                }
                LiveOp::Depart { item, time } => {
                    assert!(live
                        .depart(local[&item], time)
                        .unwrap()
                        .migrations
                        .is_empty());
                }
            }
        }
        assert_eq!(live.migrations(), 0);
    }

    /// Builds the defrag scenario: b0 = {big [0,3), small [1,·)},
    /// b1 = {filler 10 [1,5)}, b2 = {small [2,·)}. Departing the big
    /// item leaves two half-empty bins; departing the filler closes b1
    /// naturally, triggering the sweep.
    fn defrag_engine(budget: u64) -> LiveEngine {
        let mut live = LiveRequest::new(PolicyKind::FirstFit)
            .capacity(DimVec::from_slice(&[10]))
            .repack(RepackPolicy::BudgetedDefrag { budget, period: 1 })
            .build()
            .unwrap();
        live.arrive(DimVec::from_slice(&[8]), 0).unwrap(); // 0 -> b0
        live.arrive(DimVec::from_slice(&[2]), 1).unwrap(); // 1 -> b0
        live.arrive(DimVec::from_slice(&[10]), 1).unwrap(); // 2 -> b1
        live.arrive(DimVec::from_slice(&[2]), 2).unwrap(); // 3 -> b2
        live.depart(0, 3).unwrap(); // b0 = {1}, no close
        live
    }

    #[test]
    fn budgeted_defrag_sweeps_on_a_natural_close() {
        let mut live = defrag_engine(16);
        let dep = live.depart(2, 5).unwrap(); // closes b1 -> sweep
        assert!(dep.closed);
        assert_eq!(
            dep.migrations,
            vec![LiveMigration {
                item: 1,
                from: BinId(0),
                to: BinId(2),
                closed_from: true,
                cost: 2,
            }]
        );
        assert_eq!(live.open_bins(), 1);
        assert_eq!(live.migration_cost(), 2);
        live.depart(1, 9).unwrap();
        live.depart(3, 9).unwrap();
        let packing = live.into_packing().unwrap();
        assert_eq!(packing.bins[0].closed, 5, "b0 drained at the sweep tick");
    }

    #[test]
    fn budgeted_defrag_respects_the_budget() {
        let mut live = defrag_engine(1); // item 1's L1 size is 2 > 1
        let dep = live.depart(2, 5).unwrap();
        assert!(dep.migrations.is_empty());
        assert_eq!(live.open_bins(), 2);
        assert_eq!(live.migrations(), 0);
    }

    #[test]
    fn migrations_reach_the_observer_and_trace() {
        let mut live = LiveRequest::new(PolicyKind::FirstFit)
            .capacity(DimVec::from_slice(&[10]))
            .repack(RepackPolicy::DrainOnDepart { k: 1 })
            .observer(dvbp_obs::Recorder::new())
            .build()
            .unwrap();
        live.arrive(DimVec::from_slice(&[7]), 0).unwrap();
        live.arrive(DimVec::from_slice(&[7]), 1).unwrap();
        live.arrive(DimVec::from_slice(&[2]), 2).unwrap();
        live.depart(0, 3).unwrap();
        live.depart(1, 5).unwrap();
        live.depart(2, 6).unwrap();
        let (packing, recorder) = live.into_parts().unwrap();
        let migrate_events: Vec<_> = recorder
            .events
            .iter()
            .filter(|ev| matches!(ev, dvbp_obs::ObsEvent::Migrate { .. }))
            .collect();
        assert_eq!(
            migrate_events,
            vec![&dvbp_obs::ObsEvent::Migrate {
                time: 3,
                item: 2,
                from: 0,
                to: 1,
            }]
        );
        assert!(packing
            .trace
            .iter()
            .any(|ev| matches!(ev, TraceEvent::Migrated { item: 2, .. })));
        // The observer stream replays to the live packing even across
        // the migration.
        assert!(matches!(
            recorder.events.last(),
            Some(dvbp_obs::ObsEvent::RunEnd { .. })
        ));
    }

    #[test]
    fn switch_policy_rejects_clairvoyant_and_counts_switches() {
        let mut live = LiveEngine::new(
            DimVec::from_slice(&[10]),
            &PolicyKind::FirstFit,
            TraceMode::Full,
            TimeMode::Strict,
        )
        .unwrap();
        assert!(matches!(
            live.switch_policy(PolicyKind::AlignedFit),
            Err(LiveError::Clairvoyant { .. })
        ));
        assert_eq!(live.policy_switches(), 0);
        live.switch_policy(PolicyKind::MoveToFront).unwrap();
        assert_eq!(live.kind(), &PolicyKind::MoveToFront);
        assert_eq!(live.policy_switches(), 1);
    }

    #[test]
    fn switch_policy_changes_future_placements_only() {
        // Two bins open, both with room. FirstFit would pick b0 for the
        // next small item; after switching to MoveToFront (which adopts
        // latest-opened-first order) the same item goes to b1.
        let mut live = LiveEngine::new(
            DimVec::from_slice(&[10]),
            &PolicyKind::FirstFit,
            TraceMode::Full,
            TimeMode::Strict,
        )
        .unwrap();
        live.arrive(DimVec::from_slice(&[6]), 0).unwrap(); // b0
        live.arrive(DimVec::from_slice(&[6]), 1).unwrap(); // b1
        live.switch_policy(PolicyKind::MoveToFront).unwrap();
        let placed = live.arrive(DimVec::from_slice(&[2]), 2).unwrap();
        assert_eq!(placed.bin, BinId(1), "MTF adoption puts b1 in front");
        assert_eq!(live.item_bin(0), Some(BinId(0)), "no placed item moved");
    }

    #[test]
    fn switch_policy_reaches_the_observer_with_spec_spellings() {
        let mut live = LiveRequest::new(PolicyKind::FirstFit)
            .capacity(DimVec::from_slice(&[10]))
            .observer(dvbp_obs::Recorder::new())
            .build()
            .unwrap();
        live.arrive(DimVec::from_slice(&[5]), 3).unwrap();
        live.switch_policy(PolicyKind::RandomFit { seed: 9 })
            .unwrap();
        live.depart(0, 7).unwrap();
        let (_, recorder) = live.into_parts().unwrap();
        assert!(recorder.events.contains(&dvbp_obs::ObsEvent::PolicySwitch {
            time: 3,
            from: "FirstFit".into(),
            to: "RandomFit:9".into(),
        }));
    }

    #[test]
    fn shadow_policies_are_carried_and_validated() {
        let err = LiveRequest::new(PolicyKind::FirstFit)
            .capacity(DimVec::from_slice(&[10]))
            .shadow_policies([PolicyKind::AlignedFit])
            .build()
            .err()
            .expect("clairvoyant shadow candidates must be rejected");
        assert!(matches!(err, LiveError::Clairvoyant { .. }));
        let live = LiveRequest::new(PolicyKind::FirstFit)
            .capacity(DimVec::from_slice(&[10]))
            .shadow_policies([PolicyKind::FirstFit, PolicyKind::MoveToFront])
            .items_hint(64)
            .build()
            .unwrap();
        assert_eq!(
            live.shadow_kinds(),
            &[PolicyKind::FirstFit, PolicyKind::MoveToFront]
        );
        assert_eq!(live.time_mode(), TimeMode::Strict);
    }

    #[test]
    fn items_hint_does_not_change_the_run() {
        let instance = sample();
        let mut hinted = LiveRequest::new(PolicyKind::FirstFit)
            .capacity(instance.capacity.clone())
            .items_hint(1000)
            .build()
            .unwrap();
        let mut plain = LiveRequest::new(PolicyKind::FirstFit)
            .capacity(instance.capacity.clone())
            .build()
            .unwrap();
        for op in live_ops(&instance) {
            match op {
                LiveOp::Arrive { size, time, .. } => {
                    assert_eq!(
                        hinted.arrive(size.clone(), time).unwrap(),
                        plain.arrive(size, time).unwrap()
                    );
                }
                LiveOp::Depart { item, time } => {
                    assert_eq!(
                        hinted.depart(item, time).unwrap(),
                        plain.depart(item, time).unwrap()
                    );
                }
            }
        }
        assert_eq!(
            hinted.into_packing().unwrap(),
            plain.into_packing().unwrap()
        );
    }

    #[test]
    fn live_ops_order_departures_before_equal_tick_arrivals() {
        let instance = sample();
        let ops = live_ops(&instance);
        // Item 1 departs at t=5; items 3 and 4 arrive at t=5. The
        // departure must come first, then arrivals by item index.
        let tick5: Vec<&LiveOp> = ops
            .iter()
            .filter(|op| match op {
                LiveOp::Arrive { time, .. } | LiveOp::Depart { time, .. } => *time == 5,
            })
            .collect();
        assert!(matches!(tick5[0], LiveOp::Depart { item: 1, .. }));
        assert!(matches!(tick5[1], LiveOp::Arrive { item: 3, .. }));
        assert!(matches!(tick5[2], LiveOp::Arrive { item: 4, .. }));
    }
}

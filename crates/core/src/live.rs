//! [`LiveEngine`]: open-ended, one-event-at-a-time driving of the
//! packing engine — the in-memory core of a dispatch *service*.
//!
//! The batch [`Engine`](crate::Engine) replays a complete
//! [`Instance`] whose departures are known up front. A serving process
//! cannot do that: items arrive and depart over the wire, the future is
//! unknown, and the run never "finishes". `LiveEngine` wraps the same
//! engine step functions ([`Engine::step_arrive`] /
//! [`Engine::step_depart`](crate::engine::Engine::step_depart)) behind
//! an incremental API, so a live run that receives the batch timeline's
//! events in timeline order produces **bit-identical** state — the
//! conformance harness's layer 8 holds it to that.
//!
//! # Time discipline
//!
//! The paper's equal-tick rule (§2.1) — at one tick, all departures are
//! processed before any arrival — is a property of the *feed*, not of
//! the engine. In [`TimeMode::Strict`] the live engine enforces it:
//! timestamps must be non-decreasing, and a departure at the current
//! tick is rejected once an arrival has been processed at that tick.
//! [`TimeMode::Clamp`] instead clamps early timestamps up to the
//! current tick (`t ← max(t, now)`), accepts equal-tick departures
//! after arrivals, and gives zero-duration items (arrive and depart at
//! one timestamp — common in dirty wall-clock feeds) the minimum
//! one-tick stay by clamping the departure to `arrival + 1` — useful
//! for feeds that cannot promise canonical order, at the price of
//! batch reachability.
//!
//! # Clairvoyance
//!
//! Live items have unknown departure times, so the clairvoyant policy
//! kinds (`DurationClassFirstFit`, `AlignedFit`) are rejected at
//! construction ([`LiveError::Clairvoyant`]). All non-clairvoyant
//! policies honor the documented contract of never reading
//! `Item::departure`; internally a live item carries `Time::MAX` as a
//! placeholder until its departure is announced.

use crate::bin::BinId;
use crate::engine::{Engine, Packing, TraceEvent, TraceMode};
use crate::item::{Instance, Item};
use crate::policy::{Policy, PolicyKind};
use crate::request::PackError;
use dvbp_dimvec::DimVec;
use dvbp_obs::NoopObserver;
use dvbp_sim::timeline::{Event, OnlineTimeline};
use dvbp_sim::{Cost, Time};

/// How a [`LiveEngine`] treats request timestamps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TimeMode {
    /// Reject anything the batch timeline could not produce: ticks must
    /// be non-decreasing ([`LiveError::OutOfOrder`]) and, within one
    /// tick, all departures must precede the first arrival
    /// ([`LiveError::EqualTickOrder`]). Keeps the live run on the batch
    /// engine's reachable-state manifold — required for conformance
    /// and recovery equivalence.
    #[default]
    Strict,
    /// Clamp early timestamps up to the current tick (`t ← max(t,
    /// now)`) instead of rejecting, and accept equal-tick departures
    /// after arrivals. A departure clamped onto its item's arrival tick
    /// (a zero-duration item) is clamped one tick further, to
    /// `arrival + 1` — the minimum one-tick stay, matching what the
    /// batch engine would charge for the clamped feed. The effective
    /// (clamped) time is journaled and returned, so recovery still
    /// replays deterministically.
    Clamp,
}

impl std::str::FromStr for TimeMode {
    type Err = String;

    /// Parses `strict` or `clamp` (CLI spelling).
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "strict" => Ok(TimeMode::Strict),
            "clamp" => Ok(TimeMode::Clamp),
            _ => Err(format!(
                "unknown time mode {s:?} (expected strict or clamp)"
            )),
        }
    }
}

/// A rejected live operation. The engine state is unchanged by any
/// rejected call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LiveError {
    /// The arrival failed the same validation an [`Instance`] gets
    /// (dimension mismatch, oversized, zero size, or an unusable
    /// timestamp).
    Pack(PackError),
    /// The policy kind needs announced durations, which a live feed
    /// does not have.
    Clairvoyant {
        /// Display name of the rejected policy.
        policy: String,
    },
    /// Strict mode: the timestamp precedes the engine's current tick.
    OutOfOrder {
        /// The rejected timestamp.
        time: Time,
        /// The engine's current tick.
        now: Time,
    },
    /// Strict mode: a departure at the current tick after an arrival
    /// was already processed at that tick (the paper orders equal-tick
    /// departures first).
    EqualTickOrder {
        /// The rejected timestamp.
        time: Time,
    },
    /// Departure for an item index that never arrived.
    UnknownItem {
        /// The unknown index.
        item: usize,
    },
    /// A streamed feed re-used an item index that is already placed.
    /// Live feeds assign their own dense indices, so this only arises
    /// on the [`EventSource`](crate::EventSource) paths
    /// ([`Engine::run_source`](crate::Engine::run_source) /
    /// [`LiveEngine::drive_source`]), whose items carry caller-chosen
    /// indices.
    DuplicateArrival {
        /// The repeated index.
        item: usize,
    },
    /// Departure for an item that already departed.
    AlreadyDeparted {
        /// The repeated index.
        item: usize,
    },
    /// [`LiveEngine::into_packing`] with items still active.
    StillActive {
        /// Number of items not yet departed.
        active: usize,
    },
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::Pack(e) => write!(f, "{e}"),
            LiveError::Clairvoyant { policy } => {
                write!(
                    f,
                    "policy {policy} is clairvoyant; live items have unknown departures"
                )
            }
            LiveError::OutOfOrder { time, now } => {
                write!(f, "timestamp {time} precedes current tick {now}")
            }
            LiveError::EqualTickOrder { time } => write!(
                f,
                "departure at tick {time} after an arrival at the same tick \
                 (departures precede arrivals within a tick)"
            ),
            LiveError::UnknownItem { item } => write!(f, "item {item} never arrived"),
            LiveError::DuplicateArrival { item } => {
                write!(f, "item {item} already arrived")
            }
            LiveError::AlreadyDeparted { item } => write!(f, "item {item} already departed"),
            LiveError::StillActive { active } => {
                write!(f, "{active} item(s) still active")
            }
        }
    }
}

impl std::error::Error for LiveError {}

impl From<PackError> for LiveError {
    fn from(e: PackError) -> Self {
        LiveError::Pack(e)
    }
}

/// Outcome of an accepted [`LiveEngine::arrive`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LivePlacement {
    /// Dense run-local index assigned to the item (arrival order).
    pub item: usize,
    /// The receiving bin.
    pub bin: BinId,
    /// Whether the bin was opened for this item.
    pub opened_new: bool,
    /// The effective tick (equals the request's in strict mode; may be
    /// clamped up in [`TimeMode::Clamp`]).
    pub time: Time,
}

/// Outcome of an accepted [`LiveEngine::depart`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LiveDeparture {
    /// The departing item's run-local index.
    pub item: usize,
    /// The bin it departed from.
    pub bin: BinId,
    /// Whether that departure emptied (and permanently closed) the bin.
    pub closed: bool,
    /// The effective tick.
    pub time: Time,
}

/// An incremental driver over the packing engine: accepts arrivals and
/// departures one at a time, maintains the exact state a batch run over
/// the same event sequence would hold, and can snapshot that state as a
/// [`Packing`] once drained.
pub struct LiveEngine {
    engine: Engine,
    policy: Box<dyn Policy>,
    kind: PolicyKind,
    capacity: DimVec,
    time_mode: TimeMode,
    /// Whether the per-bin item chains / trace are recorded
    /// ([`TraceMode::Full`]).
    full: bool,
    /// Every item ever admitted, by run-local index. Live items hold a
    /// `Time::MAX` departure placeholder (never read by non-clairvoyant
    /// policies); `depart` overwrites it with the real tick.
    items: Vec<Item>,
    departed: Vec<bool>,
    active_items: usize,
    trace: Vec<TraceEvent>,
    now: Time,
    /// Whether an arrival has been processed at tick `now` (strict
    /// equal-tick ordering).
    arrived_this_tick: bool,
}

impl LiveEngine {
    /// Creates a live engine for `capacity` under `kind`.
    ///
    /// # Errors
    ///
    /// [`LiveError::Clairvoyant`] for policy kinds that read announced
    /// durations.
    pub fn new(
        capacity: DimVec,
        kind: &PolicyKind,
        trace: TraceMode,
        time_mode: TimeMode,
    ) -> Result<Self, LiveError> {
        if matches!(
            kind,
            PolicyKind::DurationClassFirstFit | PolicyKind::AlignedFit
        ) {
            return Err(LiveError::Clairvoyant {
                policy: kind.name(),
            });
        }
        let mut policy = kind.build();
        policy.reset();
        let mut engine = Engine::new();
        engine.reset_for(capacity.dim(), 0);
        Ok(LiveEngine {
            engine,
            policy,
            kind: kind.clone(),
            capacity,
            time_mode,
            full: trace == TraceMode::Full,
            items: Vec::new(),
            departed: Vec::new(),
            active_items: 0,
            trace: Vec::new(),
            now: 0,
            arrived_this_tick: false,
        })
    }

    fn effective_time(&self, time: Time) -> Result<Time, LiveError> {
        match self.time_mode {
            TimeMode::Strict if time < self.now => Err(LiveError::OutOfOrder {
                time,
                now: self.now,
            }),
            TimeMode::Strict => Ok(time),
            TimeMode::Clamp => Ok(time.max(self.now)),
        }
    }

    fn advance_tick(&mut self, time: Time) {
        if time > self.now {
            self.arrived_this_tick = false;
        }
        self.now = time;
    }

    /// Admits an item of the given size at `time` and returns its
    /// placement. The item gets the next dense run-local index.
    ///
    /// # Errors
    ///
    /// [`LiveError::Pack`] for an invalid size or unusable timestamp;
    /// [`LiveError::OutOfOrder`] in strict mode for a timestamp before
    /// the current tick. The engine state is unchanged on error.
    pub fn arrive(&mut self, size: DimVec, time: Time) -> Result<LivePlacement, LiveError> {
        let time = self.effective_time(time)?;
        let item = self.items.len();
        if size.dim() != self.capacity.dim() {
            return Err(PackError::DimMismatch { item }.into());
        }
        if !size.fits_within(&self.capacity) {
            return Err(PackError::OversizedItem { item }.into());
        }
        if size.is_zero() {
            return Err(PackError::ZeroSizeItem { item }.into());
        }
        if time == Time::MAX {
            // MAX is the live-departure placeholder; an item arriving
            // there could never have a strictly later departure.
            return Err(PackError::NonMonotoneTime { item }.into());
        }
        // Struct-literal construction (not `Item::new`): the departure
        // is not yet known, so it carries the MAX placeholder that
        // non-clairvoyant policies never read.
        self.items.push(Item {
            size,
            arrival: time,
            departure: Time::MAX,
            announced_duration: None,
        });
        self.departed.push(false);
        let (bin, opened_new) = self.engine.step_arrive(
            &self.capacity,
            time,
            item,
            &self.items[item],
            self.policy.as_mut(),
            &mut NoopObserver,
            self.full.then_some(&mut self.trace),
        );
        self.active_items += 1;
        self.advance_tick(time);
        self.arrived_this_tick = true;
        Ok(LivePlacement {
            item,
            bin,
            opened_new,
            time,
        })
    }

    /// Retires the item with run-local index `item` at `time`.
    ///
    /// # Errors
    ///
    /// [`LiveError::UnknownItem`] / [`LiveError::AlreadyDeparted`] for
    /// bad indices; [`LiveError::OutOfOrder`] /
    /// [`LiveError::EqualTickOrder`] for strict-mode time violations;
    /// in strict mode, [`LiveError::Pack`]
    /// ([`PackError::NonMonotoneTime`]) when the tick is not strictly
    /// after the item's arrival (every item occupies at least one
    /// tick). In [`TimeMode::Clamp`] a departure landing on the item's
    /// arrival tick — the zero-duration items real wall-clock feeds
    /// produce — is clamped one tick further, to `arrival + 1`: the
    /// item gets the minimum one-tick stay, so its cost contribution
    /// and any bin-close it triggers match the batch engine packing the
    /// clamped image of the feed (the returned effective tick journals
    /// the clamp, keeping recovery replays deterministic). The engine
    /// state is unchanged on error.
    pub fn depart(&mut self, item: usize, time: Time) -> Result<LiveDeparture, LiveError> {
        let time = self.effective_time(time)?;
        if item >= self.items.len() {
            return Err(LiveError::UnknownItem { item });
        }
        if self.departed[item] {
            return Err(LiveError::AlreadyDeparted { item });
        }
        if self.time_mode == TimeMode::Strict && time == self.now && self.arrived_this_tick {
            return Err(LiveError::EqualTickOrder { time });
        }
        let time = if time <= self.items[item].arrival {
            match self.time_mode {
                TimeMode::Strict => return Err(PackError::NonMonotoneTime { item }.into()),
                // `effective_time` already pulled the tick up to `now ≥
                // arrival`, so this is exactly the zero-duration case:
                // clamp to the minimum one-tick stay. Arrivals at
                // `Time::MAX` are rejected, so the `+ 1` cannot overflow.
                TimeMode::Clamp => self.items[item].arrival + 1,
            }
        } else {
            time
        };
        self.items[item].departure = time;
        let step = self
            .engine
            .step_depart(
                time,
                item,
                &self.items[item],
                self.policy.as_mut(),
                &mut NoopObserver,
                self.full.then_some(&mut self.trace),
            )
            .expect("checked assignment above");
        self.departed[item] = true;
        self.active_items -= 1;
        self.advance_tick(time);
        Ok(LiveDeparture {
            item,
            bin: step.bin,
            closed: step.closed,
            time,
        })
    }

    /// Bin capacity vector.
    #[must_use]
    pub fn capacity(&self) -> &DimVec {
        &self.capacity
    }

    /// The policy kind driving placement.
    #[must_use]
    pub fn kind(&self) -> &PolicyKind {
        &self.kind
    }

    /// The engine's current tick (the latest effective timestamp).
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Items ever admitted (the next arrival's run-local index).
    #[must_use]
    pub fn items_seen(&self) -> usize {
        self.items.len()
    }

    /// Items admitted and not yet departed.
    #[must_use]
    pub fn active_items(&self) -> usize {
        self.active_items
    }

    /// Currently open bins.
    #[must_use]
    pub fn open_bins(&self) -> usize {
        self.engine.open_bins().len()
    }

    /// Bins ever opened.
    #[must_use]
    pub fn bins_opened(&self) -> usize {
        self.engine.bins_opened()
    }

    /// Sum of all open bins' loads over all dimensions — the
    /// least-loaded router's shard weight.
    #[must_use]
    pub fn load_l1(&self) -> u128 {
        self.engine
            .open_bins()
            .iter()
            .map(|b| {
                self.engine
                    .bin_load(b.0)
                    .iter()
                    .map(|&v| u128::from(v))
                    .sum::<u128>()
            })
            .sum()
    }

    /// The bin holding `item`, if it has arrived (still set after
    /// departure).
    #[must_use]
    pub fn item_bin(&self, item: usize) -> Option<BinId> {
        self.engine.assignment_of(item)
    }

    /// Whether `item` has departed.
    #[must_use]
    pub fn has_departed(&self, item: usize) -> bool {
        self.departed.get(item).copied().unwrap_or(false)
    }

    /// Accumulated usage time at tick `at` (eq. 1, evaluated mid-run):
    /// closed bins contribute their full usage period, open bins the
    /// span from opening to `max(at, opened)`.
    #[must_use]
    pub fn usage_time_at(&self, at: Time) -> Cost {
        let mut total: Cost = 0;
        for b in 0..self.engine.bins_opened() {
            let opened = self.engine.opened_at(b);
            let end = if self.engine.bin_active(b) > 0 {
                at.max(opened)
            } else {
                self.engine.closed_at(b)
            };
            total += Cost::from(end - opened);
        }
        total
    }

    /// Feeds every event of `source` through the live engine, mapping
    /// the source's item indices to this engine's dense run-local ones
    /// (the map holds only *active* items, so a constant-memory source
    /// drives a constant-memory live run).
    ///
    /// Because departed entries are dropped from the map, a source that
    /// re-uses the index of an already-departed item is admitted as a
    /// fresh item rather than rejected — live engines assign their own
    /// identities. Re-use of a still-active index is rejected.
    ///
    /// # Errors
    ///
    /// [`crate::StreamError::Source`] when the source fails;
    /// [`crate::StreamError::Feed`] when an operation is rejected (the
    /// [`LiveError`] of the failing [`arrive`](Self::arrive) /
    /// [`depart`](Self::depart), state unchanged by the rejected call).
    pub fn drive_source<S: crate::EventSource + ?Sized>(
        &mut self,
        source: &mut S,
    ) -> Result<LiveDriveStats, crate::StreamError> {
        let mut local: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        let mut stats = LiveDriveStats::default();
        while let Some(op) = source.next_event().map_err(crate::StreamError::Source)? {
            match op {
                LiveOp::Arrive { item, size, time } => {
                    if local.contains_key(&item) {
                        return Err(LiveError::DuplicateArrival { item }.into());
                    }
                    let placed = self.arrive(size, time).map_err(crate::StreamError::Feed)?;
                    local.insert(item, placed.item);
                    stats.placed += 1;
                }
                LiveOp::Depart { item, time } => {
                    let Some(idx) = local.remove(&item) else {
                        return Err(LiveError::UnknownItem { item }.into());
                    };
                    if let Err(e) = self.depart(idx, time) {
                        local.insert(item, idx);
                        return Err(crate::StreamError::Feed(e));
                    }
                    stats.departed += 1;
                }
            }
        }
        Ok(stats)
    }

    /// Snapshot of the run as a [`Packing`], consuming the engine.
    /// Requires a drained run (every admitted item departed), since a
    /// packing's bins all have closed usage periods.
    ///
    /// # Errors
    ///
    /// [`LiveError::StillActive`] if items remain.
    pub fn into_packing(self) -> Result<Packing, LiveError> {
        if self.active_items > 0 {
            return Err(LiveError::StillActive {
                active: self.active_items,
            });
        }
        Ok(self.engine.snapshot_packing(self.full, self.trace))
    }
}

/// Outcome counts of one [`LiveEngine::drive_source`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LiveDriveStats {
    /// Arrivals admitted and placed.
    pub placed: u64,
    /// Departures applied.
    pub departed: u64,
}

/// One replayable live operation. `item` indices refer to positions in
/// the originating [`Instance`]; a [`LiveEngine`] fed these operations
/// assigns its own dense indices in arrival order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LiveOp {
    /// Arrival of instance item `item`.
    Arrive {
        /// Instance item index.
        item: usize,
        /// The item's size vector.
        size: DimVec,
        /// Arrival tick.
        time: Time,
    },
    /// Departure of instance item `item`.
    Depart {
        /// Instance item index.
        item: usize,
        /// Departure tick.
        time: Time,
    },
}

/// The batch engine's exact event order for `instance`, as a list of
/// live operations: departures before arrivals at equal ticks, arrivals
/// tie-broken by item index. Feeding these to a [`LiveEngine`] in order
/// (strict mode) reproduces the batch run bit-for-bit — the canonical
/// feed of the serve conformance layer and the recovery fuzzer.
#[must_use]
pub fn live_ops(instance: &Instance) -> Vec<LiveOp> {
    OnlineTimeline::build(&instance.intervals())
        .events()
        .iter()
        .map(|ev| match *ev {
            Event::Arrival { time, item } => LiveOp::Arrive {
                item,
                size: instance.items[item].size.clone(),
                time,
            },
            Event::Departure { time, item } => LiveOp::Depart { item, time },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PackRequest;
    use std::collections::HashMap;

    fn item(size: &[u64], a: Time, e: Time) -> Item {
        Item::new(DimVec::from_slice(size), a, e)
    }

    fn sample() -> Instance {
        Instance::new(
            DimVec::from_slice(&[10, 10]),
            vec![
                item(&[7, 2], 0, 10),
                item(&[2, 7], 2, 5),
                item(&[3, 3], 4, 6),
                item(&[9, 9], 5, 12),
                item(&[1, 1], 5, 7),
                item(&[5, 5], 10, 14),
            ],
        )
        .unwrap()
    }

    /// Drives `instance` through a live engine in timeline order and
    /// returns the live packing with its assignment/bins/trace mapped
    /// back to instance item indices.
    fn live_run(instance: &Instance, kind: &PolicyKind) -> Packing {
        let mut live = LiveEngine::new(
            instance.capacity.clone(),
            kind,
            TraceMode::Full,
            TimeMode::Strict,
        )
        .unwrap();
        // orig item index -> live index
        let mut local = HashMap::new();
        for op in live_ops(instance) {
            match op {
                LiveOp::Arrive { item, size, time } => {
                    let placed = live.arrive(size, time).unwrap();
                    local.insert(item, placed.item);
                }
                LiveOp::Depart { item, time } => {
                    live.depart(local[&item], time).unwrap();
                }
            }
        }
        assert_eq!(live.active_items(), 0);
        assert_eq!(live.open_bins(), 0);
        let packing = live.into_packing().unwrap();
        // Map live indices back to instance indices.
        let mut back = vec![usize::MAX; local.len()];
        for (&orig, &idx) in &local {
            back[idx] = orig;
        }
        let mut assignment = vec![BinId(usize::MAX); packing.assignment.len()];
        for (idx, &bin) in packing.assignment.iter().enumerate() {
            assignment[back[idx]] = bin;
        }
        let bins = packing
            .bins
            .iter()
            .map(|b| crate::bin::BinUsage {
                opened: b.opened,
                closed: b.closed,
                items: b.items.iter().map(|&i| back[i]).collect(),
            })
            .collect();
        let trace = packing
            .trace
            .iter()
            .map(|ev| match *ev {
                TraceEvent::Packed {
                    time,
                    item,
                    bin,
                    opened_new,
                } => TraceEvent::Packed {
                    time,
                    item: back[item],
                    bin,
                    opened_new,
                },
                closed => closed,
            })
            .collect();
        Packing {
            assignment,
            bins,
            trace,
        }
    }

    #[test]
    fn timeline_feed_is_bit_identical_to_batch_for_every_live_kind() {
        let instance = sample();
        for kind in [
            PolicyKind::FirstFit,
            PolicyKind::IndexedFirstFit,
            PolicyKind::MoveToFront,
            PolicyKind::NextFit,
            PolicyKind::LastFit,
            PolicyKind::BestFit(crate::LoadMeasure::Linf),
            PolicyKind::WorstFit(crate::LoadMeasure::Linf),
            PolicyKind::RandomFit { seed: 11 },
        ] {
            let batch = PackRequest::new(kind.clone()).run(&instance).unwrap();
            let live = live_run(&instance, &kind);
            assert_eq!(live, batch, "{}", kind.name());
        }
    }

    #[test]
    fn clairvoyant_kinds_are_rejected() {
        for kind in [PolicyKind::DurationClassFirstFit, PolicyKind::AlignedFit] {
            let err = LiveEngine::new(
                DimVec::from_slice(&[10]),
                &kind,
                TraceMode::Full,
                TimeMode::Strict,
            )
            .err()
            .expect("clairvoyant kinds must be rejected");
            assert!(matches!(err, LiveError::Clairvoyant { .. }), "{err}");
        }
    }

    #[test]
    fn invalid_arrivals_are_rejected_without_state_change() {
        let mut live = LiveEngine::new(
            DimVec::from_slice(&[10, 10]),
            &PolicyKind::FirstFit,
            TraceMode::Full,
            TimeMode::Strict,
        )
        .unwrap();
        let cases = [
            (DimVec::from_slice(&[5]), 0, "dim mismatch"),
            (DimVec::from_slice(&[11, 1]), 0, "oversized"),
            (DimVec::from_slice(&[0, 0]), 0, "zero size"),
            (DimVec::from_slice(&[1, 1]), Time::MAX, "time at MAX"),
        ];
        for (size, t, what) in cases {
            assert!(
                matches!(live.arrive(size, t), Err(LiveError::Pack(_))),
                "{what}"
            );
        }
        assert_eq!(live.items_seen(), 0);
        assert_eq!(live.bins_opened(), 0);
    }

    #[test]
    fn strict_mode_enforces_order_and_equal_tick_rule() {
        let mut live = LiveEngine::new(
            DimVec::from_slice(&[10]),
            &PolicyKind::FirstFit,
            TraceMode::Full,
            TimeMode::Strict,
        )
        .unwrap();
        live.arrive(DimVec::from_slice(&[5]), 5).unwrap();
        // Time moves backwards: rejected.
        assert!(matches!(
            live.arrive(DimVec::from_slice(&[1]), 4),
            Err(LiveError::OutOfOrder { time: 4, now: 5 })
        ));
        live.arrive(DimVec::from_slice(&[2]), 7).unwrap();
        // A departure at tick 7 after tick-7 arrivals violates the
        // equal-tick rule...
        assert!(matches!(
            live.depart(0, 7),
            Err(LiveError::EqualTickOrder { time: 7 })
        ));
        // ...but a later tick is fine, and frees capacity.
        let dep = live.depart(0, 8).unwrap();
        assert_eq!(dep.bin, BinId(0));
        assert!(!dep.closed);
        // Unknown / duplicate departures.
        assert!(matches!(
            live.depart(9, 9),
            Err(LiveError::UnknownItem { item: 9 })
        ));
        assert!(matches!(
            live.depart(0, 9),
            Err(LiveError::AlreadyDeparted { item: 0 })
        ));
        // Departing the last item closes the bin.
        let dep = live.depart(1, 9).unwrap();
        assert!(dep.closed);
        assert_eq!(live.open_bins(), 0);
        assert_eq!(live.usage_time_at(live.now()), 4);
    }

    #[test]
    fn strict_mode_rejects_zero_duration_departs() {
        // A zero-duration item (depart on its arrival tick) stays an
        // error in strict mode — the batch timeline cannot produce it.
        let mut live = LiveEngine::new(
            DimVec::from_slice(&[10]),
            &PolicyKind::FirstFit,
            TraceMode::Full,
            TimeMode::Strict,
        )
        .unwrap();
        live.arrive(DimVec::from_slice(&[5]), 3).unwrap();
        assert!(matches!(
            live.depart(0, 3),
            Err(LiveError::EqualTickOrder { time: 3 })
        ));
        live.depart(0, 4).unwrap();
    }

    #[test]
    fn clamp_mode_pulls_early_timestamps_forward() {
        let mut live = LiveEngine::new(
            DimVec::from_slice(&[10]),
            &PolicyKind::FirstFit,
            TraceMode::Full,
            TimeMode::Clamp,
        )
        .unwrap();
        live.arrive(DimVec::from_slice(&[5]), 10).unwrap();
        // t=4 is behind the clock: clamped to 10, not rejected.
        let placed = live.arrive(DimVec::from_slice(&[2]), 4).unwrap();
        assert_eq!(placed.time, 10);
        live.arrive(DimVec::from_slice(&[1]), 12).unwrap();
        // An early departure clamps forward to the current tick.
        let dep = live.depart(0, 2).unwrap();
        assert_eq!(dep.time, 12);
    }

    #[test]
    fn clamp_mode_gives_zero_duration_items_a_one_tick_stay() {
        // The dirty-feed shape real traces produce: an item arrives and
        // departs at the same wall-clock tick. Clamp mode charges the
        // minimum one-tick stay instead of rejecting.
        let mut live = LiveEngine::new(
            DimVec::from_slice(&[10]),
            &PolicyKind::FirstFit,
            TraceMode::Full,
            TimeMode::Clamp,
        )
        .unwrap();
        live.arrive(DimVec::from_slice(&[5]), 3).unwrap();
        let dep = live.depart(0, 3).unwrap();
        assert_eq!(dep.time, 4, "zero-duration stay clamps to arrival + 1");
        assert!(dep.closed, "the one-tick stay still closes the bin");
        let clamped = live.into_packing().unwrap();

        // Cost accounting and bin-close events match the batch engine
        // packing the clamped image of the feed ([3, 4)).
        let image = Instance::new(DimVec::from_slice(&[10]), vec![item(&[5], 3, 4)]).unwrap();
        let batch = PackRequest::new(PolicyKind::FirstFit).run(&image).unwrap();
        assert_eq!(clamped, batch);
        assert_eq!(clamped.cost(), 1);
    }

    #[test]
    fn clamp_mode_zero_duration_departure_behind_the_clock() {
        // A departure both behind the clock *and* at/before its item's
        // arrival first clamps to `now`, then (still on the arrival
        // tick) to `arrival + 1`.
        let mut live = LiveEngine::new(
            DimVec::from_slice(&[10]),
            &PolicyKind::FirstFit,
            TraceMode::Full,
            TimeMode::Clamp,
        )
        .unwrap();
        live.arrive(DimVec::from_slice(&[5]), 7).unwrap();
        let dep = live.depart(0, 2).unwrap();
        assert_eq!(dep.time, 8);
        assert_eq!(live.now(), 8);
        assert_eq!(live.usage_time_at(live.now()), 1);
    }

    #[test]
    fn drive_source_replays_an_instance_stream() {
        let instance = sample();
        let mut live = LiveEngine::new(
            instance.capacity.clone(),
            &PolicyKind::FirstFit,
            TraceMode::Full,
            TimeMode::Strict,
        )
        .unwrap();
        let mut source = crate::InstanceSource::new(&instance).unwrap();
        let stats = live.drive_source(&mut source).unwrap();
        assert_eq!(stats.placed, instance.len() as u64);
        assert_eq!(stats.departed, instance.len() as u64);
        // `sample()` is arrival-sorted, so the live engine's dense
        // arrival-order indices coincide with the instance's and the
        // packings compare directly.
        let batch = PackRequest::new(PolicyKind::FirstFit)
            .run(&instance)
            .unwrap();
        assert_eq!(live.into_packing().unwrap(), batch);
    }

    #[test]
    fn usage_time_tracks_open_and_closed_bins() {
        let mut live = LiveEngine::new(
            DimVec::from_slice(&[4]),
            &PolicyKind::FirstFit,
            TraceMode::CostOnly,
            TimeMode::Strict,
        )
        .unwrap();
        live.arrive(DimVec::from_slice(&[3]), 0).unwrap();
        live.arrive(DimVec::from_slice(&[3]), 2).unwrap(); // second bin
        assert_eq!(live.open_bins(), 2);
        assert_eq!(live.load_l1(), 6);
        // At t=5: bin0 open since 0 (5 ticks), bin1 open since 2 (3).
        assert_eq!(live.usage_time_at(5), 5 + 3);
        live.depart(0, 5).unwrap();
        assert_eq!(live.usage_time_at(5), 5 + 3);
        live.depart(1, 6).unwrap();
        assert_eq!(live.usage_time_at(8), 5 + 4);
        let packing = live.into_packing().unwrap();
        assert_eq!(packing.cost(), 9);
    }

    #[test]
    fn into_packing_requires_a_drained_run() {
        let mut live = LiveEngine::new(
            DimVec::from_slice(&[10]),
            &PolicyKind::FirstFit,
            TraceMode::Full,
            TimeMode::Strict,
        )
        .unwrap();
        live.arrive(DimVec::from_slice(&[5]), 0).unwrap();
        assert!(matches!(
            live.into_packing(),
            Err(LiveError::StillActive { active: 1 })
        ));
    }

    #[test]
    fn live_ops_order_departures_before_equal_tick_arrivals() {
        let instance = sample();
        let ops = live_ops(&instance);
        // Item 1 departs at t=5; items 3 and 4 arrive at t=5. The
        // departure must come first, then arrivals by item index.
        let tick5: Vec<&LiveOp> = ops
            .iter()
            .filter(|op| match op {
                LiveOp::Arrive { time, .. } | LiveOp::Depart { time, .. } => *time == 5,
            })
            .collect();
        assert!(matches!(tick5[0], LiveOp::Depart { item: 1, .. }));
        assert!(matches!(tick5[1], LiveOp::Arrive { item: 3, .. }));
        assert!(matches!(tick5[2], LiveOp::Arrive { item: 4, .. }));
    }
}

//! `FitIndex`: per-dimension max-residual segment trees over bins, the
//! engine's O(log m) bin-selection structure.
//!
//! Generalizes the d = 1 residual tree prototyped in the original
//! `IndexedFirstFit` policy to arbitrary dimension. One implicit-heap
//! segment tree is kept per dimension, stored **node-major** in a single
//! flat `u64` arena: node `i` owns `tree[i*d .. (i+1)*d]`, where entry `j`
//! is the maximum residual capacity in dimension `j` over the leaves
//! below `i`. Leaves are bins in opening order (leaf `b` = node
//! `leaves + b`), so an in-order traversal enumerates bins by `BinId` —
//! exactly the First Fit order.
//!
//! A subtree can contain a bin that fits an item needing `need[j]` units
//! only if its max residual is `≥ need[j]` **in every dimension** — a
//! necessary condition that is also sufficient at a leaf, where the node
//! holds one bin's actual residual vector. The descents below prune on
//! that condition and backtrack where it is necessary-but-not-sufficient
//! (possible only for `d ≥ 2`): `first_fit`/`last_fit` are exact
//! O(log m) for `d = 1` and expected O(log m) on non-adversarial
//! workloads otherwise, degrading gracefully to the scan's O(m·d) in the
//! worst case. Closed bins are pinned to residual 0 in all dimensions, so
//! they are never matched: a valid item has at least one nonzero size
//! component (enforced by `Instance::validate`), which the zero residual
//! cannot cover.
//!
//! The tree grows by doubling (amortized O(d) per opened bin) and is
//! reused across runs via [`FitIndex::reset`], so a warmed engine
//! performs no allocations here in steady state.

/// Per-dimension max-residual segment trees over bins, node-major SoA.
#[derive(Clone, Debug, Default)]
pub struct FitIndex {
    /// Dimensionality `d` of residual vectors.
    dims: usize,
    /// Number of leaves (a power of two, or 0 before first use).
    leaves: usize,
    /// Node-major arena: `2 * leaves * dims` entries, root at node 1.
    tree: Vec<u64>,
    /// Number of bins ever registered (leaves `0..bins` are live).
    bins: usize,
}

impl FitIndex {
    /// Creates an empty index for `dims`-dimensional residuals.
    #[must_use]
    pub fn new(dims: usize) -> Self {
        FitIndex {
            dims,
            leaves: 0,
            tree: Vec::new(),
            bins: 0,
        }
    }

    /// Clears all bins. When `dims` is unchanged the grown arena is kept
    /// (zeroed in place), so a warmed index re-runs without allocating;
    /// a dimension change discards it.
    pub fn reset(&mut self, dims: usize) {
        if dims == self.dims {
            self.tree.fill(0);
        } else {
            self.dims = dims;
            self.leaves = 0;
            self.tree.clear();
        }
        self.bins = 0;
    }

    /// Number of bins registered via [`FitIndex::open`].
    #[must_use]
    pub fn num_bins(&self) -> usize {
        self.bins
    }

    #[inline]
    fn node(&self, i: usize) -> &[u64] {
        &self.tree[i * self.dims..(i + 1) * self.dims]
    }

    /// Recomputes node `i` from its two children.
    #[inline]
    fn pull(&mut self, i: usize) {
        let d = self.dims;
        for j in 0..d {
            self.tree[i * d + j] = self.tree[(2 * i) * d + j].max(self.tree[(2 * i + 1) * d + j]);
        }
    }

    /// Recomputes node `i` from its two children; returns whether any
    /// component actually changed. An unchanged node implies all its
    /// ancestors are unchanged too, so update climbs can stop here.
    #[inline]
    fn pull_changed(&mut self, i: usize) -> bool {
        let d = self.dims;
        let mut changed = false;
        for j in 0..d {
            let v = self.tree[(2 * i) * d + j].max(self.tree[(2 * i + 1) * d + j]);
            if self.tree[i * d + j] != v {
                self.tree[i * d + j] = v;
                changed = true;
            }
        }
        changed
    }

    /// Grows the leaf level to hold at least `bins` bins, preserving
    /// existing residuals.
    fn ensure(&mut self, bins: usize) {
        if bins <= self.leaves {
            return;
        }
        let d = self.dims;
        let mut leaves = self.leaves.max(1);
        while leaves < bins {
            leaves *= 2;
        }
        let mut fresh = vec![0u64; 2 * leaves * d];
        fresh[leaves * d..(leaves + self.leaves) * d]
            .copy_from_slice(&self.tree[self.leaves * d..2 * self.leaves * d]);
        self.leaves = leaves;
        self.tree = fresh;
        for i in (1..leaves).rev() {
            self.pull(i);
        }
    }

    /// Fixes a leaf's root path after its residual changed, stopping at
    /// the first ancestor whose per-dimension max is unaffected (a bin
    /// rarely holds the subtree max in every dimension, so most climbs
    /// terminate after one or two pulls).
    fn update_path(&mut self, bin: usize) {
        let mut i = (self.leaves + bin) / 2;
        while i >= 1 {
            if !self.pull_changed(i) {
                return;
            }
            i /= 2;
        }
    }

    /// Bulk-(re)builds the index over `bins` bins in O(bins · d),
    /// reading each leaf's residual through `residual_of` (closed bins
    /// must be written as all-zero). Used by the engine to bring a
    /// deliberately-stale index up to date the first time a policy asks
    /// for it mid-run; a warmed arena of sufficient size is reused
    /// without allocating.
    pub fn rebuild(&mut self, bins: usize, mut residual_of: impl FnMut(usize, &mut [u64])) {
        let d = self.dims;
        let mut leaves = self.leaves.max(1);
        while leaves < bins {
            leaves *= 2;
        }
        if self.tree.len() != 2 * leaves * d {
            self.leaves = leaves;
            self.tree.clear();
            self.tree.resize(2 * leaves * d, 0);
        }
        self.bins = bins;
        let base = leaves * d;
        for b in 0..bins {
            residual_of(b, &mut self.tree[base + b * d..base + (b + 1) * d]);
        }
        // Stale leaves past `bins` and all internal nodes are recomputed.
        self.tree[base + bins * d..].fill(0);
        for i in (1..leaves).rev() {
            self.pull(i);
        }
    }

    /// Registers bin `bin` (must be `num_bins()`, i.e. bins open in id
    /// order) with the given initial residual (= full capacity).
    ///
    /// # Panics
    ///
    /// Panics if bins are opened out of order or `residual` has the wrong
    /// dimension.
    pub fn open(&mut self, bin: usize, residual: &[u64]) {
        assert_eq!(bin, self.bins, "bins must open in id order");
        assert_eq!(residual.len(), self.dims, "residual dimension mismatch");
        self.bins += 1;
        self.ensure(self.bins);
        let d = self.dims;
        let leaf = (self.leaves + bin) * d;
        self.tree[leaf..leaf + d].copy_from_slice(residual);
        self.update_path(bin);
    }

    /// Subtracts `size` from `bin`'s residual (an item was packed).
    ///
    /// # Panics
    ///
    /// Debug-asserts that the residual covers `size` (the engine checks
    /// feasibility before packing).
    pub fn pack(&mut self, bin: usize, size: &[u64]) {
        let d = self.dims;
        let leaf = (self.leaves + bin) * d;
        for (j, &s) in size.iter().enumerate().take(d) {
            debug_assert!(self.tree[leaf + j] >= s, "overpacked bin {bin}");
            self.tree[leaf + j] -= s;
        }
        self.update_path(bin);
    }

    /// Adds `size` back to `bin`'s residual (an item departed).
    pub fn unpack(&mut self, bin: usize, size: &[u64]) {
        let d = self.dims;
        let leaf = (self.leaves + bin) * d;
        for (j, &s) in size.iter().enumerate().take(d) {
            self.tree[leaf + j] += s;
        }
        self.update_path(bin);
    }

    /// Pins `bin`'s residual to 0 in every dimension: the bin closed and
    /// must never be matched again.
    pub fn close(&mut self, bin: usize) {
        let d = self.dims;
        let leaf = (self.leaves + bin) * d;
        self.tree[leaf..leaf + d].fill(0);
        self.update_path(bin);
    }

    /// `bin`'s current residual vector.
    #[must_use]
    pub fn residual(&self, bin: usize) -> &[u64] {
        self.node(self.leaves + bin)
    }

    /// `true` iff `bin`'s residual covers `need` in every dimension.
    #[must_use]
    pub fn fits(&self, bin: usize, need: &[u64]) -> bool {
        Self::covers(self.residual(bin), need)
    }

    #[inline]
    fn covers(residual: &[u64], need: &[u64]) -> bool {
        residual.iter().zip(need).all(|(r, n)| r >= n)
    }

    /// Lowest-id bin whose residual covers `need` in every dimension —
    /// the First Fit choice. Left-first pruned descent with backtracking.
    #[must_use]
    pub fn first_fit(&self, need: &[u64]) -> Option<usize> {
        if self.bins == 0 || !Self::covers(self.node(1), need) {
            return None;
        }
        let mut i = 1usize;
        loop {
            if i >= self.leaves {
                return Some(i - self.leaves);
            }
            if Self::covers(self.node(2 * i), need) {
                i *= 2;
                continue;
            }
            // Left subtree pruned; the right must cover (the parent did),
            // but for d >= 2 "covers" is only necessary: if the right
            // subtree later dead-ends we must backtrack past it.
            if Self::covers(self.node(2 * i + 1), need) {
                i = 2 * i + 1;
                continue;
            }
            // Dead end: climb until we can move to an unvisited right
            // sibling whose subtree covers `need`.
            loop {
                if i == 1 {
                    return None;
                }
                let parent = i / 2;
                if i == 2 * parent {
                    // We came from the left child; try the right sibling.
                    if Self::covers(self.node(2 * parent + 1), need) {
                        i = 2 * parent + 1;
                        break;
                    }
                }
                i = parent;
            }
        }
    }

    /// Highest-id bin whose residual covers `need` — the Last Fit choice.
    #[must_use]
    pub fn last_fit(&self, need: &[u64]) -> Option<usize> {
        if self.bins == 0 || !Self::covers(self.node(1), need) {
            return None;
        }
        let mut i = 1usize;
        loop {
            if i >= self.leaves {
                return Some(i - self.leaves);
            }
            if Self::covers(self.node(2 * i + 1), need) {
                i = 2 * i + 1;
                continue;
            }
            if Self::covers(self.node(2 * i), need) {
                i *= 2;
                continue;
            }
            loop {
                if i == 1 {
                    return None;
                }
                let parent = i / 2;
                if i == 2 * parent + 1 {
                    // We came from the right child; try the left sibling.
                    if Self::covers(self.node(2 * parent), need) {
                        i = 2 * parent;
                        break;
                    }
                }
                i = parent;
            }
        }
    }

    /// Calls `f(bin, residual)` for every bin whose residual covers
    /// `need`, in ascending bin-id order (pruned in-order traversal).
    /// The residual slice is the cache-hot leaf just tested, so callers
    /// ranking candidates (Best/Worst Fit) need no second lookup into the
    /// load arena: O(log m + feasible · d) instead of the scan's O(m · d).
    pub fn for_each_feasible(&self, need: &[u64], mut f: impl FnMut(usize, &[u64])) {
        if self.bins == 0 {
            return;
        }
        self.visit(1, need, &mut f);
    }

    fn visit(&self, i: usize, need: &[u64], f: &mut impl FnMut(usize, &[u64])) {
        let node = self.node(i);
        if !Self::covers(node, need) {
            return;
        }
        if i >= self.leaves {
            f(i - self.leaves, node);
            return;
        }
        self.visit(2 * i, need, f);
        self.visit(2 * i + 1, need, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force twin used to cross-check every query.
    fn naive_first_fit(res: &[Vec<u64>], need: &[u64]) -> Option<usize> {
        res.iter()
            .position(|r| r.iter().zip(need).all(|(a, b)| a >= b))
    }

    #[test]
    fn one_dim_basic() {
        let mut idx = FitIndex::new(1);
        idx.open(0, &[10]);
        idx.open(1, &[10]);
        idx.pack(0, &[5]);
        idx.pack(1, &[3]);
        assert_eq!(idx.first_fit(&[4]), Some(0));
        assert_eq!(idx.first_fit(&[6]), Some(1));
        assert_eq!(idx.first_fit(&[8]), None);
        assert_eq!(idx.last_fit(&[4]), Some(1));
        idx.unpack(0, &[5]);
        assert_eq!(idx.first_fit(&[8]), Some(0));
    }

    #[test]
    fn multidim_backtracking() {
        // Bin 0 covers dim 0 only, bin 1 covers dim 1 only, bin 2 covers
        // both: the left-first descent must backtrack past both fakes.
        let mut idx = FitIndex::new(2);
        idx.open(0, &[9, 1]);
        idx.open(1, &[1, 9]);
        idx.open(2, &[5, 5]);
        assert_eq!(idx.first_fit(&[2, 2]), Some(2));
        assert_eq!(idx.first_fit(&[6, 1]), Some(0));
        assert_eq!(idx.first_fit(&[1, 6]), Some(1));
        assert_eq!(idx.first_fit(&[6, 6]), None);
        assert_eq!(idx.last_fit(&[2, 2]), Some(2));
        assert_eq!(idx.last_fit(&[6, 1]), Some(0));
    }

    #[test]
    fn closed_bins_never_match() {
        let mut idx = FitIndex::new(1);
        idx.open(0, &[10]);
        idx.open(1, &[10]);
        idx.close(0);
        assert_eq!(idx.first_fit(&[1]), Some(1));
        idx.close(1);
        assert_eq!(idx.first_fit(&[1]), None);
    }

    #[test]
    fn growth_preserves_residuals() {
        let mut idx = FitIndex::new(3);
        let mut naive: Vec<Vec<u64>> = Vec::new();
        for b in 0..40 {
            let r = vec![(b as u64 % 7) + 1, (b as u64 % 5) + 1, (b as u64 % 3) + 1];
            idx.open(b, &r);
            naive.push(r);
        }
        for need in [[1, 1, 1], [7, 1, 1], [7, 5, 3], [8, 1, 1], [2, 4, 2]] {
            assert_eq!(idx.first_fit(&need), naive_first_fit(&naive, &need));
        }
    }

    #[test]
    fn enumeration_matches_scan_order() {
        let mut idx = FitIndex::new(2);
        let residuals = [[3u64, 4], [5, 1], [2, 2], [6, 6], [0, 9]];
        for (b, r) in residuals.iter().enumerate() {
            idx.open(b, r);
        }
        let mut seen = Vec::new();
        idx.for_each_feasible(&[2, 2], |b, res| {
            assert_eq!(res, &residuals[b][..]);
            seen.push(b);
        });
        assert_eq!(seen, vec![0, 2, 3]);
    }

    #[test]
    fn randomized_against_naive() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for d in [1usize, 2, 3, 8, 9] {
            let mut idx = FitIndex::new(d);
            let mut naive: Vec<Vec<u64>> = Vec::new();
            for step in 0..400 {
                let op = rng.random_range(0..4u32);
                match op {
                    0 => {
                        let r: Vec<u64> = (0..d).map(|_| rng.random_range(0..=10)).collect();
                        idx.open(naive.len(), &r);
                        naive.push(r);
                    }
                    1 if !naive.is_empty() => {
                        let b = rng.random_range(0..naive.len());
                        let delta: Vec<u64> =
                            naive[b].iter().map(|&r| rng.random_range(0..=r)).collect();
                        idx.pack(b, &delta);
                        for (r, x) in naive[b].iter_mut().zip(&delta) {
                            *r -= x;
                        }
                    }
                    2 if !naive.is_empty() => {
                        let b = rng.random_range(0..naive.len());
                        let delta: Vec<u64> = (0..d).map(|_| rng.random_range(0..=3)).collect();
                        idx.unpack(b, &delta);
                        for (r, x) in naive[b].iter_mut().zip(&delta) {
                            *r += x;
                        }
                    }
                    _ if !naive.is_empty() => {
                        let b = rng.random_range(0..naive.len());
                        idx.close(b);
                        naive[b].fill(0);
                    }
                    _ => {}
                }
                if step % 7 == 0 {
                    let need: Vec<u64> = (0..d).map(|_| rng.random_range(1..=6)).collect();
                    assert_eq!(
                        idx.first_fit(&need),
                        naive_first_fit(&naive, &need),
                        "d={d} step={step} need={need:?}"
                    );
                    let last = naive
                        .iter()
                        .rposition(|r| r.iter().zip(&need).all(|(a, b)| a >= b));
                    assert_eq!(idx.last_fit(&need), last, "d={d} step={step}");
                    let mut enumerated = Vec::new();
                    idx.for_each_feasible(&need, |b, res| {
                        assert_eq!(res, &naive[b][..], "d={d} step={step} bin={b}");
                        enumerated.push(b);
                    });
                    let expected: Vec<usize> = naive
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.iter().zip(&need).all(|(a, b)| a >= b))
                        .map(|(b, _)| b)
                        .collect();
                    assert_eq!(enumerated, expected, "d={d} step={step}");
                }
            }
        }
    }

    #[test]
    fn reset_reuses_allocation() {
        let mut idx = FitIndex::new(2);
        for b in 0..20 {
            idx.open(b, &[5, 5]);
        }
        // Same-dims reset keeps the grown arena zeroed in place.
        idx.reset(2);
        assert_eq!(idx.num_bins(), 0);
        assert_eq!(idx.first_fit(&[1, 1]), None);
        idx.open(0, &[4, 4]);
        assert_eq!(idx.first_fit(&[1, 1]), Some(0));
        // Dimension change rebuilds from scratch.
        idx.reset(3);
        assert_eq!(idx.first_fit(&[1, 1, 1]), None);
        idx.open(0, &[4, 4, 4]);
        assert_eq!(idx.first_fit(&[1, 1, 1]), Some(0));
    }
}

//! [`EventSource`]: streaming, constant-memory event feeds for the
//! packing engine.
//!
//! A batch [`Engine::run`] replays a fully materialized [`Instance`] —
//! every item, with its size and both endpoints, resident in memory
//! before the first placement. Real cluster traces (Azure VM packing,
//! Google cluster-usage) hold millions of items; materializing them is
//! both wasteful and unnecessary, because the online model only ever
//! needs the *next* event. An `EventSource` is exactly that: a pull
//! iterator of time-ordered [`LiveOp`]s (canonical order — departures
//! before arrivals at equal ticks) that the engine consumes one event at
//! a time via [`Engine::run_source`], never holding more than the
//! currently *active* items.
//!
//! # The contract
//!
//! A well-formed source yields events satisfying:
//!
//! 1. event times are non-decreasing, and within one tick all departures
//!    precede the first arrival (the paper's §2.1 equal-tick rule);
//! 2. every `Arrive` carries a fresh item index (indices need not be
//!    dense — the engine's per-item ledger is indexed by them, so dense
//!    indices cost the least memory);
//! 3. every arrived item departs strictly after it arrived, and departs
//!    exactly once, before the stream ends.
//!
//! [`Engine::run_source`] *enforces* the tick discipline and the
//! arrive/depart pairing (typed [`StreamError`]s), so a buggy source
//! cannot silently corrupt a run. Within-tick index order (arrivals by
//! ascending item index) is the source's responsibility; every source in
//! `dvbp-traces` and [`InstanceSource`] below produce it.
//!
//! # Streamed ≡ materialized
//!
//! [`InstanceSource`] adapts a materialized `Instance` into its
//! canonical event stream with the *instance's own* item indices, so
//!
//! ```text
//! Engine::run(instance, ..)  ==  Engine::run_source(InstanceSource::new(instance), ..)
//! ```
//!
//! bit-for-bit — same [`Packing`], same trace, same observer event
//! stream. Conformance layer 9 holds every policy to that over the
//! whole corpus.
//!
//! # Memory
//!
//! The streamed path keeps O(active items + bins ever opened) state plus
//! a flat two-word-per-item ledger (receiving bin + trace chain slot) —
//! the ledger is also the run's *output* (`Packing::assignment`), so it
//! is the floor for any run that reports per-item placements. What the
//! streamed path never holds is the instance itself: no per-item
//! `DimVec`s, no departure times for items not yet active, no event
//! vector. The `dvbp-traces` memory test pins the streamed peak to a
//! small fraction of the materialized one.

use crate::engine::{Engine, Packing, TraceEvent, TraceMode};
use crate::item::{Instance, Item};
use crate::live::{live_ops, LiveError, LiveOp};
use crate::policy::Policy;
use crate::request::PackError;
use dvbp_dimvec::DimVec;
use dvbp_obs::Observer;
use dvbp_sim::{Cost, Time};
use std::collections::HashMap;

/// A failure producing the *next event* of a stream (I/O, a malformed
/// row, an unfixably dirty trace under the `Reject` policy).
///
/// Kept deliberately open-shaped — each trace format has its own
/// pathologies — with an optional 1-based source line for parser errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceError {
    /// 1-based line of the offending row, when the source is a file.
    pub line: Option<u64>,
    /// Human-readable description.
    pub message: String,
}

impl SourceError {
    /// An error with no source location (I/O, generator exhaustion…).
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        SourceError {
            line: None,
            message: message.into(),
        }
    }

    /// A parse error at 1-based `line`.
    #[must_use]
    pub fn at_line(line: u64, message: impl Into<String>) -> Self {
        SourceError {
            line: Some(line),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for SourceError {}

/// A failed streamed run: either the source broke, or its feed violated
/// the event contract (surfaced with the same typed [`LiveError`]s the
/// [`LiveEngine`](crate::LiveEngine) uses).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamError {
    /// The source failed to produce its next event.
    Source(SourceError),
    /// The event feed violated the contract (out-of-order ticks,
    /// equal-tick departures after arrivals, unknown/duplicate items,
    /// invalid sizes, items still active at end of stream).
    Feed(LiveError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Source(e) => write!(f, "source error: {e}"),
            StreamError::Feed(e) => write!(f, "bad event feed: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<SourceError> for StreamError {
    fn from(e: SourceError) -> Self {
        StreamError::Source(e)
    }
}

impl From<LiveError> for StreamError {
    fn from(e: LiveError) -> Self {
        StreamError::Feed(e)
    }
}

impl From<PackError> for StreamError {
    fn from(e: PackError) -> Self {
        StreamError::Feed(LiveError::Pack(e))
    }
}

/// A pull stream of time-ordered packing events.
///
/// See the module docs above for the event contract. Sources are
/// one-shot: a consumed source is exhausted, and re-reading requires
/// constructing a fresh one (deterministic sources — everything in
/// `dvbp-traces` — then yield the identical stream).
pub trait EventSource {
    /// The bin capacity the streamed items are packed against.
    fn capacity(&self) -> &DimVec;

    /// The next event, `None` once the stream is exhausted.
    ///
    /// # Errors
    ///
    /// [`SourceError`] on I/O failures or malformed input.
    fn next_event(&mut self) -> Result<Option<LiveOp>, SourceError>;

    /// Expected number of distinct items, when the source knows it
    /// up front — used only to pre-size the engine's per-item ledger.
    fn items_hint(&self) -> Option<usize> {
        None
    }
}

impl<S: EventSource + ?Sized> EventSource for &mut S {
    fn capacity(&self) -> &DimVec {
        (**self).capacity()
    }

    fn next_event(&mut self) -> Result<Option<LiveOp>, SourceError> {
        (**self).next_event()
    }

    fn items_hint(&self) -> Option<usize> {
        (**self).items_hint()
    }
}

impl<S: EventSource + ?Sized> EventSource for Box<S> {
    fn capacity(&self) -> &DimVec {
        (**self).capacity()
    }

    fn next_event(&mut self) -> Result<Option<LiveOp>, SourceError> {
        (**self).next_event()
    }

    fn items_hint(&self) -> Option<usize> {
        (**self).items_hint()
    }
}

/// A materialized [`Instance`] as an [`EventSource`]: yields the batch
/// engine's exact canonical event order, with the instance's own item
/// indices — the bridge that makes every existing call site a special
/// case of the streaming path, and the witness for the streamed ≡
/// materialized conformance layer.
pub struct InstanceSource {
    capacity: DimVec,
    ops: std::vec::IntoIter<LiveOp>,
    total: usize,
}

impl InstanceSource {
    /// Builds the canonical event stream for `instance`, running the
    /// same validation as [`Engine::run`] so a malformed instance fails
    /// identically on both paths.
    ///
    /// # Errors
    ///
    /// The [`PackError`] the batch run would return.
    pub fn new(instance: &Instance) -> Result<Self, PackError> {
        for (idx, item) in instance.items.iter().enumerate() {
            if item.departure <= item.arrival {
                return Err(PackError::NonMonotoneTime { item: idx });
            }
        }
        instance.validate()?;
        Ok(InstanceSource {
            capacity: instance.capacity.clone(),
            ops: live_ops(instance).into_iter(),
            total: instance.len(),
        })
    }
}

impl EventSource for InstanceSource {
    fn capacity(&self) -> &DimVec {
        &self.capacity
    }

    fn next_event(&mut self) -> Result<Option<LiveOp>, SourceError> {
        Ok(self.ops.next())
    }

    fn items_hint(&self) -> Option<usize> {
        Some(self.total)
    }
}

/// An [`EventSource`] adapter that calls a hook on every event passing
/// through — the zero-copy way to feed side computations (the
/// [`StreamingLowerBound`], counters, progress logs) off a stream the
/// engine is consuming.
pub struct Tap<S, F> {
    source: S,
    hook: F,
}

impl<S: EventSource, F: FnMut(&LiveOp)> Tap<S, F> {
    /// Wraps `source`, invoking `hook` on each yielded event.
    pub fn new(source: S, hook: F) -> Self {
        Tap { source, hook }
    }
}

impl<S: EventSource, F: FnMut(&LiveOp)> EventSource for Tap<S, F> {
    fn capacity(&self) -> &DimVec {
        self.source.capacity()
    }

    fn next_event(&mut self) -> Result<Option<LiveOp>, SourceError> {
        let ev = self.source.next_event()?;
        if let Some(op) = &ev {
            (self.hook)(op);
        }
        Ok(ev)
    }

    fn items_hint(&self) -> Option<usize> {
        self.source.items_hint()
    }
}

/// Streaming form of the Lemma 1(i) load-integral lower bound
/// (`dvbp_offline::lb_load`): folds events as they stream by, keeping
/// only the current per-dimension load and the sizes of active items —
/// O(active) memory against the offline sweep's O(n).
///
/// Feed it every event (e.g. through a [`Tap`] in front of the engine);
/// [`value`](Self::value) then equals `lb_load` of the materialized
/// instance exactly (the `dvbp-traces` property tests pin this).
pub struct StreamingLowerBound {
    capacity: DimVec,
    load: Vec<u64>,
    sizes: HashMap<usize, DimVec>,
    last: Time,
    total: Cost,
    started: bool,
}

impl StreamingLowerBound {
    /// An empty accumulator for bins of the given capacity.
    #[must_use]
    pub fn new(capacity: &DimVec) -> Self {
        StreamingLowerBound {
            capacity: capacity.clone(),
            load: vec![0; capacity.dim()],
            sizes: HashMap::new(),
            last: 0,
            total: 0,
            started: false,
        }
    }

    /// The minimum number of bins forced by the current load:
    /// `max_j ⌈load_j / cap_j⌉`.
    fn height(&self) -> Cost {
        (0..self.capacity.dim())
            .map(|j| Cost::from(self.load[j].div_ceil(self.capacity[j])))
            .max()
            .unwrap_or(0)
    }

    /// Folds one event into the integral. Events must be observed in
    /// stream order.
    pub fn observe(&mut self, op: &LiveOp) {
        let time = match op {
            LiveOp::Arrive { time, .. } | LiveOp::Depart { time, .. } => *time,
        };
        if self.started && time > self.last {
            self.total += self.height() * Cost::from(time - self.last);
        }
        match op {
            LiveOp::Arrive { item, size, .. } => {
                for (j, slot) in self.load.iter_mut().enumerate() {
                    *slot += size[j];
                }
                self.sizes.insert(*item, size.clone());
            }
            LiveOp::Depart { item, .. } => {
                if let Some(size) = self.sizes.remove(item) {
                    for (j, slot) in self.load.iter_mut().enumerate() {
                        *slot -= size[j];
                    }
                }
            }
        }
        self.last = time;
        self.started = true;
    }

    /// The accumulated lower bound (bin-ticks).
    #[must_use]
    pub fn value(&self) -> Cost {
        self.total
    }
}

impl Engine {
    /// Runs `policy` over a streamed event feed, never materializing an
    /// instance: the streamed twin of [`Engine::run`]. An
    /// [`InstanceSource`] feed reproduces the batch run bit-for-bit;
    /// any other well-formed source gets the same engine, the same
    /// policies, and the same observability.
    ///
    /// The feed's tick discipline is enforced (strict canonical order,
    /// as [`TimeMode::Strict`](crate::TimeMode) does for live feeds);
    /// sources wanting clamping semantics apply them source-side, where
    /// the dirt is (see `dvbp-traces`' dirty-trace policies).
    ///
    /// The policy must not be clairvoyant: streamed items carry no
    /// announced durations (the [`PackRequest`](crate::PackRequest)
    /// entry points reject clairvoyant kinds up front).
    ///
    /// # Errors
    ///
    /// [`StreamError::Source`] when the source fails;
    /// [`StreamError::Feed`] when the feed violates the event contract.
    ///
    /// # Panics
    ///
    /// Panics if the policy names a bin that is closed or cannot hold
    /// the item — a policy implementation bug, not an input error.
    pub fn run_source<S: EventSource + ?Sized, O: Observer>(
        &mut self,
        source: &mut S,
        policy: &mut dyn Policy,
        mode: TraceMode,
        observer: &mut O,
    ) -> Result<Packing, StreamError> {
        policy.reset();
        let capacity = source.capacity().clone();
        let hint = source.items_hint().unwrap_or(0);
        self.reset_for(capacity.dim(), hint);

        let full = mode == TraceMode::Full;
        let mut trace: Vec<TraceEvent> = if full {
            Vec::with_capacity(hint * 2)
        } else {
            Vec::new()
        };
        observer.on_run_start(dvbp_obs::RunStart {
            capacity: capacity.as_slice(),
            items: hint,
        });

        // Sizes of currently active items — the only per-item state the
        // streamed path holds beyond the engine's flat ledger.
        let mut in_flight: HashMap<usize, Item> = HashMap::new();
        let mut items_seen = 0usize;
        let mut now: Time = 0;
        let mut last_time: Time = 0;
        let mut arrived_this_tick = false;

        while let Some(op) = source.next_event()? {
            match op {
                LiveOp::Arrive { item, size, time } => {
                    if time < now {
                        return Err(LiveError::OutOfOrder { time, now }.into());
                    }
                    if self.assignment_of(item).is_some() {
                        return Err(LiveError::DuplicateArrival { item }.into());
                    }
                    if size.dim() != capacity.dim() {
                        return Err(PackError::DimMismatch { item }.into());
                    }
                    if !size.fits_within(&capacity) {
                        return Err(PackError::OversizedItem { item }.into());
                    }
                    if size.is_zero() {
                        return Err(PackError::ZeroSizeItem { item }.into());
                    }
                    if time == Time::MAX {
                        // MAX is the live-departure placeholder; an item
                        // arriving there could never depart strictly later.
                        return Err(PackError::NonMonotoneTime { item }.into());
                    }
                    now = time;
                    last_time = time;
                    let entry = in_flight.entry(item).or_insert(Item {
                        size,
                        arrival: time,
                        departure: Time::MAX,
                        announced_duration: None,
                    });
                    items_seen += 1;
                    self.step_arrive(
                        &capacity,
                        time,
                        item,
                        entry,
                        policy,
                        observer,
                        full.then_some(&mut trace),
                    );
                    arrived_this_tick = true;
                }
                LiveOp::Depart { item, time } => {
                    if time < now {
                        return Err(LiveError::OutOfOrder { time, now }.into());
                    }
                    if time == now && arrived_this_tick {
                        return Err(LiveError::EqualTickOrder { time }.into());
                    }
                    if time > now {
                        arrived_this_tick = false;
                    }
                    let Some(mut entry) = in_flight.remove(&item) else {
                        return Err(if self.assignment_of(item).is_some() {
                            LiveError::AlreadyDeparted { item }.into()
                        } else {
                            LiveError::UnknownItem { item }.into()
                        });
                    };
                    if time <= entry.arrival {
                        return Err(PackError::NonMonotoneTime { item }.into());
                    }
                    entry.departure = time;
                    now = time;
                    last_time = time;
                    self.step_depart(
                        time,
                        item,
                        &entry,
                        policy,
                        observer,
                        full.then_some(&mut trace),
                    )
                    .expect("active item has an assignment");
                }
            }
        }
        if !in_flight.is_empty() {
            return Err(LiveError::StillActive {
                active: in_flight.len(),
            }
            .into());
        }
        observer.on_run_end(dvbp_obs::RunEnd {
            time: last_time,
            items: items_seen,
            bins: self.bins_opened(),
        });

        Ok(self.snapshot_packing(full, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use crate::request::PackRequest;
    use dvbp_obs::NoopObserver;

    fn item(size: &[u64], a: Time, e: Time) -> Item {
        Item::new(DimVec::from_slice(size), a, e)
    }

    fn sample() -> Instance {
        Instance::new(
            DimVec::from_slice(&[10, 10]),
            vec![
                item(&[7, 2], 0, 10),
                item(&[2, 7], 2, 5),
                item(&[3, 3], 4, 6),
                item(&[9, 9], 5, 12),
                item(&[1, 1], 5, 7),
                item(&[5, 5], 10, 14),
            ],
        )
        .unwrap()
    }

    #[test]
    fn instance_source_reproduces_batch_bit_for_bit() {
        let instance = sample();
        for kind in [
            PolicyKind::FirstFit,
            PolicyKind::IndexedFirstFit,
            PolicyKind::MoveToFront,
            PolicyKind::NextFit,
            PolicyKind::LastFit,
            PolicyKind::BestFit(crate::LoadMeasure::Linf),
            PolicyKind::WorstFit(crate::LoadMeasure::Linf),
            PolicyKind::RandomFit { seed: 11 },
        ] {
            let batch = PackRequest::new(kind.clone()).run(&instance).unwrap();
            let mut source = InstanceSource::new(&instance).unwrap();
            let streamed = PackRequest::new(kind.clone())
                .run_source(&mut source)
                .unwrap();
            assert_eq!(streamed, batch, "{}", kind.name());
        }
    }

    #[test]
    fn cost_only_streamed_matches_batch() {
        let instance = sample();
        let batch = PackRequest::new(PolicyKind::MoveToFront)
            .trace_mode(TraceMode::CostOnly)
            .run(&instance)
            .unwrap();
        let mut source = InstanceSource::new(&instance).unwrap();
        let streamed = PackRequest::new(PolicyKind::MoveToFront)
            .trace_mode(TraceMode::CostOnly)
            .run_source(&mut source)
            .unwrap();
        assert_eq!(streamed, batch);
        assert!(streamed.trace.is_empty());
    }

    #[test]
    fn instance_source_validates_like_the_batch_run() {
        // Oversized item: both paths return the same typed error.
        let bad = Instance {
            capacity: DimVec::from_slice(&[10]),
            items: vec![Item {
                size: DimVec::from_slice(&[11]),
                arrival: 0,
                departure: 5,
                announced_duration: None,
            }],
        };
        let batch = PackRequest::new(PolicyKind::FirstFit)
            .run(&bad)
            .unwrap_err();
        let streamed = InstanceSource::new(&bad)
            .err()
            .expect("malformed instance must be rejected");
        assert_eq!(batch, streamed);
    }

    /// A hand-rolled source for contract-violation tests.
    struct RawSource {
        capacity: DimVec,
        ops: std::vec::IntoIter<LiveOp>,
    }

    impl RawSource {
        fn new(cap: &[u64], ops: Vec<LiveOp>) -> Self {
            RawSource {
                capacity: DimVec::from_slice(cap),
                ops: ops.into_iter(),
            }
        }
    }

    impl EventSource for RawSource {
        fn capacity(&self) -> &DimVec {
            &self.capacity
        }

        fn next_event(&mut self) -> Result<Option<LiveOp>, SourceError> {
            Ok(self.ops.next())
        }
    }

    fn arrive(item: usize, size: &[u64], time: Time) -> LiveOp {
        LiveOp::Arrive {
            item,
            size: DimVec::from_slice(size),
            time,
        }
    }

    fn depart(item: usize, time: Time) -> LiveOp {
        LiveOp::Depart { item, time }
    }

    fn run_raw(source: RawSource) -> Result<Packing, StreamError> {
        let mut source = source;
        PackRequest::new(PolicyKind::FirstFit).run_source(&mut source)
    }

    #[test]
    fn feed_violations_get_typed_errors() {
        let cases: Vec<(Vec<LiveOp>, StreamError)> = vec![
            (
                vec![arrive(0, &[5], 4), arrive(1, &[5], 2)],
                LiveError::OutOfOrder { time: 2, now: 4 }.into(),
            ),
            (
                vec![arrive(0, &[5], 4), depart(0, 4)],
                LiveError::EqualTickOrder { time: 4 }.into(),
            ),
            (
                vec![arrive(0, &[5], 0), arrive(0, &[5], 1)],
                LiveError::DuplicateArrival { item: 0 }.into(),
            ),
            (
                vec![depart(3, 1)],
                LiveError::UnknownItem { item: 3 }.into(),
            ),
            (
                vec![arrive(0, &[5], 0), depart(0, 2), depart(0, 3)],
                LiveError::AlreadyDeparted { item: 0 }.into(),
            ),
            (
                vec![arrive(0, &[5], 0)],
                LiveError::StillActive { active: 1 }.into(),
            ),
            (
                vec![arrive(0, &[11], 0)],
                PackError::OversizedItem { item: 0 }.into(),
            ),
        ];
        for (ops, want) in cases {
            let got = run_raw(RawSource::new(&[10], ops)).unwrap_err();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn sparse_item_indices_are_allowed() {
        // Indices need not be dense; the ledger grows to the max index.
        let p = run_raw(RawSource::new(
            &[10],
            vec![
                arrive(4, &[5], 0),
                arrive(9, &[5], 1),
                depart(4, 3),
                depart(9, 5),
            ],
        ))
        .unwrap();
        assert_eq!(p.num_bins(), 1);
        assert_eq!(p.cost(), 5);
    }

    #[test]
    fn clairvoyant_kinds_are_rejected_for_streams() {
        for kind in [PolicyKind::DurationClassFirstFit, PolicyKind::AlignedFit] {
            let mut source = InstanceSource::new(&sample()).unwrap();
            let err = PackRequest::new(kind).run_source(&mut source).unwrap_err();
            assert!(
                matches!(err, StreamError::Feed(LiveError::Clairvoyant { .. })),
                "{err}"
            );
        }
    }

    #[test]
    fn tap_sees_every_event_and_changes_nothing() {
        let instance = sample();
        let mut seen = 0usize;
        let mut tapped = Tap::new(InstanceSource::new(&instance).unwrap(), |_op: &LiveOp| {
            seen += 1;
        });
        let streamed = PackRequest::new(PolicyKind::FirstFit)
            .run_source(&mut tapped)
            .unwrap();
        drop(tapped);
        assert_eq!(seen, instance.len() * 2);
        let batch = PackRequest::new(PolicyKind::FirstFit)
            .run(&instance)
            .unwrap();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn streaming_lower_bound_matches_height_sum_by_hand() {
        // Two unit-height plateaus: [0,4) one bin forced, [4,6) two.
        let cap = DimVec::from_slice(&[10]);
        let mut lb = StreamingLowerBound::new(&cap);
        for op in [
            arrive(0, &[7], 0),
            arrive(1, &[7], 4),
            depart(0, 6),
            depart(1, 6),
        ] {
            lb.observe(&op);
        }
        assert_eq!(lb.value(), 4 + 2 * 2);
    }

    #[test]
    fn engine_reuse_across_batch_and_stream_is_clean() {
        let instance = sample();
        let mut engine = Engine::new();
        let mut policy = crate::policy::first_fit::FirstFit::new();
        let batch = engine.pack(&instance, &mut policy, TraceMode::Full);
        let mut source = InstanceSource::new(&instance).unwrap();
        let streamed = engine
            .run_source(&mut source, &mut policy, TraceMode::Full, &mut NoopObserver)
            .unwrap();
        assert_eq!(streamed, batch);
        let again = engine.pack(&instance, &mut policy, TraceMode::Full);
        assert_eq!(again, batch);
    }
}

//! Centralized scan-vs-index decision logic for the Any-Fit hybrid.
//!
//! Two independent choices are made per arrival, both pure functions of
//! cheap engine state so every replay (batch, live, stream, WAL
//! recovery) decides identically:
//!
//! 1. **scan vs [`FitIndex`](crate::FitIndex)** — [`use_index`] compares
//!    the open-bin count against a per-dimension crossover. Before the
//!    block-scan kernel, the crossover was a flat 64 bins; vectorized
//!    scans retire [`LANES`](crate::block_scan::LANES) bins per step,
//!    and the measured break-even *rises* with `d`: the tree descent
//!    re-checks all `d` per-dimension structures on every step, while
//!    the block scan streams `d` contiguous rows through the mask
//!    kernel, so wider items amortize the scan better than the tree.
//! 2. **block vs scalar scan** — once scanning, [`block_scan_pays`]
//!    checks that the open-bin id *span* is not too sparse: the block
//!    kernel walks `span / LANES` blocks, the scalar loop walks exactly
//!    the open list, so a long-lived run whose open ids are spread over
//!    a huge closed-id range falls back to the scalar loop.
//!
//! Crossover methodology: the `calibrate_hybrid` bench (in
//! `dvbp-bench`) times First Fit's pure block-scan path against its
//! pure fit-index path on uniform workloads, sweeping `mu` (and
//! therefore the steady-state open-bin count `m`) at
//! `d ∈ {1..5, 8, 9, 12, 16}` on AVX2 x86-64. Measured break-evens:
//! `m ≈ 60` at `d ≤ 2`, `m ≈ 130` at `d = 4`, `m ≈ 170–180` at
//! `d ∈ {8, 9}`, and `m ≈ 250–375` at `d ∈ {12, 16}`. The table below
//! rounds to the nearest lane-friendly step; near the boundary the two
//! paths time within noise of each other (and are placement-identical),
//! so a misestimate costs only nanoseconds.

use crate::block_scan::LANES;

/// Open-bin count at which the indexed path overtakes the block scan
/// for dimensionality `dims`.
#[must_use]
pub(crate) fn index_crossover(dims: usize) -> usize {
    match dims {
        0..=2 => 64,
        3..=4 => 128,
        5..=9 => 192,
        _ => 256,
    }
}

/// `true` iff an arrival with `open_bins` open bins in `dims` dimensions
/// should use the [`FitIndex`](crate::FitIndex) rather than a scan.
#[must_use]
pub(crate) fn use_index(open_bins: usize, dims: usize) -> bool {
    open_bins >= index_crossover(dims)
}

/// `true` iff a block scan over the open-bin id span `span` beats the
/// scalar loop over `open_bins` list entries: the kernel touches
/// `span / LANES` blocks, so it pays until the span is more than
/// `LANES`× sparser than the open list.
#[must_use]
pub(crate) fn block_scan_pays(span: usize, open_bins: usize) -> bool {
    span <= open_bins.saturating_mul(LANES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_is_monotone_in_dims() {
        // Wider items amortize the block scan better, so the measured
        // break-even never falls as d grows.
        let mut last = 0;
        for d in 1..=16 {
            let c = index_crossover(d);
            assert!(c >= last, "crossover must not fall with d");
            last = c;
        }
    }

    #[test]
    fn crossover_never_drops_below_the_old_scalar_latch() {
        // The pre-kernel hybrid latched at 64 open bins; a vectorized
        // scan is strictly faster than the scalar one, so the measured
        // break-even can only sit at or above that latch.
        for d in 1..=16 {
            assert!(index_crossover(d) >= 64, "d={d}");
        }
    }

    #[test]
    fn use_index_boundary_is_exact() {
        for d in [1, 2, 4, 8, 9, 16] {
            let c = index_crossover(d);
            assert!(!use_index(c - 1, d));
            assert!(use_index(c, d));
        }
    }

    #[test]
    fn block_scan_pays_dense_spans_only() {
        // Dense ids: always pays.
        assert!(block_scan_pays(100, 100));
        // Boundary: exactly LANES× sparser still pays.
        assert!(block_scan_pays(800, 100));
        assert!(!block_scan_pays(801, 100));
        // Degenerate empty state.
        assert!(block_scan_pays(0, 0));
        // Saturation: a huge open list never overflows.
        assert!(block_scan_pays(usize::MAX, usize::MAX));
    }
}

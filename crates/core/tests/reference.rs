//! Differential verification: straight-line reference implementations of
//! First Fit, Next Fit, Move To Front and Best Fit, written independently
//! of the engine (no shared policy code, naive O(n²) bookkeeping), must
//! produce identical assignments on random instances.
//!
//! The references process the event list directly with explicit loops —
//! deliberately boring code whose correctness is checkable by eye. Any
//! divergence from the engine implicates one of the two; none is allowed.

use dvbp_core::{Instance, Item, LoadMeasure, PackRequest, PolicyKind};
use dvbp_dimvec::DimVec;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Minimal mutable bin state for the references.
struct RefBin {
    load: Vec<u64>,
    items: Vec<usize>, // active item indices
    open: bool,
}

/// Shared scaffolding: replays arrivals/departures in the engine's event
/// order, delegating only the *choice* to `choose(bins, open_order, size)`
/// which returns `Some(bin_index)` or `None` (open new).
fn reference_pack(
    instance: &Instance,
    mut choose: impl FnMut(&[RefBin], &[usize], &[u64]) -> Option<usize>,
) -> Vec<usize> {
    let n = instance.len();
    let d = instance.dim();
    let cap: Vec<u64> = instance.capacity.iter().collect();

    // Build the event order by hand: (time, is_arrival, item).
    let mut events: Vec<(u64, bool, usize)> = Vec::new();
    for (i, item) in instance.items.iter().enumerate() {
        events.push((item.arrival, true, i));
        events.push((item.departure, false, i));
    }
    events.sort_by_key(|&(t, arr, i)| (t, arr, i));

    let mut bins: Vec<RefBin> = Vec::new();
    let mut open_order: Vec<usize> = Vec::new(); // open bins by opening order
    let mut assignment = vec![usize::MAX; n];

    for (_, is_arrival, i) in events {
        if is_arrival {
            let size: Vec<u64> = instance.items[i].size.iter().collect();
            let choice = choose(&bins, &open_order, &size);
            let b = match choice {
                Some(b) => b,
                None => {
                    bins.push(RefBin {
                        load: vec![0; d],
                        items: Vec::new(),
                        open: true,
                    });
                    open_order.push(bins.len() - 1);
                    bins.len() - 1
                }
            };
            for j in 0..d {
                bins[b].load[j] += size[j];
                assert!(bins[b].load[j] <= cap[j], "reference overloaded a bin");
            }
            bins[b].items.push(i);
            assignment[i] = b;
        } else {
            let b = assignment[i];
            for j in 0..d {
                bins[b].load[j] -= instance.items[i].size.iter().nth(j).unwrap();
            }
            bins[b].items.retain(|&x| x != i);
            if bins[b].items.is_empty() {
                bins[b].open = false;
                open_order.retain(|&x| x != b);
            }
        }
    }
    assignment
}

fn fits(bin: &RefBin, size: &[u64], cap: &[u64]) -> bool {
    bin.load
        .iter()
        .zip(size)
        .zip(cap)
        .all(|((&l, &s), &c)| l + s <= c)
}

fn random_instance(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = rng.random_range(1..=3);
    let cap = 12u64;
    let n = rng.random_range(5..=80);
    let items = (0..n)
        .map(|_| {
            let size = DimVec::from_fn(d, |_| rng.random_range(1..=cap));
            let a = rng.random_range(0..50u64);
            let dur = rng.random_range(1..=15u64);
            Item::new(size, a, a + dur)
        })
        .collect();
    Instance::new(DimVec::splat(d, cap), items).unwrap()
}

#[test]
fn first_fit_matches_reference() {
    for seed in 0..60u64 {
        let inst = random_instance(seed);
        let cap: Vec<u64> = inst.capacity.iter().collect();
        let reference = reference_pack(&inst, |bins, open, size| {
            open.iter().copied().find(|&b| fits(&bins[b], size, &cap))
        });
        let engine = PackRequest::new(PolicyKind::FirstFit).run(&inst).unwrap();
        let engine_assign: Vec<usize> = engine.assignment.iter().map(|b| b.0).collect();
        assert_eq!(engine_assign, reference, "seed {seed}");
    }
}

#[test]
fn next_fit_matches_reference() {
    for seed in 0..60u64 {
        let inst = random_instance(seed);
        let cap: Vec<u64> = inst.capacity.iter().collect();
        // Reference Next Fit: the current bin is the bin of the most
        // recently packed item; it is used iff still open and fitting.
        let mut last_packed_bin: Option<usize> = None;
        let reference = reference_pack(&inst, |bins, _open, size| {
            let choice = match last_packed_bin {
                Some(b) if bins[b].open && fits(&bins[b], size, &cap) => Some(b),
                _ => None,
            };
            last_packed_bin = Some(choice.unwrap_or(bins.len()));
            choice
        });
        let engine = PackRequest::new(PolicyKind::NextFit).run(&inst).unwrap();
        let engine_assign: Vec<usize> = engine.assignment.iter().map(|b| b.0).collect();
        assert_eq!(engine_assign, reference, "seed {seed}");
    }
}

#[test]
fn move_to_front_matches_reference() {
    for seed in 0..60u64 {
        let inst = random_instance(seed);
        let cap: Vec<u64> = inst.capacity.iter().collect();
        let mut mru: Vec<usize> = Vec::new(); // front first
        let reference = reference_pack(&inst, |bins, open, size| {
            // Drop closed bins from the MRU view.
            mru.retain(|&b| open.contains(&b));
            let choice = mru.iter().copied().find(|&b| fits(&bins[b], size, &cap));
            let receiving = choice.unwrap_or(bins.len());
            mru.retain(|&b| b != receiving);
            mru.insert(0, receiving);
            choice
        });
        let engine = PackRequest::new(PolicyKind::MoveToFront)
            .run(&inst)
            .unwrap();
        let engine_assign: Vec<usize> = engine.assignment.iter().map(|b| b.0).collect();
        assert_eq!(engine_assign, reference, "seed {seed}");
    }
}

#[test]
fn best_fit_linf_matches_reference() {
    for seed in 0..60u64 {
        let inst = random_instance(seed);
        let cap: Vec<u64> = inst.capacity.iter().collect();
        let reference = reference_pack(&inst, |bins, open, size| {
            let mut best: Option<usize> = None;
            for &b in open {
                if !fits(&bins[b], size, &cap) {
                    continue;
                }
                // Normalized Linf load compared as exact fractions; with
                // uniform capacity this is just the max raw component.
                let key = |x: usize| *bins[x].load.iter().max().unwrap();
                match best {
                    None => best = Some(b),
                    Some(cur) if key(b) > key(cur) => best = Some(b),
                    _ => {}
                }
            }
            best
        });
        let engine = PackRequest::new(PolicyKind::BestFit(LoadMeasure::Linf))
            .run(&inst)
            .unwrap();
        let engine_assign: Vec<usize> = engine.assignment.iter().map(|b| b.0).collect();
        assert_eq!(engine_assign, reference, "seed {seed}");
    }
}

#[test]
fn last_fit_matches_reference() {
    for seed in 0..60u64 {
        let inst = random_instance(seed);
        let cap: Vec<u64> = inst.capacity.iter().collect();
        let reference = reference_pack(&inst, |bins, open, size| {
            open.iter()
                .rev()
                .copied()
                .find(|&b| fits(&bins[b], size, &cap))
        });
        let engine = PackRequest::new(PolicyKind::LastFit).run(&inst).unwrap();
        let engine_assign: Vec<usize> = engine.assignment.iter().map(|b| b.0).collect();
        assert_eq!(engine_assign, reference, "seed {seed}");
    }
}

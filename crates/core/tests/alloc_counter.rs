//! Verifies the engine's allocation-free hot path: once an [`Engine`] is
//! warmed (arenas grown to the instance's footprint), a `CostOnly` run
//! performs a small constant number of heap allocations — independent of
//! the number of items — i.e. zero allocations *per arrival* in steady
//! state.
//!
//! This file holds exactly one `#[test]` so the global allocation counter
//! is not polluted by concurrent tests in the same binary.

use dvbp_core::policy::first_fit::FirstFit;
use dvbp_core::{Engine, Instance, Item, TraceMode};
use dvbp_dimvec::DimVec;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; only adds a counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A d = 2 instance with heavy bin churn: `n` items, overlapping
/// lifetimes, sizes large enough that bins keep opening and closing.
fn churn_instance(n: u64) -> Instance {
    let items = (0..n)
        .map(|i| {
            let size = DimVec::from_slice(&[1 + (i * 7) % 60, 1 + (i * 13) % 60]);
            let arrival = i / 2;
            Item::new(size, arrival, arrival + 1 + (i * 5) % 19)
        })
        .collect();
    Instance::new(DimVec::from_slice(&[100, 100]), items).unwrap()
}

fn count_warm_run(engine: &mut Engine, policy: &mut FirstFit, inst: &Instance) -> usize {
    // Warm: grows the engine arenas and the fit index to this instance's
    // high-water marks.
    let warm = engine.pack(inst, policy, TraceMode::CostOnly);
    assert!(warm.num_bins() > 0 && warm.cost() >= inst.span());

    // The global counter also sees allocations from the test harness's
    // housekeeping threads; those can only inflate a sample, never deflate
    // it, so the minimum over a few repetitions is the engine's true count.
    let mut min_allocs = usize::MAX;
    for _ in 0..5 {
        let before = ALLOCS.load(Ordering::Relaxed);
        let packing = engine.pack(inst, policy, TraceMode::CostOnly);
        let after = ALLOCS.load(Ordering::Relaxed);
        assert_eq!(packing.assignment, warm.assignment);
        min_allocs = min_allocs.min(after - before);
    }
    min_allocs
}

#[test]
fn warm_cost_only_run_allocates_a_constant_independent_of_n() {
    let mut engine = Engine::new();
    let mut policy = FirstFit::new();

    let small = churn_instance(500);
    let large = churn_instance(2000);

    let allocs_small = count_warm_run(&mut engine, &mut policy, &small);
    let allocs_large = count_warm_run(&mut engine, &mut policy, &large);

    // Materializing the result clones the assignment and builds the (empty)
    // bins/trace vectors — a handful of allocations per *run*. Anything per
    // *arrival* would scale with n and trip the equality.
    assert_eq!(
        allocs_small, allocs_large,
        "per-run allocation count must not depend on item count \
         (small: {allocs_small}, large: {allocs_large})"
    );
    assert!(
        allocs_large <= 8,
        "expected a handful of per-run allocations, got {allocs_large}"
    );
}

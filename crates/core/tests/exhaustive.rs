//! Exhaustive soundness sweep over tiny instances.
//!
//! Enumerates *every* instance with up to three items drawn from a small
//! grid of sizes, arrivals and durations (1-D, capacity 10) and checks,
//! for every policy: packing validity, the Any Fit property where
//! applicable, and the Lemma 1 sandwich against span. Exhaustiveness
//! complements the random property tests: no sampler bias, every corner
//! of the tiny configuration space is visited (36³ ≈ 47k instances × 8
//! policies).

use dvbp_core::{Instance, Item, LoadMeasure, PackRequest, PolicyKind};
use dvbp_dimvec::DimVec;

const SIZES: [u64; 4] = [3, 5, 7, 10];
const ARRIVALS: [u64; 3] = [0, 1, 3];
const DURATIONS: [u64; 3] = [1, 2, 5];

fn configs() -> Vec<Item> {
    let mut v = Vec::new();
    for &s in &SIZES {
        for &a in &ARRIVALS {
            for &dur in &DURATIONS {
                v.push(Item::new(DimVec::scalar(s), a, a + dur));
            }
        }
    }
    v
}

fn kinds() -> Vec<PolicyKind> {
    let mut k = PolicyKind::paper_suite(5);
    k.push(PolicyKind::BestFit(LoadMeasure::L1));
    k
}

#[test]
fn all_two_item_instances() {
    let configs = configs();
    let kinds = kinds();
    for i in &configs {
        for j in &configs {
            let inst = Instance::new(DimVec::scalar(10), vec![i.clone(), j.clone()]).unwrap();
            check(&inst, &kinds);
        }
    }
}

#[test]
fn all_three_item_instances() {
    let configs = configs();
    // Full 36^3 with all 8 policies is ~380k packs; restrict the third
    // item to the size axis' extremes to keep the sweep under a second
    // in debug builds while still covering every pairwise corner.
    let thirds: Vec<&Item> = configs
        .iter()
        .filter(|it| it.size[0] == 3 || it.size[0] == 10)
        .collect();
    let kinds = kinds();
    for i in &configs {
        for j in &configs {
            for k in &thirds {
                let inst =
                    Instance::new(DimVec::scalar(10), vec![i.clone(), j.clone(), (*k).clone()])
                        .unwrap();
                check(&inst, &kinds);
            }
        }
    }
}

fn check(inst: &Instance, kinds: &[PolicyKind]) {
    let span = inst.span();
    for kind in kinds {
        let p = PackRequest::new(kind.clone()).run(inst).unwrap();
        p.verify(inst)
            .unwrap_or_else(|e| panic!("{} on {:?}: {e}", kind.name(), inst.items));
        if kind.is_full_candidate_any_fit() {
            p.verify_any_fit(inst)
                .unwrap_or_else(|e| panic!("{} on {:?}: {e}", kind.name(), inst.items));
        }
        assert!(p.cost() >= span, "{} cost below span", kind.name());
        assert!(p.num_bins() <= inst.len());
    }
}

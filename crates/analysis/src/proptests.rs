//! Property tests: decomposition invariants and metric bounds over
//! random instances and every applicable policy.

use crate::decomposition::{
    first_fit::FirstFitDecomposition, mtf::MtfDecomposition, next_fit::NextFitDecomposition,
};
use crate::metrics::packing_metrics;
use dvbp_core::{Instance, Item, PackRequest, PolicyKind};
use dvbp_dimvec::DimVec;
use proptest::prelude::*;

fn instances() -> impl Strategy<Value = Instance> {
    (1usize..=3, 1usize..=50).prop_flat_map(|(d, n)| {
        let cap = 12u64;
        let item = (prop::collection::vec(1u64..=cap, d), 0u64..40, 1u64..=15)
            .prop_map(move |(size, a, dur)| Item::new(DimVec::from_slice(&size), a, a + dur));
        prop::collection::vec(item, n).prop_map(move |items| {
            Instance::new(DimVec::splat(d, cap), items).expect("valid instance")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The MTF decomposition verifies on every generated instance.
    #[test]
    fn mtf_decomposition_always_verifies(inst in instances()) {
        let p = PackRequest::new(PolicyKind::MoveToFront).run(&inst).unwrap();
        let d = MtfDecomposition::from_packing(&p);
        prop_assert!(d.verify(&inst, &p).is_ok(), "{:?}", d.verify(&inst, &p));
        // Cost identity: leading + non-leading totals equal the cost.
        let lead: u128 = d
            .leading_intervals()
            .iter()
            .map(|i| u128::from(i.len()))
            .sum();
        prop_assert_eq!(lead + d.non_leading_total(), p.cost());
    }

    /// The First Fit decomposition verifies, and P/Q totals sum to cost.
    #[test]
    fn ff_decomposition_always_verifies(inst in instances()) {
        let p = PackRequest::new(PolicyKind::FirstFit).run(&inst).unwrap();
        let d = FirstFitDecomposition::from_packing(&inst, &p);
        prop_assert!(d.verify(&inst, &p).is_ok());
        prop_assert_eq!(d.p_total() + d.q_total(), p.cost());
        prop_assert_eq!(d.q_total(), inst.span());
    }

    /// The Next Fit decomposition verifies, and P/Q totals sum to cost.
    #[test]
    fn nf_decomposition_always_verifies(inst in instances()) {
        let p = PackRequest::new(PolicyKind::NextFit).run(&inst).unwrap();
        let d = NextFitDecomposition::from_packing(&p);
        prop_assert!(d.verify(&inst, &p).is_ok());
        prop_assert_eq!(d.p_total() + d.q_total(), p.cost());
    }

    /// Metrics are bounded and consistent for every paper policy.
    #[test]
    fn metrics_invariants(inst in instances()) {
        for kind in PolicyKind::paper_suite(17) {
            let p = PackRequest::new(kind.clone()).run(&inst).unwrap();
            let m = packing_metrics(&inst, &p);
            prop_assert!(m.utilization > 0.0 && m.utilization <= 1.0 + 1e-12);
            prop_assert!(m.alignment > 0.0 && m.alignment <= 1.0 + 1e-12);
            prop_assert!(m.peak_open_bins >= 1);
            prop_assert!(m.avg_open_bins >= 1.0 - 1e-12,
                "avg open bins below 1 over the span: {}", m.avg_open_bins);
            prop_assert!(m.avg_open_bins <= m.peak_open_bins as f64 + 1e-9);
            prop_assert_eq!(m.cost, p.cost());
        }
    }
}

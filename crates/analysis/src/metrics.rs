//! Packing-quality metrics: §7's "Packing and Alignment" discussion made
//! quantitative.
//!
//! The paper explains the average-case ranking through two notions:
//!
//! * **Packing** — how tightly items share bins, i.e. how little rented
//!   bin-volume goes unused. [`PackingMetrics::utilization`] is the exact
//!   fraction of rented (time × capacity) volume occupied by items.
//! * **Alignment** — how well co-located items' durations coincide, so
//!   bins drain all at once instead of being held open by a straggler.
//!   [`PackingMetrics::alignment`] is, per bin, the average fraction of
//!   the bin's usage period covered by each of its items, weighted by
//!   usage time; 1.0 means every item spans its bin's whole life.
//!
//! Together they decompose the cost ratio: Worst Fit loses on packing,
//! Next Fit on alignment, and Move To Front does well on both — the
//! numbers behind §7's qualitative story (see `xp_metrics`).

use dvbp_core::{Instance, Packing};
use dvbp_sim::StepCurve;
use serde::{Deserialize, Serialize};

/// Quality metrics of one packing.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PackingMetrics {
    /// Usage-time objective (eq. 1), for reference.
    pub cost: u128,
    /// Bins ever opened.
    pub bins: usize,
    /// Peak simultaneously-open bins.
    pub peak_open_bins: i64,
    /// Time-averaged number of open bins over the active span.
    pub avg_open_bins: f64,
    /// Fraction of rented `time × L1-capacity` volume occupied by items,
    /// in `(0, 1]`. Higher = tighter packing.
    pub utilization: f64,
    /// Usage-weighted mean over bins of (mean item duration / bin usage),
    /// in `(0, 1]`. Higher = better-aligned departures.
    pub alignment: f64,
}

/// Computes the metrics of `packing` on `instance`.
///
/// # Panics
///
/// Panics if the packing's bin records are inconsistent with the
/// instance (use [`Packing::verify`] first when in doubt).
#[must_use]
pub fn packing_metrics(instance: &Instance, packing: &Packing) -> PackingMetrics {
    let cost = packing.cost();
    let usages: Vec<dvbp_sim::Interval> = packing.bins.iter().map(|b| b.usage()).collect();
    let open_curve = StepCurve::count_of(&usages);
    let span = instance.span();

    // Utilization: Σ_r ‖s(r)‖₁ · ℓ(r)  /  Σ_bins usage · ‖cap‖₁.
    let used: u128 = instance
        .items
        .iter()
        .map(|r| r.size.sum() * u128::from(r.duration()))
        .sum();
    let rented = cost * instance.capacity.sum();
    let utilization = if rented == 0 {
        1.0
    } else {
        used as f64 / rented as f64
    };

    // Alignment: per bin, (Σ_r ℓ(r)) / (|bin| · usage), usage-weighted.
    let mut weighted = 0.0f64;
    let mut weight = 0.0f64;
    for rec in &packing.bins {
        let usage = rec.usage_len();
        if usage == 0 || rec.items.is_empty() {
            continue;
        }
        let total_dur: u128 = rec
            .items
            .iter()
            .map(|&i| u128::from(instance.items[i].duration()))
            .sum();
        let per_item = total_dur as f64 / rec.items.len() as f64;
        let score = (per_item / usage as f64).min(1.0);
        weighted += score * usage as f64;
        weight += usage as f64;
    }
    let alignment = if weight == 0.0 {
        1.0
    } else {
        weighted / weight
    };

    PackingMetrics {
        cost,
        bins: packing.num_bins(),
        peak_open_bins: open_curve.max(),
        avg_open_bins: if span == 0 {
            0.0
        } else {
            open_curve.integral() as f64 / span as f64
        },
        utilization,
        alignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbp_core::{Item, PackRequest, PolicyKind};
    use dvbp_dimvec::DimVec;

    fn item(size: &[u64], a: u64, e: u64) -> Item {
        Item::new(DimVec::from_slice(size), a, e)
    }

    #[test]
    fn perfectly_utilized_single_bin() {
        // One item filling the bin for its whole life: both metrics = 1.
        let inst = Instance::new(DimVec::scalar(10), vec![item(&[10], 0, 5)]).unwrap();
        let p = PackRequest::new(PolicyKind::FirstFit).run(&inst).unwrap();
        let m = packing_metrics(&inst, &p);
        assert_eq!(m.cost, 5);
        assert_eq!(m.bins, 1);
        assert_eq!(m.peak_open_bins, 1);
        assert!((m.avg_open_bins - 1.0).abs() < 1e-12);
        assert!((m.utilization - 1.0).abs() < 1e-12);
        assert!((m.alignment - 1.0).abs() < 1e-12);
    }

    #[test]
    fn half_full_bin_has_half_utilization() {
        let inst = Instance::new(DimVec::scalar(10), vec![item(&[5], 0, 4)]).unwrap();
        let p = PackRequest::new(PolicyKind::FirstFit).run(&inst).unwrap();
        let m = packing_metrics(&inst, &p);
        assert!((m.utilization - 0.5).abs() < 1e-12);
        assert!((m.alignment - 1.0).abs() < 1e-12);
    }

    #[test]
    fn straggler_ruins_alignment() {
        // A 1-tick item and a 10-tick item in one bin: usage 10, mean item
        // duration 5.5 -> alignment 0.55.
        let inst = Instance::new(
            DimVec::scalar(10),
            vec![item(&[5], 0, 10), item(&[5], 0, 1)],
        )
        .unwrap();
        let p = PackRequest::new(PolicyKind::FirstFit).run(&inst).unwrap();
        assert_eq!(p.num_bins(), 1);
        let m = packing_metrics(&inst, &p);
        assert!((m.alignment - 0.55).abs() < 1e-12);
    }

    #[test]
    fn metrics_bounded_on_random_workloads() {
        use dvbp_workloads::UniformParams;
        let params = UniformParams {
            dims: 2,
            items: 200,
            mu: 20,
            span: 200,
            bin_size: 100,
        };
        for seed in 0..5 {
            let inst = params.generate(seed);
            for kind in PolicyKind::paper_suite(seed) {
                let p = PackRequest::new(kind.clone()).run(&inst).unwrap();
                let m = packing_metrics(&inst, &p);
                assert!(
                    m.utilization > 0.0 && m.utilization <= 1.0,
                    "{}",
                    kind.name()
                );
                assert!(m.alignment > 0.0 && m.alignment <= 1.0);
                assert!(m.avg_open_bins <= m.peak_open_bins as f64 + 1e-12);
                assert!(m.peak_open_bins as usize <= m.bins);
            }
        }
    }

    #[test]
    fn worst_fit_packs_looser_than_best_fit() {
        use dvbp_workloads::UniformParams;
        let params = UniformParams {
            dims: 1,
            items: 500,
            mu: 50,
            span: 500,
            bin_size: 100,
        };
        let mut wf_util = 0.0;
        let mut bf_util = 0.0;
        for seed in 0..5 {
            let inst = params.generate(100 + seed);
            wf_util += packing_metrics(
                &inst,
                &PackRequest::new(PolicyKind::WorstFit(dvbp_core::LoadMeasure::Linf))
                    .run(&inst)
                    .unwrap(),
            )
            .utilization;
            bf_util += packing_metrics(
                &inst,
                &PackRequest::new(PolicyKind::BestFit(dvbp_core::LoadMeasure::Linf))
                    .run(&inst)
                    .unwrap(),
            )
            .utilization;
        }
        assert!(
            bf_util > wf_util,
            "Best Fit should utilize rented volume better: {bf_util} vs {wf_util}"
        );
    }
}

//! ASCII Gantt rendering of packings: one row per bin, item occupancy
//! over time. Used by the `dvbp show` CLI subcommand and the examples to
//! make packings inspectable without a plotting stack.

use dvbp_core::{Instance, Packing};
use dvbp_sim::Time;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Clone, Copy, Debug)]
pub struct GanttOptions {
    /// Maximum rendered width in characters (time axis is scaled down to
    /// fit); minimum 10.
    pub max_width: usize,
    /// Render at most this many bins (the rest are summarized).
    pub max_bins: usize,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions {
            max_width: 100,
            max_bins: 40,
        }
    }
}

/// Renders the packing as an ASCII Gantt chart.
///
/// Each bin row shows, per time cell, the number of items active in the
/// bin (`1`–`9`, `+` for ≥ 10, `·` for an open-but-idle instant that can
/// only appear from scaling). Rows are labelled with the bin id and its
/// usage period.
#[must_use]
pub fn render(instance: &Instance, packing: &Packing, opts: &GanttOptions) -> String {
    let mut out = String::new();
    let end: Time = packing.bins.iter().map(|b| b.closed).max().unwrap_or(0);
    if end == 0 {
        return "(empty packing)\n".to_string();
    }
    let width = opts.max_width.max(10).min(end as usize).max(1);
    let scale = |t: Time| -> usize { ((t as u128 * width as u128) / end as u128) as usize };

    let shown = packing.bins.len().min(opts.max_bins);
    for (b, rec) in packing.bins.iter().take(shown).enumerate() {
        let mut cells = vec![0u32; width];
        for &i in &rec.items {
            let item = &instance.items[i];
            let lo = scale(item.arrival);
            let hi = scale(item.departure).max(lo + 1).min(width);
            for cell in &mut cells[lo..hi] {
                *cell += 1;
            }
        }
        let _ = write!(out, "B{b:<4} ");
        // Mark the usage period extent with cells.
        let (ulo, uhi) = (scale(rec.opened), scale(rec.closed).min(width));
        for (x, &c) in cells.iter().enumerate() {
            out.push(match c {
                0 if x >= ulo && x < uhi => '·',
                0 => ' ',
                1..=9 => char::from_digit(c, 10).expect("1..=9"),
                _ => '+',
            });
        }
        let _ = writeln!(out, "  [{}, {})", rec.opened, rec.closed);
    }
    if packing.bins.len() > shown {
        let _ = writeln!(out, "… {} more bins not shown", packing.bins.len() - shown);
    }
    let _ = writeln!(out, "{:6}0{:>width$}", "", end, width = width);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbp_core::{Item, PackRequest, PolicyKind};
    use dvbp_dimvec::DimVec;

    fn item(size: u64, a: u64, e: u64) -> Item {
        Item::new(DimVec::scalar(size), a, e)
    }

    fn packed(items: Vec<Item>) -> (Instance, Packing) {
        let inst = Instance::new(DimVec::scalar(10), items).unwrap();
        let p = PackRequest::new(PolicyKind::FirstFit).run(&inst).unwrap();
        (inst, p)
    }

    #[test]
    fn renders_unscaled_timeline() {
        let (inst, p) = packed(vec![item(5, 0, 4), item(5, 2, 6)]);
        let s = render(
            &inst,
            &p,
            &GanttOptions {
                max_width: 100,
                max_bins: 10,
            },
        );
        let lines: Vec<&str> = s.lines().collect();
        // One bin, six time cells: 1 1 2 2 1 1.
        assert!(lines[0].starts_with("B0    112211  [0, 6)"), "{s}");
    }

    #[test]
    fn occupancy_digits_cap_at_plus() {
        let items: Vec<Item> = (0..12).map(|_| item(1, 0, 3)).collect();
        let inst = Instance::new(DimVec::scalar(100), items).unwrap();
        let p = PackRequest::new(PolicyKind::FirstFit).run(&inst).unwrap();
        let s = render(&inst, &p, &GanttOptions::default());
        assert!(s.contains('+'), "{s}");
    }

    #[test]
    fn scales_long_timelines() {
        let (inst, p) = packed(vec![item(5, 0, 1000)]);
        let s = render(
            &inst,
            &p,
            &GanttOptions {
                max_width: 50,
                max_bins: 10,
            },
        );
        let first = s.lines().next().unwrap();
        assert!(first.len() < 80, "row should be scaled: {first}");
        assert!(first.contains("[0, 1000)"));
    }

    #[test]
    fn truncates_bin_list() {
        let items: Vec<Item> = (0..8).map(|k| item(10, k, k + 2)).collect();
        let inst = Instance::new(DimVec::scalar(10), items).unwrap();
        let p = PackRequest::new(PolicyKind::FirstFit).run(&inst).unwrap();
        let s = render(
            &inst,
            &p,
            &GanttOptions {
                max_width: 60,
                max_bins: 3,
            },
        );
        assert!(s.contains("more bins not shown"), "{s}");
    }

    #[test]
    fn empty_packing() {
        let inst = Instance::new(DimVec::scalar(10), vec![]).unwrap();
        let p = PackRequest::new(PolicyKind::FirstFit).run(&inst).unwrap();
        assert_eq!(
            render(&inst, &p, &GanttOptions::default()),
            "(empty packing)\n"
        );
    }
}

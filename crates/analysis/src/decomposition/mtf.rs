//! Leading/non-leading interval decomposition of Move To Front bins —
//! Figure 1 and the proof machinery of Theorem 2 (§3).
//!
//! A bin is the *leader* at time `t` if it is at the front of Move To
//! Front's most-recently-used list. Each bin's usage period splits into
//! alternating leading intervals `P_{i,j}` and non-leading intervals
//! `Q_{i,j}`, starting with a leading interval at the tick the bin opens.
//! The proof of Theorem 2 uses two structural facts, both checked by
//! [`MtfDecomposition::verify`]:
//!
//! 1. the leading intervals of all bins partition `[start, end)` of the
//!    active span (Claim 1);
//! 2. every non-leading interval has length at most the maximum item
//!    duration (`≤ μ` after normalization — a bin that is not the leader
//!    accepts no new items, so it drains within one max duration;
//!    Claim 2's key observation).
//!
//! The decomposition is *reconstructed from the engine trace*: packing an
//! item moves the receiving bin to the front; a closing leader hands
//! leadership to the next open bin in MRU order.

use dvbp_core::{BinId, Instance, Packing, TraceEvent};
use dvbp_sim::{Interval, Time};

/// One alternating segment of a bin's usage period.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// The segment's time interval.
    pub interval: Interval,
    /// `true` for a leading interval (`P_{i,j}`), `false` for a
    /// non-leading interval (`Q_{i,j}`).
    pub leading: bool,
}

/// The full decomposition of a Move To Front packing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MtfDecomposition {
    /// `per_bin[b]` lists bin `b`'s segments in time order, alternating
    /// leading / non-leading, starting leading.
    pub per_bin: Vec<Vec<Segment>>,
}

impl MtfDecomposition {
    /// Reconstructs the decomposition from a Move To Front packing trace.
    ///
    /// The reconstruction replays MRU-list dynamics; it is only
    /// meaningful for packings produced by
    /// [`PolicyKind::MoveToFront`](dvbp_core::PolicyKind::MoveToFront).
    #[must_use]
    pub fn from_packing(packing: &Packing) -> Self {
        // Replay the MRU list; record, per bin, the ticks at which it
        // gained or lost leadership.
        let mut mru: Vec<BinId> = Vec::new(); // front first
        let mut leader_since: Vec<Option<Time>> = vec![None; packing.bins.len()];
        let mut per_bin: Vec<Vec<Segment>> = vec![Vec::new(); packing.bins.len()];

        let set_leader = |mru: &[BinId],
                          leader_since: &mut Vec<Option<Time>>,
                          per_bin: &mut Vec<Vec<Segment>>,
                          now: Time| {
            let new_leader = mru.first().copied();
            for (b, since) in leader_since.iter_mut().enumerate() {
                let is_new = new_leader == Some(BinId(b));
                match (since.as_ref(), is_new) {
                    (Some(&s), false) => {
                        // Leadership ends now. A zero-length stint (gained
                        // and lost within one tick) is kept: it marks a
                        // packing event and must split the surrounding
                        // non-leading time (items can arrive during it, so
                        // the `ℓ(Q) ≤ μ` bound restarts there). Adjacent
                        // leading segments merge — the paper drops the
                        // empty non-leading interval between them (§3).
                        match per_bin[b].last_mut() {
                            Some(prev) if prev.leading && prev.interval.end == s => {
                                prev.interval.end = now;
                            }
                            _ => per_bin[b].push(Segment {
                                interval: Interval::new(s, now),
                                leading: true,
                            }),
                        }
                        *since = None;
                    }
                    (None, true) => *since = Some(now),
                    _ => {}
                }
            }
        };

        for ev in &packing.trace {
            match *ev {
                TraceEvent::Packed { time, bin, .. } => {
                    if let Some(pos) = mru.iter().position(|&b| b == bin) {
                        mru.remove(pos);
                    }
                    mru.insert(0, bin);
                    set_leader(&mru, &mut leader_since, &mut per_bin, time);
                }
                TraceEvent::Closed { time, bin } => {
                    mru.retain(|&b| b != bin);
                    set_leader(&mru, &mut leader_since, &mut per_bin, time);
                }
                // Batch MTF runs never migrate; the decomposition is only
                // defined for them, so a migrating trace is out of scope.
                TraceEvent::Migrated { .. } => {}
            }
        }
        debug_assert!(mru.is_empty(), "all bins close by the end of the run");
        debug_assert!(leader_since.iter().all(Option::is_none));

        // Interleave the non-leading gaps between consecutive leading
        // segments of each bin (and after the last one, up to close time).
        for (b, rec) in packing.bins.iter().enumerate() {
            let leads = std::mem::take(&mut per_bin[b]);
            let mut full = Vec::with_capacity(leads.len() * 2);
            let mut cursor = rec.opened;
            for lead in leads {
                if lead.interval.start > cursor {
                    full.push(Segment {
                        interval: Interval::new(cursor, lead.interval.start),
                        leading: false,
                    });
                }
                cursor = lead.interval.end;
                full.push(lead);
            }
            if cursor < rec.closed {
                full.push(Segment {
                    interval: Interval::new(cursor, rec.closed),
                    leading: false,
                });
            }
            per_bin[b] = full;
        }
        MtfDecomposition { per_bin }
    }

    /// All leading intervals across bins, sorted by start.
    #[must_use]
    pub fn leading_intervals(&self) -> Vec<Interval> {
        let mut v: Vec<Interval> = self
            .per_bin
            .iter()
            .flatten()
            .filter(|s| s.leading && !s.interval.is_empty())
            .map(|s| s.interval)
            .collect();
        v.sort();
        v
    }

    /// Total length of all non-leading intervals (`Σ ℓ(Q_{i,j})`).
    #[must_use]
    pub fn non_leading_total(&self) -> dvbp_sim::Cost {
        self.per_bin
            .iter()
            .flatten()
            .filter(|s| !s.leading)
            .map(|s| dvbp_sim::Cost::from(s.interval.len()))
            .sum()
    }

    /// Checks the structural claims of §3 against `instance`:
    ///
    /// 1. each bin's segments tile its usage period, alternate, and begin
    ///    with a leading segment;
    /// 2. the leading intervals of all bins are disjoint and their total
    ///    length equals `span(R)` (Claim 1);
    /// 3. every non-leading interval is at most one maximum item duration
    ///    long (the observation powering Claim 2).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated claim.
    pub fn verify(&self, instance: &Instance, packing: &Packing) -> Result<(), String> {
        // (1) Tiling and alternation per bin.
        for (b, segs) in self.per_bin.iter().enumerate() {
            let rec = &packing.bins[b];
            let mut cursor = rec.opened;
            // The paper's decomposition starts with a leading interval at
            // the opening tick; on the tick grid that opening interval can
            // be zero-length (the bin loses leadership within its opening
            // tick), in which case the recorded sequence starts
            // non-leading. Alternation must still be strict thereafter.
            let mut expect_leading: Option<bool> = None;
            for (k, seg) in segs.iter().enumerate() {
                if seg.interval.start != cursor {
                    return Err(format!("bin {b}: segment {k} leaves a gap"));
                }
                if seg.interval.is_empty() && !seg.leading {
                    return Err(format!("bin {b}: empty non-leading segment {k}"));
                }
                if expect_leading.is_some_and(|e| seg.leading != e) {
                    return Err(format!("bin {b}: segment {k} breaks alternation"));
                }
                cursor = seg.interval.end;
                expect_leading = Some(!seg.leading);
            }
            if cursor != rec.closed {
                return Err(format!(
                    "bin {b}: segments end at {cursor}, not {}",
                    rec.closed
                ));
            }
        }
        // (2) Leading intervals partition the span.
        let leads = self.leading_intervals();
        for w in leads.windows(2) {
            if w[0].overlaps(&w[1]) {
                return Err(format!("leading intervals overlap: {} and {}", w[0], w[1]));
            }
        }
        let lead_total: dvbp_sim::Cost = leads.iter().map(|i| dvbp_sim::Cost::from(i.len())).sum();
        let span = instance.span();
        if lead_total != span {
            return Err(format!(
                "leading intervals cover {lead_total}, span is {span}"
            ));
        }
        // (3) Non-leading intervals bounded by the max item duration.
        let max_dur = instance
            .items
            .iter()
            .map(dvbp_core::Item::duration)
            .max()
            .unwrap_or(0);
        for (b, segs) in self.per_bin.iter().enumerate() {
            for seg in segs {
                if !seg.leading && seg.interval.len() > max_dur {
                    return Err(format!(
                        "bin {b}: non-leading {} longer than max duration {max_dur}",
                        seg.interval
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbp_core::{Instance, Item, PackRequest, PolicyKind};
    use dvbp_dimvec::DimVec;

    fn item(size: &[u64], a: u64, e: u64) -> Item {
        Item::new(DimVec::from_slice(size), a, e)
    }

    fn decompose(inst: &Instance) -> (Packing, MtfDecomposition) {
        let p = PackRequest::new(PolicyKind::MoveToFront).run(inst).unwrap();
        let d = MtfDecomposition::from_packing(&p);
        (p, d)
    }

    #[test]
    fn single_bin_is_all_leading() {
        let inst = Instance::new(DimVec::scalar(10), vec![item(&[5], 0, 8)]).unwrap();
        let (p, d) = decompose(&inst);
        d.verify(&inst, &p).unwrap();
        assert_eq!(
            d.per_bin,
            vec![vec![Segment {
                interval: Interval::new(0, 8),
                leading: true
            }]]
        );
        assert_eq!(d.non_leading_total(), 0);
    }

    #[test]
    fn leadership_transfers_on_new_bin() {
        // B0 leads [0,1); B1 opens at 1 and leads [1,9); B0 is non-leading
        // [1,5) until it closes.
        let inst =
            Instance::new(DimVec::scalar(10), vec![item(&[6], 0, 5), item(&[6], 1, 9)]).unwrap();
        let (p, d) = decompose(&inst);
        d.verify(&inst, &p).unwrap();
        assert_eq!(
            d.per_bin[0],
            vec![
                Segment {
                    interval: Interval::new(0, 1),
                    leading: true
                },
                Segment {
                    interval: Interval::new(1, 5),
                    leading: false
                },
            ]
        );
        assert_eq!(
            d.per_bin[1],
            vec![Segment {
                interval: Interval::new(1, 9),
                leading: true
            }]
        );
    }

    #[test]
    fn leadership_returns_after_leader_closes() {
        // B0 leads [0,1); B1 leads [1,3) then closes; B0 leads again [3,6).
        let inst =
            Instance::new(DimVec::scalar(10), vec![item(&[6], 0, 6), item(&[6], 1, 3)]).unwrap();
        let (p, d) = decompose(&inst);
        d.verify(&inst, &p).unwrap();
        assert_eq!(
            d.per_bin[0],
            vec![
                Segment {
                    interval: Interval::new(0, 1),
                    leading: true
                },
                Segment {
                    interval: Interval::new(1, 3),
                    leading: false
                },
                Segment {
                    interval: Interval::new(3, 6),
                    leading: true
                },
            ]
        );
    }

    #[test]
    fn packing_into_old_bin_reclaims_leadership() {
        // B0, then B1 (full), then an item packed into B0 moves it to
        // front mid-run.
        let inst = Instance::new(
            DimVec::scalar(10),
            vec![item(&[6], 0, 10), item(&[10], 1, 9), item(&[2], 2, 4)],
        )
        .unwrap();
        let (p, d) = decompose(&inst);
        d.verify(&inst, &p).unwrap();
        assert_eq!(p.assignment[2], dvbp_core::BinId(0));
        // B0: leading [0,1), non-leading [1,2), leading [2,10).
        assert_eq!(
            d.per_bin[0],
            vec![
                Segment {
                    interval: Interval::new(0, 1),
                    leading: true
                },
                Segment {
                    interval: Interval::new(1, 2),
                    leading: false
                },
                Segment {
                    interval: Interval::new(2, 10),
                    leading: true
                },
            ]
        );
    }

    #[test]
    fn claims_hold_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let items: Vec<Item> = (0..60)
                .map(|_| {
                    let a = rng.random_range(0..40u64);
                    let dur = rng.random_range(1..=12u64);
                    let d0 = rng.random_range(1..=10u64);
                    let d1 = rng.random_range(1..=10u64);
                    item(&[d0, d1], a, a + dur)
                })
                .collect();
            let inst = Instance::new(DimVec::from_slice(&[10, 10]), items).unwrap();
            let (p, d) = decompose(&inst);
            d.verify(&inst, &p)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}

//! Usage-period decompositions underpinning the paper's proofs.

pub mod first_fit;
pub mod mtf;
pub mod next_fit;

//! The `P_i`/`Q_i` decomposition of First Fit bins — Figure 2 and the
//! proof machinery of Theorem 3 (§4).
//!
//! Bins are indexed by opening time. With `t_i` the latest closing time
//! of bins opened before bin `i`, the usage period `I_i = [I_i⁻, I_i⁺)`
//! splits into
//!
//! * `P_i = [I_i⁻, min(I_i⁺, t_i))` — the prefix during which some older
//!   bin is still alive, and
//! * `Q_i = [min(I_i⁺, t_i), I_i⁺)` — the suffix during which bin `i`
//!   outlives every predecessor.
//!
//! Claim 4 of the paper: the `Q_i` are disjoint and `Σ ℓ(Q_i) = span(R)`.
//! The proof further covers each `P_i` by an inclusion-minimal set of
//! items `R'_i ⊆ R_i` with strictly increasing arrivals *and* departures;
//! [`minimal_cover`] computes that cover greedily and
//! [`FirstFitDecomposition::verify`] checks all of it.

use dvbp_core::{Instance, Packing};
use dvbp_sim::{Cost, Interval, Time};

/// Decomposition of one First Fit bin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinSplit {
    /// The prefix `P_i` (possibly empty; always empty for bin 0).
    pub p: Interval,
    /// The suffix `Q_i` (possibly empty).
    pub q: Interval,
    /// The inclusion-minimal cover `R'_i` of `P_i` (item indices, sorted
    /// by arrival). Empty iff `P_i` is empty.
    pub cover: Vec<usize>,
}

/// The full First Fit decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FirstFitDecomposition {
    /// Per-bin splits, indexed by `BinId`.
    pub bins: Vec<BinSplit>,
}

/// Greedy minimal interval cover of `[target.start, target.end)` by the
/// items' active intervals; returns indices into `items` sorted by
/// arrival. Standard sweep: among intervals starting at or before the
/// current frontier, take the one reaching furthest.
///
/// # Panics
///
/// Panics if the items do not cover `target` (cannot happen for a bin's
/// own items and `P_i ⊆ I_i`).
#[must_use]
pub fn minimal_cover(items: &[(usize, Interval)], target: Interval) -> Vec<usize> {
    if target.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<&(usize, Interval)> = items.iter().collect();
    sorted.sort_by_key(|(_, iv)| (iv.start, std::cmp::Reverse(iv.end)));
    let mut cover = Vec::new();
    let mut frontier = target.start;
    let mut k = 0;
    while frontier < target.end {
        let mut best: Option<&(usize, Interval)> = None;
        while k < sorted.len() && sorted[k].1.start <= frontier {
            if best.is_none_or(|b| sorted[k].1.end > b.1.end) {
                best = Some(sorted[k]);
            }
            k += 1;
        }
        let chosen = best.expect("items must cover the target interval");
        assert!(
            chosen.1.end > frontier,
            "items must cover the target interval"
        );
        cover.push(chosen.0);
        frontier = chosen.1.end;
    }
    cover
}

impl FirstFitDecomposition {
    /// Computes the decomposition from a First Fit packing.
    #[must_use]
    pub fn from_packing(instance: &Instance, packing: &Packing) -> Self {
        let mut latest_close: Time = 0;
        let mut bins = Vec::with_capacity(packing.bins.len());
        for (i, rec) in packing.bins.iter().enumerate() {
            let t_i = if i == 0 {
                rec.opened // P_0 = ∅ by convention (no earlier bins)
            } else {
                latest_close.max(rec.opened)
            };
            let mid = t_i.min(rec.closed);
            let p = Interval::new(rec.opened, mid);
            let q = Interval::new(mid, rec.closed);
            let item_intervals: Vec<(usize, Interval)> = rec
                .items
                .iter()
                .map(|&r| (r, instance.items[r].interval()))
                .collect();
            let cover = minimal_cover(&item_intervals, p);
            bins.push(BinSplit { p, q, cover });
            latest_close = latest_close.max(rec.closed);
        }
        FirstFitDecomposition { bins }
    }

    /// `Σ ℓ(Q_i)`.
    #[must_use]
    pub fn q_total(&self) -> Cost {
        self.bins.iter().map(|b| Cost::from(b.q.len())).sum()
    }

    /// `Σ ℓ(P_i)`.
    #[must_use]
    pub fn p_total(&self) -> Cost {
        self.bins.iter().map(|b| Cost::from(b.p.len())).sum()
    }

    /// Checks the structural claims of §4:
    ///
    /// 1. `P_i ∪ Q_i` tiles each bin's usage period, with `P_0 = ∅`;
    /// 2. the `Q_i` are pairwise disjoint and `Σ ℓ(Q_i) = span(R)`
    ///    (Claim 4);
    /// 3. each cover `R'_i` covers `P_i`, is minimal (dropping any item
    ///    leaves a hole), and has strictly increasing arrivals and
    ///    departures.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated claim.
    pub fn verify(&self, instance: &Instance, packing: &Packing) -> Result<(), String> {
        // (1) Tiling.
        for (i, (split, rec)) in self.bins.iter().zip(&packing.bins).enumerate() {
            if split.p.start != rec.opened
                || split.p.end != split.q.start
                || split.q.end != rec.closed
            {
                return Err(format!("bin {i}: P/Q do not tile the usage period"));
            }
        }
        if let Some(b0) = self.bins.first() {
            if !b0.p.is_empty() {
                return Err("bin 0 must have empty P".into());
            }
        }
        // (2) Disjoint Q with total = span.
        let mut qs: Vec<Interval> = self
            .bins
            .iter()
            .map(|b| b.q)
            .filter(|q| !q.is_empty())
            .collect();
        qs.sort();
        for w in qs.windows(2) {
            if w[0].overlaps(&w[1]) {
                return Err(format!("Q intervals overlap: {} and {}", w[0], w[1]));
            }
        }
        if self.q_total() != instance.span() {
            return Err(format!(
                "Σ ℓ(Q_i) = {} but span = {}",
                self.q_total(),
                instance.span()
            ));
        }
        // (3) Cover properties.
        for (i, split) in self.bins.iter().enumerate() {
            let ivs: Vec<Interval> = split
                .cover
                .iter()
                .map(|&r| instance.items[r].interval())
                .collect();
            let covered = |skip: Option<usize>| -> bool {
                let mut frontier = split.p.start;
                for (k, iv) in ivs.iter().enumerate() {
                    if Some(k) == skip {
                        continue;
                    }
                    if iv.start > frontier {
                        return false;
                    }
                    frontier = frontier.max(iv.end);
                    if frontier >= split.p.end {
                        return true;
                    }
                }
                frontier >= split.p.end
            };
            if !covered(None) {
                return Err(format!("bin {i}: cover misses part of P"));
            }
            for k in 0..ivs.len() {
                if covered(Some(k)) {
                    return Err(format!("bin {i}: cover not minimal (item {k} redundant)"));
                }
            }
            for w in ivs.windows(2) {
                if w[1].start <= w[0].start || w[1].end <= w[0].end {
                    return Err(format!("bin {i}: cover not sorted by arrival+departure"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbp_core::{Instance, Item, PackRequest, PolicyKind};
    use dvbp_dimvec::DimVec;

    fn item(size: &[u64], a: u64, e: u64) -> Item {
        Item::new(DimVec::from_slice(size), a, e)
    }

    fn decompose(inst: &Instance) -> (Packing, FirstFitDecomposition) {
        let p = PackRequest::new(PolicyKind::FirstFit).run(inst).unwrap();
        let d = FirstFitDecomposition::from_packing(inst, &p);
        (p, d)
    }

    #[test]
    fn single_bin_all_q() {
        let inst = Instance::new(DimVec::scalar(10), vec![item(&[5], 0, 8)]).unwrap();
        let (p, d) = decompose(&inst);
        d.verify(&inst, &p).unwrap();
        assert!(d.bins[0].p.is_empty());
        assert_eq!(d.bins[0].q, Interval::new(0, 8));
        assert_eq!(d.q_total(), 8);
    }

    #[test]
    fn second_bin_splits_at_predecessor_close() {
        // B0 alive [0,5); B1 alive [1,9): P_1 = [1,5), Q_1 = [5,9).
        let inst =
            Instance::new(DimVec::scalar(10), vec![item(&[6], 0, 5), item(&[6], 1, 9)]).unwrap();
        let (p, d) = decompose(&inst);
        d.verify(&inst, &p).unwrap();
        assert_eq!(d.bins[1].p, Interval::new(1, 5));
        assert_eq!(d.bins[1].q, Interval::new(5, 9));
        assert_eq!(d.q_total(), inst.span());
    }

    #[test]
    fn bin_fully_inside_predecessor_has_empty_q() {
        // B1 alive [1,3) ⊂ B0's [0,9): Q_1 = ∅.
        let inst =
            Instance::new(DimVec::scalar(10), vec![item(&[6], 0, 9), item(&[6], 1, 3)]).unwrap();
        let (p, d) = decompose(&inst);
        d.verify(&inst, &p).unwrap();
        assert_eq!(d.bins[1].p, Interval::new(1, 3));
        assert!(d.bins[1].q.is_empty());
    }

    #[test]
    fn minimal_cover_chains() {
        // Items chaining [0,4), [2,7), [6,10); plus a redundant [1,3).
        let items = vec![
            (0, Interval::new(0, 4)),
            (1, Interval::new(2, 7)),
            (2, Interval::new(6, 10)),
            (3, Interval::new(1, 3)),
        ];
        let cover = minimal_cover(&items, Interval::new(0, 10));
        assert_eq!(cover, vec![0, 1, 2]);
        assert_eq!(
            minimal_cover(&items, Interval::empty_at(5)),
            Vec::<usize>::new()
        );
        // Partial target needs fewer items.
        assert_eq!(minimal_cover(&items, Interval::new(0, 3)), vec![0]);
    }

    #[test]
    #[should_panic(expected = "must cover")]
    fn minimal_cover_panics_on_gap() {
        let items = vec![(0, Interval::new(0, 2)), (1, Interval::new(5, 8))];
        let _ = minimal_cover(&items, Interval::new(0, 8));
    }

    #[test]
    fn claims_hold_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let items: Vec<Item> = (0..60)
                .map(|_| {
                    let a = rng.random_range(0..40u64);
                    let dur = rng.random_range(1..=12u64);
                    let s = rng.random_range(1..=10u64);
                    item(&[s], a, a + dur)
                })
                .collect();
            let inst = Instance::new(DimVec::scalar(10), items).unwrap();
            let (p, d) = decompose(&inst);
            d.verify(&inst, &p)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}

//! The current/released decomposition of Next Fit bins — the proof
//! machinery of Theorem 4 (§5).
//!
//! Next Fit designates one *current* bin. Bin `i`'s usage period splits
//! into `P_i` (while it is the current bin) and `Q_i` (after it is
//! released, from `t_i` until it drains). Structural facts used by the
//! proof, checked by [`NextFitDecomposition::verify`]:
//!
//! * the `P_i` partition the active span (at every active instant exactly
//!   one bin is current) — eq. (11);
//! * every `Q_i` has length at most the maximum item duration (a released
//!   bin receives no new items).

use dvbp_core::{Instance, Packing, TraceEvent};
use dvbp_sim::{Cost, Interval, Time};

/// Decomposition of one Next Fit bin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BinSplit {
    /// Period during which the bin was current.
    pub p: Interval,
    /// Period after release until the bin drained (possibly empty).
    pub q: Interval,
}

/// The full Next Fit decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NextFitDecomposition {
    /// Per-bin splits, indexed by `BinId`.
    pub bins: Vec<BinSplit>,
}

impl NextFitDecomposition {
    /// Computes the decomposition from a Next Fit packing.
    ///
    /// Bin `i` stops being current either when bin `i+1` opens (it was
    /// released on a failed fit) or when it closes (it drained while
    /// current) — whichever comes first.
    #[must_use]
    pub fn from_packing(packing: &Packing) -> Self {
        // Opening times are in the bin records; bin i+1's opening tick is
        // found from the trace's opened_new events (== rec.opened).
        let mut opened: Vec<Time> = packing.bins.iter().map(|b| b.opened).collect();
        debug_assert!(
            packing
                .trace
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::Packed {
                        time,
                        bin,
                        opened_new: true,
                        ..
                    } => Some((*time, bin.0)),
                    _ => None,
                })
                .all(|(t, b)| opened[b] == t),
            "bin records and trace agree on opening times"
        );
        opened.push(Time::MAX);
        let bins = packing
            .bins
            .iter()
            .enumerate()
            .map(|(i, rec)| {
                let release = opened[i + 1].min(rec.closed);
                BinSplit {
                    p: Interval::new(rec.opened, release),
                    q: Interval::new(release, rec.closed),
                }
            })
            .collect();
        NextFitDecomposition { bins }
    }

    /// `Σ ℓ(P_i)`.
    #[must_use]
    pub fn p_total(&self) -> Cost {
        self.bins.iter().map(|b| Cost::from(b.p.len())).sum()
    }

    /// `Σ ℓ(Q_i)`.
    #[must_use]
    pub fn q_total(&self) -> Cost {
        self.bins.iter().map(|b| Cost::from(b.q.len())).sum()
    }

    /// Checks the structural claims of §5.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated claim.
    pub fn verify(&self, instance: &Instance, packing: &Packing) -> Result<(), String> {
        for (i, (split, rec)) in self.bins.iter().zip(&packing.bins).enumerate() {
            if split.p.start != rec.opened
                || split.p.end != split.q.start
                || split.q.end != rec.closed
            {
                return Err(format!("bin {i}: P/Q do not tile the usage period"));
            }
        }
        // Current periods are pairwise disjoint and total at most the
        // span. (The paper states equality under continuous time; on the
        // tick grid a current bin can close while released bins are still
        // draining, leaving short stretches with no current bin, and two
        // bins can open at the same tick, making a `P_i` empty — both only
        // *lower* Σ ℓ(P_i), which is the direction Theorem 4 needs.)
        let mut ps: Vec<Interval> = self
            .bins
            .iter()
            .map(|b| b.p)
            .filter(|p| !p.is_empty())
            .collect();
        ps.sort();
        for w in ps.windows(2) {
            if w[0].overlaps(&w[1]) {
                return Err(format!("current periods overlap: {} and {}", w[0], w[1]));
            }
        }
        if self.p_total() > instance.span() {
            return Err(format!(
                "Σ ℓ(P_i) = {} exceeds span = {}",
                self.p_total(),
                instance.span()
            ));
        }
        // Q bounded by max duration.
        let max_dur = instance
            .items
            .iter()
            .map(dvbp_core::Item::duration)
            .max()
            .unwrap_or(0);
        for (i, split) in self.bins.iter().enumerate() {
            if split.q.len() > max_dur {
                return Err(format!(
                    "bin {i}: released period {} exceeds max duration {max_dur}",
                    split.q
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbp_core::{Instance, Item, PackRequest, PolicyKind};
    use dvbp_dimvec::DimVec;

    fn item(size: &[u64], a: u64, e: u64) -> Item {
        Item::new(DimVec::from_slice(size), a, e)
    }

    fn decompose(inst: &Instance) -> (Packing, NextFitDecomposition) {
        let p = PackRequest::new(PolicyKind::NextFit).run(inst).unwrap();
        let d = NextFitDecomposition::from_packing(&p);
        (p, d)
    }

    #[test]
    fn single_bin_all_current() {
        let inst = Instance::new(DimVec::scalar(10), vec![item(&[5], 0, 8)]).unwrap();
        let (p, d) = decompose(&inst);
        d.verify(&inst, &p).unwrap();
        assert_eq!(d.bins[0].p, Interval::new(0, 8));
        assert!(d.bins[0].q.is_empty());
    }

    #[test]
    fn release_splits_at_successor_opening() {
        // B0 current [0,2) until item 2 (size 7) forces B1 at t=2; B0
        // drains [2,5).
        let inst =
            Instance::new(DimVec::scalar(10), vec![item(&[6], 0, 5), item(&[7], 2, 9)]).unwrap();
        let (p, d) = decompose(&inst);
        d.verify(&inst, &p).unwrap();
        assert_eq!(d.bins[0].p, Interval::new(0, 2));
        assert_eq!(d.bins[0].q, Interval::new(2, 5));
        assert_eq!(d.bins[1].p, Interval::new(2, 9));
    }

    #[test]
    fn drained_current_bin_has_empty_q() {
        // B0 closes at 3 while still current; B1 opens later at 5.
        let inst =
            Instance::new(DimVec::scalar(10), vec![item(&[6], 0, 3), item(&[6], 5, 8)]).unwrap();
        let (p, d) = decompose(&inst);
        d.verify(&inst, &p).unwrap();
        assert_eq!(d.bins[0].p, Interval::new(0, 3));
        assert!(d.bins[0].q.is_empty());
        assert_eq!(d.bins[1].p, Interval::new(5, 8));
    }

    #[test]
    fn claims_hold_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(2000 + seed);
            let items: Vec<Item> = (0..60)
                .map(|_| {
                    let a = rng.random_range(0..40u64);
                    let dur = rng.random_range(1..=12u64);
                    let s = rng.random_range(1..=10u64);
                    item(&[s], a, a + dur)
                })
                .collect();
            let inst = Instance::new(DimVec::scalar(10), items).unwrap();
            let (p, d) = decompose(&inst);
            d.verify(&inst, &p)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn thm6_family_decomposition() {
        use dvbp_workloads::adversarial::NextFitLb;
        let fam = NextFitLb { k: 6, d: 2, mu: 5 };
        let inst = fam.instance();
        let (p, d) = decompose(&inst);
        d.verify(&inst, &p).unwrap();
        // All long G0 items strand their bins: total released time is
        // large (each of the 1+(k−1)d bins drains for ~μ−... ticks).
        assert!(d.q_total() > 0);
    }
}

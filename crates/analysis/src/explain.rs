//! Placement explanation: reconstruct each arrival's causal chain from a
//! provenance event stream.
//!
//! A run recorded with a probe-aware observer
//! ([`ProvenanceObserver`](dvbp_obs::ProvenanceObserver), or any
//! observer under [`WithProvenance`](dvbp_obs::WithProvenance)) carries
//! one [`ObsEvent::Probe`] per candidate bin the policy examined and one
//! [`ObsEvent::Decision`] per placement. This module folds those back
//! into per-item [`Explanation`]s and renders them as the `dvbp explain`
//! CLI output — the "why did FirstFit skip bin 7" answer.
//!
//! Streams from portfolio runs carry [`ObsEvent::PolicySwitch`] markers;
//! every placement and migration is labeled with the policy live at its
//! tick (events before the first switch inherit that switch's `from`
//! side). Single-policy streams have no markers and no labels — the
//! output is unchanged for them.

use dvbp_obs::{ObsEvent, ScoreBreakdown};
use dvbp_sim::Time;
use std::fmt::Write as _;

/// One candidate-bin examination, as reconstructed from a
/// [`ObsEvent::Probe`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeInfo {
    /// The examined bin.
    pub bin: usize,
    /// Whether the item fit (or was eligible at all).
    pub fit: bool,
    /// First violated dimension on a capacity rejection; `None` on a
    /// successful probe or a policy-level rejection.
    pub dim: Option<usize>,
    /// Demand in the violated dimension.
    pub need: u64,
    /// Residual slack in the violated dimension.
    pub have: u64,
}

/// The full causal chain of one placement.
#[derive(Clone, Debug, PartialEq)]
pub struct Explanation {
    /// Arrival tick.
    pub time: Time,
    /// Item index.
    pub item: usize,
    /// Receiving bin.
    pub bin: usize,
    /// Whether the bin was opened for this item.
    pub opened_new: bool,
    /// Candidate bins in examination order.
    pub probes: Vec<ProbeInfo>,
    /// Probe count reported by the engine (equals `probes.len()` on a
    /// complete stream).
    pub reported_probes: u64,
    /// Winning bin's ranking score (Best/Worst Fit only).
    pub score: Option<ScoreBreakdown>,
    /// Policy live at this placement (round-trippable spelling), when
    /// the stream carries [`ObsEvent::PolicySwitch`] markers.
    pub policy: Option<String>,
}

/// Folds a provenance event stream into per-placement [`Explanation`]s,
/// in placement order.
///
/// Streams without `Probe`/`Decision` events (plain recorder output)
/// yield an empty vector; events outside arrivals are ignored.
#[must_use]
pub fn explain_stream(events: &[ObsEvent]) -> Vec<Explanation> {
    let mut out: Vec<Explanation> = Vec::new();
    let mut probes: Vec<ProbeInfo> = Vec::new();
    let mut policy: Option<String> = None;
    for ev in events {
        match ev {
            ObsEvent::Arrival { .. } => probes.clear(),
            ObsEvent::Probe {
                bin,
                fit,
                dim,
                need,
                have,
                ..
            } => probes.push(ProbeInfo {
                bin: *bin,
                fit: *fit,
                dim: *dim,
                need: *need,
                have: *have,
            }),
            ObsEvent::Decision {
                time,
                item,
                bin,
                opened_new,
                probes: reported,
                score,
            } => out.push(Explanation {
                time: *time,
                item: *item,
                bin: *bin,
                opened_new: *opened_new,
                probes: std::mem::take(&mut probes),
                reported_probes: *reported,
                score: *score,
                policy: policy.clone(),
            }),
            ObsEvent::PolicySwitch { from, to, .. } => {
                // Placements before the first switch ran under its
                // outgoing policy; later ones always have a label.
                for e in out.iter_mut().filter(|e| e.policy.is_none()) {
                    e.policy = Some(from.clone());
                }
                policy = Some(to.clone());
            }
            _ => {}
        }
    }
    out
}

/// The explanation for one item, if the stream contains its decision.
#[must_use]
pub fn explain_item(events: &[ObsEvent], item: usize) -> Option<Explanation> {
    explain_stream(events).into_iter().find(|e| e.item == item)
}

/// One repacking move, as reconstructed from an [`ObsEvent::Migrate`].
///
/// `closed_from` is `true` when the stream shows the source bin closing
/// at the same tick, i.e. this move completed a drain — the
/// justification a repacking policy has for paying the migration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrationInfo {
    /// Tick of the move.
    pub time: Time,
    /// Moved item.
    pub item: usize,
    /// Source bin.
    pub from: usize,
    /// Destination bin.
    pub to: usize,
    /// Whether the source bin closed as a result of the drain this move
    /// belongs to.
    pub closed_from: bool,
    /// Policy live at this move, when the stream carries
    /// [`ObsEvent::PolicySwitch`] markers.
    pub policy: Option<String>,
}

/// Folds a stream's [`ObsEvent::Migrate`] events into per-move
/// [`MigrationInfo`]s, in execution order. Empty for runs without a
/// repacking policy.
#[must_use]
pub fn explain_migrations(events: &[ObsEvent]) -> Vec<MigrationInfo> {
    let mut out: Vec<MigrationInfo> = Vec::new();
    let mut policy: Option<String> = None;
    for ev in events {
        match ev {
            ObsEvent::Migrate {
                time,
                item,
                from,
                to,
            } => out.push(MigrationInfo {
                time: *time,
                item: *item,
                from: *from,
                to: *to,
                closed_from: false,
                policy: policy.clone(),
            }),
            ObsEvent::PolicySwitch { from, to, .. } => {
                for m in out.iter_mut().filter(|m| m.policy.is_none()) {
                    m.policy = Some(from.clone());
                }
                policy = Some(to.clone());
            }
            ObsEvent::BinClose { time, bin } => {
                // A close right after migrations out of the same bin at
                // the same tick marks the drain as successful.
                for m in out.iter_mut().rev() {
                    if m.time != *time {
                        break;
                    }
                    if m.from == *bin {
                        m.closed_from = true;
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Renders one migration as a single justified line:
///
/// ```text
/// item 4 @ t=9: migrated bin 2 -> bin 0 [FirstFit] (drained bin 2, now closed)
/// ```
///
/// (the `[policy]` label appears only on portfolio streams.)
#[must_use]
pub fn render_migration(m: &MigrationInfo) -> String {
    let label = m
        .policy
        .as_ref()
        .map_or_else(String::new, |p| format!(" [{p}]"));
    let why = if m.closed_from {
        format!(" (drained bin {}, now closed)", m.from)
    } else {
        String::new()
    };
    format!(
        "item {} @ t={}: migrated bin {} -> bin {}{label}{why}\n",
        m.item, m.time, m.from, m.to
    )
}

/// Renders one explanation as an indented causal chain:
///
/// ```text
/// item 3 @ t=6: opened bin 2 after 2 probes [FirstFit]
///   bin 0: rejected at dim 0 (need 9, free 1)
///   bin 1: rejected at dim 1 (need 9, free 3)
/// ```
///
/// (the `[policy]` label appears only on portfolio streams.)
#[must_use]
pub fn render(e: &Explanation) -> String {
    let mut s = String::new();
    let verdict = if e.opened_new {
        format!("opened bin {}", e.bin)
    } else {
        format!("placed in bin {}", e.bin)
    };
    let label = e
        .policy
        .as_ref()
        .map_or_else(String::new, |p| format!(" [{p}]"));
    let _ = writeln!(
        s,
        "item {} @ t={}: {} after {} probe{}{label}",
        e.item,
        e.time,
        verdict,
        e.reported_probes,
        if e.reported_probes == 1 { "" } else { "s" }
    );
    for p in &e.probes {
        let line = if p.fit {
            format!("bin {}: fits", p.bin)
        } else if let Some(j) = p.dim {
            format!(
                "bin {}: rejected at dim {} (need {}, free {})",
                p.bin, j, p.need, p.have
            )
        } else {
            format!("bin {}: rejected by policy", p.bin)
        };
        let _ = writeln!(s, "  {line}");
    }
    if let Some(score) = e.score {
        let detail = match score {
            ScoreBreakdown::Frac { num, den } => format!("{num}/{den} = {:.4}", score.value()),
            ScoreBreakdown::Bits { .. } => format!("{:.4}", score.value()),
        };
        let _ = writeln!(s, "  winner load score: {detail}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbp_core::{Instance, Item, PackRequest, PolicyKind};
    use dvbp_dimvec::DimVec;
    use dvbp_obs::ProvenanceObserver;

    fn item(size: &[u64], a: u64, e: u64) -> Item {
        Item::new(DimVec::from_slice(size), a, e)
    }

    fn sample_instance() -> Instance {
        Instance::new(
            DimVec::from_slice(&[10, 10]),
            vec![
                item(&[7, 2], 0, 10),
                item(&[2, 7], 2, 5),
                item(&[3, 3], 4, 6),
                item(&[9, 9], 6, 12),
                item(&[1, 1], 7, 9),
            ],
        )
        .unwrap()
    }

    #[test]
    fn every_placement_gets_an_explanation() {
        let inst = sample_instance();
        for kind in PolicyKind::paper_suite(42) {
            let mut obs = ProvenanceObserver::new();
            PackRequest::new(kind.clone())
                .observer(&mut obs)
                .run(&inst)
                .unwrap();
            let explanations = explain_stream(&obs.events);
            assert_eq!(explanations.len(), inst.len(), "{}", kind.name());
            for e in &explanations {
                assert_eq!(
                    e.probes.len() as u64,
                    e.reported_probes,
                    "{} item {}",
                    kind.name(),
                    e.item
                );
            }
        }
    }

    #[test]
    fn rejection_names_the_violated_dimension() {
        // Item 1 (2,7) fits bin 0 next to (7,2); item 3 (9,9) fits nowhere:
        // bin 0 rejects it in some dimension with concrete need/free.
        let inst = sample_instance();
        let mut obs = ProvenanceObserver::new();
        PackRequest::new(PolicyKind::FirstFit)
            .observer(&mut obs)
            .run(&inst)
            .unwrap();
        let e = explain_item(&obs.events, 3).unwrap();
        assert!(e.opened_new);
        assert!(!e.probes.is_empty());
        let p = e.probes[0];
        assert!(!p.fit);
        assert!(p.dim.is_some());
        assert_eq!(p.need, 9);
        assert!(p.have < 9);
        let text = render(&e);
        assert!(text.contains("opened bin"), "{text}");
        assert!(text.contains("rejected at dim"), "{text}");
    }

    #[test]
    fn best_fit_decisions_carry_a_score() {
        let inst = sample_instance();
        let mut obs = ProvenanceObserver::new();
        PackRequest::new(PolicyKind::BestFit(dvbp_core::LoadMeasure::Linf))
            .observer(&mut obs)
            .run(&inst)
            .unwrap();
        let placed_existing: Vec<_> = explain_stream(&obs.events)
            .into_iter()
            .filter(|e| !e.opened_new)
            .collect();
        assert!(!placed_existing.is_empty());
        for e in &placed_existing {
            let score = e.score.expect("BestFit reports a winner score");
            assert!((0.0..=1.0).contains(&score.value()));
            assert!(render(e).contains("winner load score"), "{}", render(e));
        }
    }

    #[test]
    fn policy_switch_markers_label_placements_and_migrations() {
        // Two placements under the initial policy, a switch, then one
        // placement and one migration under the incoming policy.
        let events = vec![
            ObsEvent::Decision {
                time: 0,
                item: 0,
                bin: 0,
                opened_new: true,
                probes: 0,
                score: None,
            },
            ObsEvent::Decision {
                time: 1,
                item: 1,
                bin: 1,
                opened_new: true,
                probes: 1,
                score: None,
            },
            ObsEvent::PolicySwitch {
                time: 2,
                from: "NextFit".into(),
                to: "FirstFit".into(),
            },
            ObsEvent::Decision {
                time: 3,
                item: 2,
                bin: 0,
                opened_new: false,
                probes: 1,
                score: None,
            },
            ObsEvent::Migrate {
                time: 4,
                item: 1,
                from: 1,
                to: 0,
            },
        ];
        let explanations = explain_stream(&events);
        let labels: Vec<_> = explanations.iter().map(|e| e.policy.as_deref()).collect();
        assert_eq!(
            labels,
            [Some("NextFit"), Some("NextFit"), Some("FirstFit")],
            "pre-switch placements inherit the outgoing policy"
        );
        assert!(render(&explanations[2]).contains("[FirstFit]"));
        let migrations = explain_migrations(&events);
        assert_eq!(migrations[0].policy.as_deref(), Some("FirstFit"));
        assert!(render_migration(&migrations[0]).contains("[FirstFit]"));
    }

    #[test]
    fn single_policy_streams_stay_unlabeled() {
        let inst = sample_instance();
        let mut obs = ProvenanceObserver::new();
        PackRequest::new(PolicyKind::FirstFit)
            .observer(&mut obs)
            .run(&inst)
            .unwrap();
        for e in explain_stream(&obs.events) {
            assert_eq!(e.policy, None);
            assert!(!render(&e).contains(['[', ']']), "{}", render(&e));
        }
    }

    #[test]
    fn plain_recorder_streams_have_no_explanations() {
        let inst = sample_instance();
        let mut rec = dvbp_obs::Recorder::new();
        PackRequest::new(PolicyKind::FirstFit)
            .observer(&mut rec)
            .run(&inst)
            .unwrap();
        assert!(explain_stream(&rec.events).is_empty());
    }
}

//! Ingestion of `dvbp-obs` JSONL event streams.
//!
//! The engine's observer feed is **complete**: every placement, bin
//! opening, departure, and bin closing appears exactly once, in
//! simulation order. This module exploits that to
//!
//! * [`replay_packing`] — reconstruct the run's full
//!   [`Packing`] from the stream alone (the conformance harness checks
//!   the reconstruction is bit-identical to the live run's);
//! * [`RunLog::open_bins_series`] / [`RunLog::utilization_series`] —
//!   exact step-function time series of concurrently-open bins and L1
//!   utilization, the ground truth the reservoir-sampled gauges of
//!   `MetricsObserver` approximate;
//! * [`split_runs`] / [`summary_table`] — group a multi-run
//!   JSONL file (as produced by the experiment CLIs' `--metrics` flag,
//!   with interleaved [`ObsEvent::Meta`] labels) and feed it into the
//!   report pipeline.

use crate::report::TextTable;
use dvbp_core::{BinId, BinUsage, Packing, TraceEvent};
use dvbp_obs::ObsEvent;
use dvbp_sim::{Cost, Time};

/// A malformed event stream detected during replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// A `Place` referenced a bin with no preceding `BinOpen`.
    PlaceBeforeOpen {
        /// Offending bin index.
        bin: usize,
    },
    /// A `Place` re-assigned an item that was already placed.
    DuplicatePlacement {
        /// Offending item index.
        item: usize,
    },
    /// A `BinClose` referenced an unknown bin.
    CloseUnknownBin {
        /// Offending bin index.
        bin: usize,
    },
    /// Bin ids did not appear in opening order (the engine numbers bins
    /// `0, 1, 2, …` in opening order).
    NonSequentialBin {
        /// Offending bin index.
        bin: usize,
        /// Expected bin index.
        expected: usize,
    },
    /// The stream ended with an item never placed (stream truncated).
    MissingPlacement {
        /// Offending item index.
        item: usize,
    },
    /// A `Migrate` moved an item that was not resident in its `from` bin.
    MigrateMismatch {
        /// Offending item index.
        item: usize,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::PlaceBeforeOpen { bin } => {
                write!(f, "place into bin {bin} before its BinOpen")
            }
            ReplayError::DuplicatePlacement { item } => {
                write!(f, "item {item} placed twice")
            }
            ReplayError::CloseUnknownBin { bin } => write!(f, "close of unknown bin {bin}"),
            ReplayError::NonSequentialBin { bin, expected } => {
                write!(f, "bin {bin} opened out of order (expected {expected})")
            }
            ReplayError::MissingPlacement { item } => {
                write!(f, "item {item} never placed (truncated stream?)")
            }
            ReplayError::MigrateMismatch { item } => {
                write!(f, "item {item} migrated out of a bin it was not in")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Reconstructs the run's [`Packing`] from its observer event stream.
///
/// Requires one complete run (one `RunStart`..`RunEnd` window);
/// [`ObsEvent::Meta`] lines and events of other kinds outside the window
/// are ignored. The result is identical — assignment, per-bin usage
/// records, and decision trace — to the `Packing` returned by the live
/// [`TraceMode::Full`](dvbp_core::TraceMode::Full) run that emitted the
/// stream.
///
/// # Errors
///
/// Returns a [`ReplayError`] for streams that are internally
/// inconsistent or truncated.
pub fn replay_packing(events: &[ObsEvent]) -> Result<Packing, ReplayError> {
    let mut assignment: Vec<Option<BinId>> = Vec::new();
    let mut bins: Vec<BinUsage> = Vec::new();
    let mut trace: Vec<TraceEvent> = Vec::new();
    for ev in events {
        match ev {
            ObsEvent::RunStart { items, .. } => {
                assignment = vec![None; *items];
            }
            ObsEvent::BinOpen { time, bin } => {
                if *bin != bins.len() {
                    return Err(ReplayError::NonSequentialBin {
                        bin: *bin,
                        expected: bins.len(),
                    });
                }
                bins.push(BinUsage {
                    opened: *time,
                    closed: *time,
                    items: Vec::new(),
                });
            }
            ObsEvent::Place {
                time,
                item,
                bin,
                opened_new,
                ..
            } => {
                if *bin >= bins.len() {
                    return Err(ReplayError::PlaceBeforeOpen { bin: *bin });
                }
                if *item >= assignment.len() {
                    assignment.resize(*item + 1, None);
                }
                if assignment[*item].is_some() {
                    return Err(ReplayError::DuplicatePlacement { item: *item });
                }
                assignment[*item] = Some(BinId(*bin));
                bins[*bin].items.push(*item);
                trace.push(TraceEvent::Packed {
                    time: *time,
                    item: *item,
                    bin: BinId(*bin),
                    opened_new: *opened_new,
                });
            }
            ObsEvent::BinClose { time, bin } => {
                if *bin >= bins.len() {
                    return Err(ReplayError::CloseUnknownBin { bin: *bin });
                }
                bins[*bin].closed = *time;
                trace.push(TraceEvent::Closed {
                    time: *time,
                    bin: BinId(*bin),
                });
            }
            ObsEvent::Migrate {
                time,
                item,
                from,
                to,
            } => {
                // Repacking moves a live item; the final Packing records
                // it in the destination bin only (mirroring the engine's
                // item chains after a migration).
                if *to >= bins.len() {
                    return Err(ReplayError::PlaceBeforeOpen { bin: *to });
                }
                if assignment.get(*item).copied().flatten() != Some(BinId(*from)) {
                    return Err(ReplayError::MigrateMismatch { item: *item });
                }
                assignment[*item] = Some(BinId(*to));
                bins[*from].items.retain(|&i| i != *item);
                bins[*to].items.push(*item);
                trace.push(TraceEvent::Migrated {
                    time: *time,
                    item: *item,
                    from: BinId(*from),
                    to: BinId(*to),
                });
            }
            ObsEvent::Meta { .. }
            | ObsEvent::Arrival { .. }
            | ObsEvent::Ident { .. }
            | ObsEvent::Probe { .. }
            | ObsEvent::Decision { .. }
            | ObsEvent::Depart { .. }
            | ObsEvent::PolicySwitch { .. }
            | ObsEvent::RunEnd { .. } => {}
        }
    }
    let assignment = assignment
        .into_iter()
        .enumerate()
        .map(|(item, b)| b.ok_or(ReplayError::MissingPlacement { item }))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Packing {
        assignment,
        bins,
        trace,
    })
}

/// One run's slice of a JSONL stream: the label of the nearest preceding
/// [`ObsEvent::Meta`] line plus the `RunStart`..`RunEnd` events.
#[derive(Clone, Debug, PartialEq)]
pub struct RunLog {
    /// Algorithm name from the `Meta` line (empty if unlabeled).
    pub algorithm: String,
    /// Dimension `d` from the `Meta` line (0 if unlabeled).
    pub d: usize,
    /// Max duration `μ` from the `Meta` line (0 if unlabeled).
    pub mu: u64,
    /// Trial seed from the `Meta` line (0 if unlabeled).
    pub seed: u64,
    /// The run's events, `RunStart` through `RunEnd` inclusive.
    pub events: Vec<ObsEvent>,
}

impl RunLog {
    /// Reconstructs this run's [`Packing`]; see [`replay_packing`].
    ///
    /// # Errors
    ///
    /// Returns a [`ReplayError`] for inconsistent or truncated streams.
    pub fn replay(&self) -> Result<Packing, ReplayError> {
        replay_packing(&self.events)
    }

    /// Exact step-function series of concurrently-open bins: the value
    /// after each opening/closing event, as `(time, open_bins)` breaks.
    /// Consecutive events at one tick collapse to the final value.
    #[must_use]
    pub fn open_bins_series(&self) -> Vec<(Time, u64)> {
        let mut series: Vec<(Time, u64)> = Vec::new();
        let mut open: u64 = 0;
        let mut push = |time: Time, open: u64| match series.last_mut() {
            Some(last) if last.0 == time => last.1 = open,
            _ => series.push((time, open)),
        };
        for ev in &self.events {
            match ev {
                ObsEvent::BinOpen { time, .. } => {
                    open += 1;
                    push(*time, open);
                }
                ObsEvent::BinClose { time, .. } => {
                    open -= 1;
                    push(*time, open);
                }
                _ => {}
            }
        }
        series
    }

    /// Exact step-function series of L1 utilization — total active load
    /// over total open capacity, in `[0, 1]` — after each event that
    /// changes it. `None` entries (no open bins) are skipped.
    #[must_use]
    pub fn utilization_series(&self) -> Vec<(Time, f64)> {
        let capacity_sum: u64 = self
            .events
            .iter()
            .find_map(|ev| match ev {
                ObsEvent::RunStart { capacity, .. } => Some(capacity.iter().sum()),
                _ => None,
            })
            .unwrap_or(0);
        if capacity_sum == 0 {
            return Vec::new();
        }
        let mut item_load: Vec<u64> = Vec::new();
        let mut load: u64 = 0;
        let mut open: u64 = 0;
        let mut series: Vec<(Time, f64)> = Vec::new();
        let mut push = |time: Time, open: u64, load: u64| {
            if open == 0 {
                return;
            }
            let u = load as f64 / (open * capacity_sum) as f64;
            match series.last_mut() {
                Some(last) if last.0 == time => last.1 = u,
                _ => series.push((time, u)),
            }
        };
        for ev in &self.events {
            match ev {
                ObsEvent::Arrival { item, size, .. } => {
                    if *item >= item_load.len() {
                        item_load.resize(*item + 1, 0);
                    }
                    item_load[*item] = size.iter().sum();
                }
                ObsEvent::BinOpen { time, .. } => {
                    open += 1;
                    push(*time, open, load);
                }
                ObsEvent::Place { time, item, .. } => {
                    load += item_load.get(*item).copied().unwrap_or(0);
                    push(*time, open, load);
                }
                ObsEvent::Depart { time, item, .. } => {
                    load -= item_load.get(*item).copied().unwrap_or(0);
                    push(*time, open, load);
                }
                ObsEvent::BinClose { time, .. } => {
                    open -= 1;
                    push(*time, open, load);
                }
                _ => {}
            }
        }
        series
    }

    /// Total scan work reported by the run's `Place` events.
    #[must_use]
    pub fn total_scanned(&self) -> u64 {
        self.events
            .iter()
            .map(|ev| match ev {
                ObsEvent::Place { scanned, .. } => *scanned,
                _ => 0,
            })
            .sum()
    }
}

/// Groups a parsed JSONL stream into per-run [`RunLog`]s.
///
/// Each [`ObsEvent::Meta`] line labels the runs that follow it (the
/// experiment CLIs emit one `Meta` per trial); events before the first
/// `RunStart` and outside any run window are dropped.
#[must_use]
pub fn split_runs(events: &[ObsEvent]) -> Vec<RunLog> {
    let mut runs = Vec::new();
    let mut label = (String::new(), 0usize, 0u64, 0u64);
    let mut current: Option<RunLog> = None;
    for ev in events {
        match ev {
            ObsEvent::Meta {
                algorithm,
                d,
                mu,
                seed,
            } => {
                label = (algorithm.clone(), *d, *mu, *seed);
            }
            ObsEvent::RunStart { .. } => {
                current = Some(RunLog {
                    algorithm: label.0.clone(),
                    d: label.1,
                    mu: label.2,
                    seed: label.3,
                    events: vec![ev.clone()],
                });
            }
            ObsEvent::RunEnd { .. } => {
                if let Some(mut run) = current.take() {
                    run.events.push(ev.clone());
                    runs.push(run);
                }
            }
            _ => {
                if let Some(run) = current.as_mut() {
                    run.events.push(ev.clone());
                }
            }
        }
    }
    runs
}

/// Parses JSONL text and groups it into runs in one step.
///
/// # Errors
///
/// Returns the [`ObsError`](dvbp_obs::ObsError) of the first malformed
/// line.
pub fn ingest_jsonl(text: &str) -> Result<Vec<RunLog>, dvbp_obs::ObsError> {
    Ok(split_runs(&dvbp_obs::jsonl::parse_str(text)?))
}

/// Summarizes ingested runs as a report table: one row per run with its
/// label, item/bin counts, replayed usage-time cost, peak concurrently
/// open bins, and mean placement scan length.
///
/// # Errors
///
/// Returns a [`ReplayError`] if any run's stream does not replay.
pub fn summary_table(runs: &[RunLog]) -> Result<TextTable, ReplayError> {
    let mut table = TextTable::new([
        "algorithm",
        "d",
        "mu",
        "seed",
        "items",
        "bins",
        "cost",
        "peak open",
        "mean scan",
    ]);
    for run in runs {
        let packing = run.replay()?;
        let places = packing.assignment.len();
        let cost: Cost = packing.cost();
        let peak = run
            .open_bins_series()
            .iter()
            .map(|&(_, v)| v)
            .max()
            .unwrap_or(0);
        let mean_scan = if places == 0 {
            0.0
        } else {
            run.total_scanned() as f64 / places as f64
        };
        table.row([
            run.algorithm.clone(),
            run.d.to_string(),
            run.mu.to_string(),
            run.seed.to_string(),
            places.to_string(),
            packing.num_bins().to_string(),
            cost.to_string(),
            peak.to_string(),
            format!("{mean_scan:.2}"),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbp_core::{Instance, Item, PackRequest, PolicyKind};
    use dvbp_dimvec::DimVec;
    use dvbp_obs::{JsonlEmitter, Recorder};

    fn item(size: &[u64], a: u64, e: u64) -> Item {
        Item::new(DimVec::from_slice(size), a, e)
    }

    fn sample_instance() -> Instance {
        Instance::new(
            DimVec::from_slice(&[10, 10]),
            vec![
                item(&[7, 2], 0, 10),
                item(&[2, 7], 2, 5),
                item(&[3, 3], 4, 6),
                item(&[9, 9], 6, 12),
                item(&[1, 1], 7, 9),
            ],
        )
        .unwrap()
    }

    #[test]
    fn replay_reconstructs_live_packing() {
        let inst = sample_instance();
        for kind in PolicyKind::paper_suite(42) {
            let mut rec = Recorder::new();
            let live = PackRequest::new(kind.clone())
                .observer(&mut rec)
                .run(&inst)
                .unwrap();
            let replayed = replay_packing(&rec.events).unwrap();
            assert_eq!(replayed, live, "{}", kind.name());
        }
    }

    #[test]
    fn jsonl_round_trip_replays_identically() {
        let inst = sample_instance();
        let mut emitter = JsonlEmitter::new(Vec::new());
        emitter.emit(&dvbp_obs::ObsEvent::Meta {
            algorithm: "FirstFit".into(),
            d: 2,
            mu: 6,
            seed: 1,
        });
        let live = PackRequest::new(PolicyKind::FirstFit)
            .observer(&mut emitter)
            .run(&inst)
            .unwrap();
        let text = String::from_utf8(emitter.finish().unwrap()).unwrap();
        let runs = ingest_jsonl(&text).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].algorithm, "FirstFit");
        assert_eq!(runs[0].replay().unwrap(), live);
    }

    #[test]
    fn open_bins_series_matches_sweep_line_ground_truth() {
        let inst = sample_instance();
        let mut rec = Recorder::new();
        let live = PackRequest::new(PolicyKind::FirstFit)
            .observer(&mut rec)
            .run(&inst)
            .unwrap();
        let runs = split_runs(&rec.events);
        let series = runs[0].open_bins_series();
        let peak = series.iter().map(|&(_, v)| v).max().unwrap();
        assert_eq!(peak as usize, live.max_concurrent_bins());
        // The series is a valid step function: ends at zero open bins,
        // and its breaks are time-ordered.
        assert_eq!(series.last().unwrap().1, 0);
        assert!(series.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn utilization_series_stays_in_unit_interval() {
        let inst = sample_instance();
        let mut rec = Recorder::new();
        PackRequest::new(PolicyKind::MoveToFront)
            .observer(&mut rec)
            .run(&inst)
            .unwrap();
        let runs = split_runs(&rec.events);
        let series = runs[0].utilization_series();
        assert!(!series.is_empty());
        assert!(series.iter().all(|&(_, u)| (0.0..=1.0).contains(&u)));
        // First break: one item of L1 size 9 in one bin of capacity 20.
        assert!((series[0].1 - 9.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn truncated_stream_is_a_replay_error() {
        let inst = sample_instance();
        let mut rec = Recorder::new();
        PackRequest::new(PolicyKind::FirstFit)
            .observer(&mut rec)
            .run(&inst)
            .unwrap();
        // Drop a Place event: the replay must notice the missing item.
        let mut events = rec.events.clone();
        let place_at = events
            .iter()
            .position(|e| matches!(e, ObsEvent::Place { .. }))
            .unwrap();
        events.remove(place_at);
        assert!(matches!(
            replay_packing(&events),
            Err(ReplayError::DuplicatePlacement { .. } | ReplayError::MissingPlacement { .. })
        ));
    }

    #[test]
    fn summary_table_has_one_row_per_run() {
        let inst = sample_instance();
        let mut emitter = JsonlEmitter::new(Vec::new());
        for (i, kind) in [PolicyKind::FirstFit, PolicyKind::NextFit]
            .iter()
            .enumerate()
        {
            emitter.emit(&dvbp_obs::ObsEvent::Meta {
                algorithm: kind.name(),
                d: 2,
                mu: 6,
                seed: i as u64,
            });
            PackRequest::new(kind.clone())
                .observer(&mut emitter)
                .run(&inst)
                .unwrap();
        }
        let text = String::from_utf8(emitter.finish().unwrap()).unwrap();
        let runs = ingest_jsonl(&text).unwrap();
        assert_eq!(runs.len(), 2);
        let table = summary_table(&runs).unwrap();
        assert_eq!(table.len(), 2);
        let rendered = table.to_string();
        assert!(rendered.contains("FirstFit"), "{rendered}");
        assert!(rendered.contains("NextFit"), "{rendered}");
    }
}

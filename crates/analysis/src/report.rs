//! Fixed-width text tables for the experiment binaries.
//!
//! The harness prints the same rows/series the paper reports; this module
//! keeps that output aligned and dependency-free.

use std::fmt;

/// Horizontal alignment of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple fixed-width text table.
#[derive(Clone, Debug)]
pub struct TextTable {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers; the first column is
    /// left-aligned, the rest right-aligned (override with
    /// [`aligns`](Self::aligns)).
    #[must_use]
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        TextTable {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Overrides the column alignments.
    ///
    /// # Panics
    ///
    /// Panics if the count differs from the header count.
    #[must_use]
    pub fn aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.headers.len());
        self.aligns = aligns;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff no data rows have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                match self.aligns[i] {
                    Align::Left => write!(f, "{cell:<width$}", width = widths[i])?,
                    Align::Right => write!(f, "{cell:>width$}", width = widths[i])?,
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        write_row(f, &rule)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        let _ = cols;
        Ok(())
    }
}

/// Formats `mean ± std` with three decimals, Figure 4 style.
#[must_use]
pub fn mean_pm_std(mean: f64, std: f64) -> String {
    format!("{mean:.3} ± {std:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["alg", "ratio"]);
        t.row(["MoveToFront", "1.23"]);
        t.row(["FF", "1.5"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("alg"));
        assert!(lines[1].starts_with("---"));
        // Right alignment of the numeric column.
        assert!(lines[2].ends_with("1.23"));
        assert!(lines[3].ends_with(" 1.5"));
        // Left alignment of the label column.
        assert!(lines[3].starts_with("FF "));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn custom_alignment() {
        let t = TextTable::new(["x", "y"]).aligns(vec![Align::Right, Align::Left]);
        assert_eq!(t.aligns[0], Align::Right);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn mean_pm_std_format() {
        assert_eq!(mean_pm_std(1.23456, 0.0789), "1.235 ± 0.079");
    }
}

//! Analyses of packings: proof-structure decompositions (Figures 1–2 of
//! the paper), summary statistics, and competitive-ratio estimation.
//!
//! The upper-bound proofs of §3–§5 rest on decompositions of each bin's
//! usage period; this crate *computes those decompositions from real
//! executions* and checks the structural claims the proofs rely on:
//!
//! * [`decomposition::mtf`] — leading/non-leading intervals of Move To
//!   Front bins (Figure 1): leading intervals partition `[0, span)`
//!   (Claim 1), non-leading intervals are at most `μ` long (Claim 2).
//! * [`decomposition::first_fit`] — the `P_i`/`Q_i` split of First Fit
//!   bins (Figure 2): `Σ ℓ(Q_i) = span(R)` (Claim 4), plus the minimal
//!   item covers `R'_i` of each `P_i`.
//! * [`decomposition::next_fit`] — current/released periods of Next Fit
//!   bins: current periods partition the span (eq. 11), released periods
//!   are at most `μ` long.
//!
//! [`stats`] provides the mean ± std-dev aggregation used by Figure 4 and
//! [`report`] the fixed-width tables the experiment binaries print.

#[cfg(test)]
mod proptests;

pub mod decomposition;
pub mod explain;
pub mod gantt;
pub mod metrics;
pub mod obs_ingest;
pub mod report;
pub mod stats;

/// Cost ratio `cost / reference` as `f64` (`NaN`-free: a zero reference
/// with zero cost is 1, with positive cost is `+∞`).
#[must_use]
pub fn ratio(cost: dvbp_sim::Cost, reference: dvbp_sim::Cost) -> f64 {
    if reference == 0 {
        if cost == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        cost as f64 / reference as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_basics() {
        assert_eq!(ratio(10, 5), 2.0);
        assert_eq!(ratio(0, 0), 1.0);
        assert_eq!(ratio(3, 0), f64::INFINITY);
        assert_eq!(ratio(5, 10), 0.5);
    }
}

//! Summary statistics for trial aggregation (mean ± std of Figure 4).

use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm), plus
/// min/max. Numerically stable for the thousands of trials per grid
/// point used by the experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator (parallel reduction; Chan et al.).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (`n − 1` denominator; 0 for < 2 samples).
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count as f64 - 1.0)).sqrt()
        }
    }

    /// Smallest observation (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Half-width of the normal-approximation 95% confidence interval.
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev() / (self.count as f64).sqrt()
        }
    }
}

/// A finalized summary, convenient for serialization into reports.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl From<&Accumulator> for Summary {
    fn from(acc: &Accumulator) -> Self {
        Summary {
            count: acc.count(),
            mean: acc.mean(),
            std_dev: acc.std_dev(),
            min: acc.min().unwrap_or(f64::NAN),
            max: acc.max().unwrap_or(f64::NAN),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let mut acc = Accumulator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            acc.push(x);
        }
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        // Population variance 4 -> sample variance 32/7.
        assert!((acc.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(acc.min(), Some(2.0));
        assert_eq!(acc.max(), Some(9.0));
    }

    #[test]
    fn empty_and_single() {
        let acc = Accumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.std_dev(), 0.0);
        assert_eq!(acc.min(), None);
        let mut one = Accumulator::new();
        one.push(3.5);
        assert_eq!(one.mean(), 3.5);
        assert_eq!(one.std_dev(), 0.0);
        assert_eq!(one.ci95_half_width(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut whole = Accumulator::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.std_dev() - whole.std_dev()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Accumulator::new();
        a.push(1.0);
        let b = Accumulator::new();
        let mut a2 = a;
        a2.merge(&b);
        assert_eq!(a2, a);
        let mut c = Accumulator::new();
        c.merge(&a);
        assert_eq!(c, a);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = Accumulator::new();
        let mut large = Accumulator::new();
        for i in 0..10 {
            small.push(f64::from(i % 3));
        }
        for i in 0..1000 {
            large.push(f64::from(i % 3));
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn summary_conversion() {
        let mut acc = Accumulator::new();
        acc.push(1.0);
        acc.push(3.0);
        let s = Summary::from(&acc);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }
}

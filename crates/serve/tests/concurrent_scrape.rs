//! Concurrent-scrape race test: `/metrics`, `/status`, and `/spans`
//! hammered from multiple threads while a driver mutates the service
//! over NDJSON, and again around `/shutdown` — every response that
//! comes back must be well-formed (200, parseable body). The span
//! sinks are lock-free seqlocks and relaxed atomics; this is the test
//! that races them for real.

use dvbp_core::{PolicyKind, RepackPolicy, TimeMode, TraceMode};
use dvbp_dimvec::DimVec;
use dvbp_obs::SyncPolicy;
use dvbp_serve::protocol::ServeStatus;
use dvbp_serve::router::RouterKind;
use dvbp_serve::server::{serve, ServeState};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn get(addr: &str, path: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| e.to_string())?;
    let mut text = String::new();
    BufReader::new(stream)
        .read_to_string(&mut text)
        .map_err(|e| e.to_string())?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response for {path}: {text:?}"))?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(format!("{path}: {}", head.lines().next().unwrap_or("")));
    }
    Ok(body.to_string())
}

/// Asserts one scraped body is well-formed for its route.
fn validate(path: &str, body: &str) {
    match path {
        "/status" => {
            serde_json::from_str::<ServeStatus>(body)
                .unwrap_or_else(|e| panic!("/status unparseable: {e}\n{body}"));
        }
        "/metrics" => {
            assert!(body.contains("# TYPE dvbp_serve_arrivals_total"), "{body}");
            assert!(body.contains("dvbp_build_info"), "{body}");
            for line in body.lines() {
                if line.starts_with('#') {
                    assert!(line.starts_with("# TYPE "), "{line}");
                    continue;
                }
                let (_, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("{line}"));
                assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
            }
        }
        "/spans" => {
            // Torn ring slots are skipped by the seqlock reader, so
            // every emitted line must be complete JSON.
            for line in body.lines() {
                serde_json::from_str::<serde_json::Value>(line)
                    .unwrap_or_else(|e| panic!("/spans line unparseable: {e}\n{line}"));
            }
        }
        other => panic!("unexpected path {other}"),
    }
}

#[test]
fn concurrent_scrapes_stay_well_formed_through_drive_and_shutdown() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let state = Arc::new(
        ServeState::in_memory(
            &DimVec::from_slice(&[100, 100]),
            &PolicyKind::FirstFit,
            RepackPolicy::DrainOnDepart { k: 2 },
            2,
            RouterKind::Hash,
            TraceMode::CostOnly,
            TimeMode::Clamp,
            SyncPolicy::PerEvent,
            None,
        )
        .unwrap(),
    );
    let server = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || serve(&state, &listener).unwrap())
    };

    let driving = Arc::new(AtomicBool::new(true));
    let driver = {
        let addr = addr.clone();
        let driving = Arc::clone(&driving);
        std::thread::spawn(move || {
            let mut conn = TcpStream::connect(&addr).unwrap();
            conn.set_nodelay(true).unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            let mut line = String::new();
            let mut i = 0u64;
            while driving.load(Ordering::Relaxed) {
                writeln!(
                    conn,
                    r#"{{"Arrive":{{"id":"vm-{i}","size":[2,3],"time":{}}}}}"#,
                    2 * i
                )
                .unwrap();
                line.clear();
                reader.read_line(&mut line).unwrap();
                writeln!(
                    conn,
                    r#"{{"Depart":{{"id":"vm-{i}","time":{}}}}}"#,
                    2 * i + 1
                )
                .unwrap();
                line.clear();
                reader.read_line(&mut line).unwrap();
                i += 1;
            }
            i
        })
    };

    // Three scraper threads per route, racing the driver.
    std::thread::scope(|scope| {
        for path in ["/metrics", "/status", "/spans"] {
            for _ in 0..3 {
                let addr = addr.clone();
                scope.spawn(move || {
                    for _ in 0..25 {
                        let body = get(&addr, path).unwrap_or_else(|e| panic!("{e}"));
                        validate(path, &body);
                    }
                });
            }
        }
    });

    driving.store(false, Ordering::Relaxed);
    let ops = driver.join().unwrap();
    assert!(ops > 0, "driver made no progress under scrape load");

    // Race the shutdown itself: scrapers run while /shutdown lands.
    // Responses that arrive must still be well-formed; connections the
    // dying accept loop never picks up may error, and that's fine.
    std::thread::scope(|scope| {
        for path in ["/metrics", "/status", "/spans"] {
            let addr = addr.clone();
            scope.spawn(move || {
                for _ in 0..10 {
                    if let Ok(body) = get(&addr, path) {
                        validate(path, &body);
                    }
                }
            });
        }
        let addr = addr.clone();
        scope.spawn(move || {
            let mut stream = TcpStream::connect(&addr).unwrap();
            write!(stream, "POST /shutdown HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut text = String::new();
            let _ = BufReader::new(stream).read_to_string(&mut text);
            assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        });
    });

    assert!(state.is_shutting_down());
    let _ = TcpStream::connect(&addr); // nudge the accept loop
    server.join().unwrap();
}

//! Regression test for the slow-client guard: a connection that sends a
//! *partial* request line and then stalls used to pin its handler
//! thread forever (`read_line` blocks until the newline arrives). With
//! the read timeout, the stalled client receives a typed `timeout`
//! protocol error and is disconnected — while an idle-but-healthy
//! keep-alive connection on the same service is unaffected.

use dvbp_core::{PolicyKind, RepackPolicy, TimeMode, TraceMode};
use dvbp_dimvec::DimVec;
use dvbp_obs::SyncPolicy;
use dvbp_serve::protocol::error_code;
use dvbp_serve::router::RouterKind;
use dvbp_serve::server::{serve, ServeState};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn boot(read_timeout_ms: u64) -> (String, Arc<ServeState<Vec<u8>>>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let state = Arc::new(
        ServeState::in_memory(
            &DimVec::from_slice(&[10, 10]),
            &PolicyKind::FirstFit,
            RepackPolicy::NoRepack,
            1,
            RouterKind::Hash,
            TraceMode::CostOnly,
            TimeMode::Clamp,
            SyncPolicy::PerEvent,
            None,
        )
        .unwrap(),
    );
    state.set_read_timeout_ms(read_timeout_ms);
    {
        let state = Arc::clone(&state);
        std::thread::spawn(move || serve(&state, &listener).unwrap());
    }
    (addr, state)
}

#[test]
fn stalled_partial_line_gets_timeout_error_and_disconnect() {
    let (addr, state) = boot(150);

    // A healthy keep-alive session, opened first: it must keep working
    // across the stalled client's whole lifetime.
    let mut healthy = TcpStream::connect(&addr).unwrap();
    healthy
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut healthy_reader = BufReader::new(healthy.try_clone().unwrap());
    let mut line = String::new();
    writeln!(
        healthy,
        r#"{{"Arrive":{{"id":"vm-0","size":[1,1],"time":0}}}}"#
    )
    .unwrap();
    healthy_reader.read_line(&mut line).unwrap();
    assert!(line.contains("Placed"), "{line}");

    // The stalled client: half a request line, then silence.
    let mut stalled = TcpStream::connect(&addr).unwrap();
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stalled, r#"{{"Arrive":{{"id":"vm-1","#).unwrap();
    stalled.flush().unwrap();

    // The guard fires after the 150ms read timeout: one typed error
    // line, then EOF.
    let started = Instant::now();
    let mut response = String::new();
    stalled.read_to_string(&mut response).unwrap();
    assert!(
        response.contains(&format!("\"{}\"", error_code::TIMEOUT)),
        "expected a typed timeout error, got {response:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "disconnect took {:?}",
        started.elapsed()
    );

    // An *idle* connection (no partial bytes) is NOT disconnected by
    // the same timeout: the healthy session still answers after the
    // stall window.
    std::thread::sleep(Duration::from_millis(400));
    line.clear();
    writeln!(
        healthy,
        r#"{{"Arrive":{{"id":"vm-2","size":[1,1],"time":1}}}}"#
    )
    .unwrap();
    healthy_reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("Placed"),
        "idle connection was killed: {line}"
    );

    // The stalled request never reached a shard.
    let status = state.status();
    assert_eq!(status.arrivals, 2);
    state.begin_shutdown();
    let _ = TcpStream::connect(&addr);
}

//! Counting-allocator bound on span overhead in the serve loop: the
//! traced path ([`ServeState::handle_spanned`] plus recording into the
//! [`SpanHub`]) performs **no more heap allocations** than the untraced
//! [`ServeState::handle`] on the identical request sequence — i.e. span
//! instrumentation adds zero allocations per request in steady state.
//!
//! This file holds exactly one `#[test]` so the global allocation
//! counter is not polluted by concurrent tests in the same binary.

use dvbp_core::{PolicyKind, RepackPolicy, TimeMode, TraceMode};
use dvbp_dimvec::DimVec;
use dvbp_obs::{Span, SyncPolicy};
use dvbp_serve::protocol::{Request, Response};
use dvbp_serve::router::RouterKind;
use dvbp_serve::server::ServeState;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; only adds a counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn fresh_state() -> ServeState<Vec<u8>> {
    ServeState::in_memory(
        &DimVec::from_slice(&[100, 100]),
        &PolicyKind::FirstFit,
        RepackPolicy::DrainOnDepart { k: 2 },
        2,
        RouterKind::Hash,
        TraceMode::CostOnly,
        TimeMode::Clamp,
        SyncPolicy::PerEvent,
        None,
    )
    .unwrap()
}

/// One round of requests: `n` arrivals then `n` departures, ids unique
/// per `(round, i)` so repeated rounds keep mutating fresh state.
fn round_requests(round: u64, n: u64) -> Vec<Request> {
    let mut reqs = Vec::new();
    for i in 0..n {
        reqs.push(Request::Arrive {
            id: format!("r{round}-{i}"),
            size: vec![2, 3],
            time: round * 2 * n + i,
        });
    }
    for i in 0..n {
        reqs.push(Request::Depart {
            id: format!("r{round}-{i}"),
            time: round * 2 * n + n + i,
        });
    }
    reqs
}

#[test]
fn span_instrumentation_adds_no_per_request_allocations() {
    const N: u64 = 64;
    const ROUNDS: u64 = 5;
    let plain = fresh_state();
    let traced = fresh_state();

    // Warm both states (arena growth, WAL vector growth, router
    // directory) before counting.
    for req in round_requests(1_000, N) {
        assert!(!matches!(plain.handle(&req), Response::Error { .. }));
        let mut span = Span::begin();
        let (resp, shard) = traced.handle_spanned(&req, &mut span);
        assert!(!matches!(resp, Response::Error { .. }));
        traced.span_hub().record(&span.finish(shard, true));
    }

    // Identical request sequences; the minimum over rounds discounts
    // harness housekeeping noise and amortized container growth.
    let mut plain_min = usize::MAX;
    let mut traced_min = usize::MAX;
    for round in 0..ROUNDS {
        let reqs = round_requests(round, N);

        let before = ALLOCS.load(Ordering::Relaxed);
        for req in &reqs {
            assert!(!matches!(plain.handle(req), Response::Error { .. }));
        }
        plain_min = plain_min.min(ALLOCS.load(Ordering::Relaxed) - before);

        let before = ALLOCS.load(Ordering::Relaxed);
        for req in &reqs {
            let mut span = Span::begin();
            let (resp, shard) = traced.handle_spanned(req, &mut span);
            assert!(!matches!(resp, Response::Error { .. }));
            traced.span_hub().record(&span.finish(shard, true));
        }
        traced_min = traced_min.min(ALLOCS.load(Ordering::Relaxed) - before);
    }

    // Tracing 128 requests may not cost even one extra allocation: any
    // per-request span allocation would show up as >= 2 * N here.
    assert!(
        traced_min <= plain_min,
        "traced path allocated more than untraced: {traced_min} vs {plain_min} \
         over {} requests",
        2 * N
    );
}

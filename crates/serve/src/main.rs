//! `dvbp-serve` — sharded online dispatch service with WAL durability.
//!
//! ```text
//! dvbp-serve serve --policy FirstFit --shards 4 --wal wal/ [--addr HOST:PORT]
//! dvbp-serve drive --trace instance.json [--addr HOST:PORT] [--throttle-ms N] [--shutdown]
//! dvbp-serve query [--addr HOST:PORT]
//! ```
//!
//! `serve` boots (recovering any existing WAL — one "recovered" line
//! per shard) and accepts NDJSON requests plus the HTTP operator routes
//! on one port. `drive` replays an instance trace file against a
//! running service in canonical timeline order; re-driving after a
//! crash resumes idempotently. `query` prints the `/status` JSON.

use dvbp_core::{PolicyKind, RepackPolicy, TimeMode, TraceMode};
use dvbp_dimvec::DimVec;
use dvbp_obs::SyncPolicy;
use dvbp_serve::router::RouterKind;
use dvbp_serve::server::{serve, ServeState, DEFAULT_READ_TIMEOUT_MS};
use dvbp_serve::{client, Client, PortfolioConfig};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
dvbp-serve — sharded online DVBP dispatch service with WAL durability

USAGE:
  dvbp-serve serve [--addr HOST:PORT] [--policy NAME] [--shards N]
                   [--router hash|round-robin|least-loaded]
                   [--repack none|drain:K|defrag:BUDGET:PERIOD]
                   [--portfolio paper|K1,K2,...]
                   [--meta static|best-of[:WINDOW]|switch[:THRESHOLD_PCT]]
                   [--wal DIR] [--sync per-event|batch:N|on-close]
                   [--time-mode strict|clamp] [--cap C1,C2,...]
  dvbp-serve drive [--addr HOST:PORT]
                   (--trace FILE.json
                    | --stream FILE --format azure|google|csv
                      [--cap C1,C2,...] [--dirty reject|clamp]
                      [--ticks-per-day N])
                   [--throttle-ms MS] [--shutdown]
  dvbp-serve query [--addr HOST:PORT]
  dvbp-serve spans [--addr HOST:PORT] [--recent N]

  --addr        bind/connect address (default 127.0.0.1:7411; port 0 = ephemeral)
  --policy      packing policy (default FirstFit); clairvoyant kinds rejected
  --shards      independent engine shards (default 1)
  --router      id -> shard strategy (default hash)
  --repack      per-shard repacking: none (default), drain:K migrates up to K
                items off a departure's bin, defrag:B:P spends migration
                budget B every P bin closes; all moves are journaled
  --portfolio   shadow-simulate candidate policies next to each shard:
                'paper' (the seven-algorithm suite) or a comma-separated
                list of policy spellings; scoreboard at /metrics
                (dvbp_shadow_cr) and /status
  --meta        with --portfolio: live-policy switching at bin-close
                boundaries — static (default; never switch), best-of:W
                adopts the cheapest shadow every W closes, switch:T
                switches when the live policy trails the best shadow by
                more than T percent (hysteresis-guarded); every switch is
                journaled and replays verbatim on recovery
  --wal         write-ahead-log directory; omit for a non-durable in-memory run
  --sync        WAL durability per accepted operation (default per-event)
  --time-mode   strict rejects out-of-order timestamps; clamp pulls them forward
  --cap         per-dimension bin capacity (default 100,100)
  --slow-us     slow-request threshold in microseconds for the flight
                recorder's keep-ring (default 1000; 0 disables)
  --read-timeout-ms  disconnect a connection stalled mid-request after
                this many ms (default 10000; 0 disables)
  --recent      with spans: recent rows to print (default 20)
  --trace       instance trace file (dvbp JSON format) to replay
  --stream      cluster trace file streamed in constant memory
  --format      with --stream: azure | google | csv (native)
  --dirty       with --stream: reject (default) or clamp dirty rows
  --ticks-per-day  with --stream --format azure: ticks per day (default 288)
  --throttle-ms pause between driven operations (widens crash windows in CI)
  --shutdown    send Shutdown after driving

PROTOCOL (one JSON value per line over TCP):
  {\"Arrive\":{\"id\":\"vm-1\",\"size\":[2,3],\"time\":0}}
  {\"Depart\":{\"id\":\"vm-1\",\"time\":5}}
  \"Query\"  |  \"Shutdown\"
HTTP on the same port: /healthz, /status, /metrics, /spans, POST /shutdown";

const DEFAULT_ADDR: &str = "127.0.0.1:7411";

fn flag(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse<T: FromStr>(args: &[String], key: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flag(args, key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("{key} {v}: {e}")),
    }
}

fn parse_capacity(spec: &str) -> Result<DimVec, String> {
    let units = spec
        .split(',')
        .map(|c| {
            c.trim()
                .parse::<u64>()
                .map_err(|e| format!("--cap {c}: {e}"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    if units.is_empty() || units.contains(&0) {
        return Err(format!("--cap {spec}: need positive units per dimension"));
    }
    Ok(DimVec::from_slice(&units))
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let addr = parse(args, "--addr", DEFAULT_ADDR.to_string())?;
    let policy = PolicyKind::from_str(&parse(args, "--policy", "FirstFit".to_string())?)
        .map_err(|e| e.to_string())?;
    let shards: usize = parse(args, "--shards", 1usize)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let router: RouterKind = parse(args, "--router", RouterKind::Hash)?;
    let repack: RepackPolicy = parse(args, "--repack", RepackPolicy::NoRepack)?;
    let sync: SyncPolicy = parse(args, "--sync", SyncPolicy::PerEvent)?;
    let time_mode: TimeMode = parse(args, "--time-mode", TimeMode::Strict)?;
    let capacity = parse_capacity(&parse(args, "--cap", "100,100".to_string())?)?;
    let slow_us: u64 = parse(args, "--slow-us", 1_000u64)?;
    let read_timeout_ms: u64 = parse(args, "--read-timeout-ms", DEFAULT_READ_TIMEOUT_MS)?;
    let portfolio = match flag(args, "--portfolio") {
        Some(spec) => {
            let candidates =
                dvbp_portfolio::parse_candidates(&spec).map_err(|e| format!("--portfolio: {e}"))?;
            let meta: dvbp_portfolio::MetaPolicy =
                parse(args, "--meta", dvbp_portfolio::MetaPolicy::Static)?;
            Some(PortfolioConfig { candidates, meta })
        }
        None => {
            if flag(args, "--meta").is_some() {
                return Err("--meta requires --portfolio".into());
            }
            None
        }
    };

    let listener = TcpListener::bind(addr.as_str()).map_err(|e| format!("binding {addr}: {e}"))?;
    let bound = listener.local_addr().map_err(|e| e.to_string())?;

    // The service journals in CostOnly: bit-identical placement to a
    // Full run, without unbounded trace growth in a long-lived process.
    let banner = |recovered: u64| {
        let meta = portfolio.as_ref().map_or_else(
            || "off".to_string(),
            |cfg| {
                format!(
                    "{} over {} shadow(s)",
                    cfg.meta.name(),
                    cfg.candidates.len()
                )
            },
        );
        println!(
            "dvbp-serve: {} x{shards} ({} router, repack {}, portfolio {meta}) on {bound}, \
             {recovered} recovered event(s)",
            policy.name(),
            router.name(),
            repack.name(),
        );
    };
    match flag(args, "--wal") {
        Some(dir) => {
            let (state, reports) = ServeState::open(
                &PathBuf::from(&dir),
                &capacity,
                &policy,
                repack,
                shards,
                router,
                TraceMode::CostOnly,
                time_mode,
                sync,
                portfolio.as_ref(),
            )
            .map_err(|e| format!("opening WAL under {dir}: {e}"))?;
            for report in &reports {
                println!("dvbp-serve: {report}");
            }
            banner(reports.iter().map(|r| r.events_applied).sum());
            state.span_hub().set_slow_threshold_ns(slow_us * 1_000);
            state.set_read_timeout_ms(read_timeout_ms);
            serve(&Arc::new(state), &listener).map_err(|e| e.to_string())?;
        }
        None => {
            let state = ServeState::in_memory(
                &capacity,
                &policy,
                repack,
                shards,
                router,
                TraceMode::CostOnly,
                time_mode,
                sync,
                portfolio.as_ref(),
            )
            .map_err(|e| e.to_string())?;
            println!("dvbp-serve: no --wal given; journaling to memory (no durability)");
            banner(0);
            state.span_hub().set_slow_threshold_ns(slow_us * 1_000);
            state.set_read_timeout_ms(read_timeout_ms);
            serve(&Arc::new(state), &listener).map_err(|e| e.to_string())?;
        }
    }
    println!("dvbp-serve: stopped");
    Ok(())
}

fn cmd_drive(args: &[String]) -> Result<(), String> {
    let addr = parse(args, "--addr", DEFAULT_ADDR.to_string())?;
    let throttle = match parse(args, "--throttle-ms", 0u64)? {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    let mut client = Client::connect(&addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    let (label, report) = match (flag(args, "--trace"), flag(args, "--stream")) {
        (Some(_), Some(_)) => {
            return Err("--trace and --stream are mutually exclusive".into());
        }
        (Some(trace), None) => {
            let instance = client::load_instance(&PathBuf::from(&trace))?;
            let report = client
                .drive_instance(&instance, throttle)
                .map_err(|e| format!("driving {trace}: {e}"))?;
            (trace, report)
        }
        (None, Some(stream)) => {
            let format: dvbp_traces::TraceFormat = flag(args, "--format")
                .ok_or("--stream requires --format azure|google|csv")?
                .parse()?;
            let options = dvbp_traces::OpenOptions {
                capacity: match flag(args, "--cap") {
                    None => None,
                    Some(spec) => Some(parse_capacity(&spec)?),
                },
                ticks_per_day: parse(args, "--ticks-per-day", 288u64)?,
                dirty: parse(args, "--dirty", dvbp_traces::DirtyPolicy::Reject)?,
            };
            let mut source = format
                .open_path(&PathBuf::from(&stream), &options)
                .map_err(|e| format!("{stream}: {e}"))?;
            let report = client
                .drive_source(&mut *source, throttle)
                .map_err(|e| format!("driving {stream}: {e}"))?;
            (stream, report)
        }
        (None, None) => {
            return Err("drive needs --trace FILE.json or --stream FILE --format ...".into());
        }
    };
    println!(
        "dvbp-serve: drove {label}: {} placed, {} departed, {} skipped, {} error(s)",
        report.placed, report.departed, report.skipped, report.errors,
    );
    if args.iter().any(|a| a == "--shutdown") {
        client.shutdown().map_err(|e| e.to_string())?;
    }
    if report.errors > 0 {
        return Err(format!("{} operation(s) rejected", report.errors));
    }
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let addr = parse(args, "--addr", DEFAULT_ADDR.to_string())?;
    let mut client = Client::connect(&addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    let status = client.query().map_err(|e| e.to_string())?;
    println!(
        "{}",
        serde_json::to_string(&status).map_err(|e| e.to_string())?
    );
    Ok(())
}

fn cmd_spans(args: &[String]) -> Result<(), String> {
    let addr = parse(args, "--addr", DEFAULT_ADDR.to_string())?;
    let recent: usize = parse(args, "--recent", 20usize)?;
    let jsonl =
        dvbp_serve::http_get(&addr, "/spans").map_err(|e| format!("fetching {addr}/spans: {e}"))?;
    print!("{}", dvbp_serve::render_spans_table(&jsonl, recent));
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = match args[0].as_str() {
        "serve" => cmd_serve(&args[1..]),
        "drive" => cmd_drive(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "spans" => cmd_spans(&args[1..]),
        other => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

//! The dispatch service: shard set, request handling, and the TCP
//! front end.
//!
//! One listening port speaks **two** protocols, distinguished by the
//! first line of each connection (the same hand-rolled discipline as
//! `dvbp-monitor` — no HTTP library):
//!
//! * Lines starting with an HTTP method (`GET` / `POST` / `HEAD`) get
//!   the operator surface: `/healthz`, `/status` (the
//!   [`ServeStatus`] JSON), `/metrics` (Prometheus text for
//!   `dvbp-monitor --scrape`), and `POST /shutdown`.
//! * Anything else is treated as a newline-delimited JSON session: one
//!   [`Request`] per line, one [`Response`] per line, until EOF or
//!   `Shutdown`.
//!
//! Handling is thread-per-connection; each shard sits behind its own
//! mutex, so requests for different shards proceed in parallel while
//! the router itself stays lock-free on the hash path.

use crate::protocol::{error_code, Request, Response, ServeStatus};
use crate::router::{Router, RouterKind};
use crate::shard::{PortfolioConfig, Shard, ShardError};
use crate::spans::{write_build_info, SpanHub};
use crate::wal::{open_shard, RecoveryReport, WalOpenError};
use dvbp_core::{LiveError, PolicyKind, RepackPolicy, TimeMode, TraceMode};
use dvbp_dimvec::DimVec;
use dvbp_obs::{OpKind, Span, SpanRecord, StableWrite, Stage, SyncPolicy};
use dvbp_sim::Time;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default per-connection read timeout: long enough for any interactive
/// client, short enough that a stalled partial line cannot pin a
/// handler thread indefinitely.
pub const DEFAULT_READ_TIMEOUT_MS: u64 = 10_000;

/// The full service state: shards, router, span sink, and shutdown
/// latch.
pub struct ServeState<W: StableWrite> {
    shards: Vec<Mutex<Shard<W>>>,
    router: Router,
    policy: PolicyKind,
    repack: RepackPolicy,
    portfolio: Option<PortfolioConfig>,
    spans: SpanHub,
    /// Per-connection socket read timeout (ms; 0 disables).
    read_timeout_ms: AtomicU64,
    shutting_down: AtomicBool,
}

impl ServeState<Vec<u8>> {
    /// A service over in-memory WALs (tests, benches, conformance).
    ///
    /// # Errors
    ///
    /// [`ShardError`] for clairvoyant policy kinds.
    #[allow(clippy::too_many_arguments)] // the shard's full configuration surface
    pub fn in_memory(
        capacity: &DimVec,
        kind: &PolicyKind,
        repack: RepackPolicy,
        shards: usize,
        router: RouterKind,
        trace: TraceMode,
        time_mode: TimeMode,
        sync: SyncPolicy,
        portfolio: Option<&PortfolioConfig>,
    ) -> Result<Self, ShardError> {
        let shard_states = (0..shards)
            .map(|_| {
                Shard::create(
                    capacity.clone(),
                    kind,
                    repack,
                    trace,
                    time_mode,
                    Vec::new(),
                    sync,
                    portfolio,
                )
                .map(Mutex::new)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ServeState {
            shards: shard_states,
            router: Router::new(router, shards),
            policy: kind.clone(),
            repack,
            portfolio: portfolio.cloned(),
            spans: SpanHub::new(shards),
            read_timeout_ms: AtomicU64::new(DEFAULT_READ_TIMEOUT_MS),
            shutting_down: AtomicBool::new(false),
        })
    }

    /// Consumes the service and returns each shard's state (the
    /// conformance harness snapshots engines and WAL bytes).
    #[must_use]
    pub fn into_shards(self) -> Vec<Shard<Vec<u8>>> {
        self.shards
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect()
    }
}

impl ServeState<BufWriter<File>> {
    /// Opens (recovering if present) a file-backed service under
    /// `wal_dir` and returns it with one [`RecoveryReport`] per shard.
    ///
    /// # Errors
    ///
    /// [`WalOpenError`] if any shard's log cannot be recovered.
    #[allow(clippy::too_many_arguments)] // in_memory's surface plus the WAL dir
    pub fn open(
        wal_dir: &Path,
        capacity: &DimVec,
        kind: &PolicyKind,
        repack: RepackPolicy,
        shards: usize,
        router: RouterKind,
        trace: TraceMode,
        time_mode: TimeMode,
        sync: SyncPolicy,
        portfolio: Option<&PortfolioConfig>,
    ) -> Result<(Self, Vec<RecoveryReport>), WalOpenError> {
        let mut shard_states = Vec::with_capacity(shards);
        let mut reports = Vec::with_capacity(shards);
        for s in 0..shards {
            let (shard, report) = open_shard(
                wal_dir, s, capacity, kind, repack, trace, time_mode, sync, portfolio,
            )?;
            shard_states.push(shard);
            reports.push(report);
        }
        let state = ServeState {
            router: Router::new(router, shards),
            policy: kind.clone(),
            repack,
            portfolio: portfolio.cloned(),
            spans: SpanHub::new(shards),
            read_timeout_ms: AtomicU64::new(DEFAULT_READ_TIMEOUT_MS),
            shutting_down: AtomicBool::new(false),
            shards: Vec::new(),
        };
        // Rebuild the routing directory from the recovered id tables.
        state.router.seed(
            shard_states
                .iter()
                .enumerate()
                .flat_map(|(s, shard)| shard.ids().keys().map(move |id| (id.as_str(), s))),
        );
        let state = ServeState {
            shards: shard_states.into_iter().map(Mutex::new).collect(),
            ..state
        };
        Ok((state, reports))
    }
}

impl<W: StableWrite> ServeState<W> {
    /// Handles one request against the shard set. Never panics on bad
    /// input — every rejection is a [`Response::Error`].
    pub fn handle(&self, req: &Request) -> Response {
        if self.is_shutting_down() && !matches!(req, Request::Query) {
            return Response::Error {
                code: error_code::SHUTTING_DOWN.into(),
                message: "service is shutting down".into(),
            };
        }
        match req {
            Request::Arrive { id, size, time } => self.arrive(id, size, *time),
            Request::Depart { id, time } => self.depart(id, *time),
            Request::Query => Response::Status(self.status()),
            Request::Shutdown => {
                self.begin_shutdown();
                Response::ShuttingDown
            }
        }
    }

    /// [`handle`](ServeState::handle) with request-lifecycle tracing:
    /// the caller owns a started [`Span`] (with `recv`/`parse` already
    /// marked), this method charges `route`, `lock_wait`, `dispatch`,
    /// `repack`, `wal_append`, and `wal_sync`, and returns the response
    /// plus the owning shard ([`SpanRecord::SERVICE`] for requests no
    /// shard handled). The caller marks `reply` after writing and
    /// records the finished span into [`ServeState::span_hub`].
    /// Decisions, WAL bytes, and errors are identical to the untraced
    /// path.
    pub fn handle_spanned(&self, req: &Request, span: &mut Span) -> (Response, u32) {
        if self.is_shutting_down() && !matches!(req, Request::Query) {
            return (
                Response::Error {
                    code: error_code::SHUTTING_DOWN.into(),
                    message: "service is shutting down".into(),
                },
                SpanRecord::SERVICE,
            );
        }
        match req {
            Request::Arrive { id, size, time } => {
                span.set_op(OpKind::Arrive, *time);
                self.arrive_spanned(id, size, *time, span)
            }
            Request::Depart { id, time } => {
                span.set_op(OpKind::Depart, *time);
                self.depart_spanned(id, *time, span)
            }
            Request::Query => {
                span.set_op(OpKind::Query, 0);
                let status = self.status();
                span.mark(Stage::Dispatch);
                (Response::Status(status), SpanRecord::SERVICE)
            }
            Request::Shutdown => {
                span.set_op(OpKind::Query, 0);
                self.begin_shutdown();
                span.mark(Stage::Dispatch);
                (Response::ShuttingDown, SpanRecord::SERVICE)
            }
        }
    }

    fn arrive(&self, id: &str, size: &[u64], time: Time) -> Response {
        let shard_idx = self
            .router
            .route_arrival(id, |s| self.shards[s].lock().unwrap().live().load_l1());
        let mut shard = self.shards[shard_idx].lock().unwrap();
        match shard.arrive(id, DimVec::from_slice(size), time) {
            Ok(placed) => {
                drop(shard);
                self.router.record(id, shard_idx);
                Response::Placed {
                    id: id.to_string(),
                    shard: shard_idx,
                    item: placed.item,
                    bin: placed.bin.0,
                    opened_new: placed.opened_new,
                    time: placed.time,
                }
            }
            Err(e) => error_response(&e),
        }
    }

    fn arrive_spanned(
        &self,
        id: &str,
        size: &[u64],
        time: Time,
        span: &mut Span,
    ) -> (Response, u32) {
        let shard_idx = self
            .router
            .route_arrival(id, |s| self.shards[s].lock().unwrap().live().load_l1());
        span.mark(Stage::Route);
        let mut shard = self.shards[shard_idx].lock().unwrap();
        span.mark(Stage::LockWait);
        let response = match shard.arrive_traced(id, DimVec::from_slice(size), time, span) {
            Ok(placed) => {
                drop(shard);
                self.router.record(id, shard_idx);
                Response::Placed {
                    id: id.to_string(),
                    shard: shard_idx,
                    item: placed.item,
                    bin: placed.bin.0,
                    opened_new: placed.opened_new,
                    time: placed.time,
                }
            }
            Err(e) => error_response(&e),
        };
        (response, shard_idx as u32)
    }

    fn depart(&self, id: &str, time: Time) -> Response {
        let Some(shard_idx) = self.router.route_departure(id) else {
            return Response::Error {
                code: error_code::UNKNOWN_ID.into(),
                message: format!("unknown id {id:?}"),
            };
        };
        let mut shard = self.shards[shard_idx].lock().unwrap();
        match shard.depart(id, time) {
            Ok(dep) => Response::Departed {
                id: id.to_string(),
                shard: shard_idx,
                item: dep.item,
                bin: dep.bin.0,
                closed: dep.closed,
                migrations: dep.migrations.len() as u64,
                time: dep.time,
            },
            Err(e) => error_response(&e),
        }
    }

    fn depart_spanned(&self, id: &str, time: Time, span: &mut Span) -> (Response, u32) {
        let Some(shard_idx) = self.router.route_departure(id) else {
            span.mark(Stage::Route);
            return (
                Response::Error {
                    code: error_code::UNKNOWN_ID.into(),
                    message: format!("unknown id {id:?}"),
                },
                SpanRecord::SERVICE,
            );
        };
        span.mark(Stage::Route);
        let mut shard = self.shards[shard_idx].lock().unwrap();
        span.mark(Stage::LockWait);
        let response = match shard.depart_traced(id, time, span) {
            Ok(dep) => Response::Departed {
                id: id.to_string(),
                shard: shard_idx,
                item: dep.item,
                bin: dep.bin.0,
                closed: dep.closed,
                migrations: dep.migrations.len() as u64,
                time: dep.time,
            },
            Err(e) => error_response(&e),
        };
        (response, shard_idx as u32)
    }

    /// The service-wide snapshot.
    #[must_use]
    pub fn status(&self) -> ServeStatus {
        let per_shard: Vec<_> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let shard = m.lock().unwrap();
                (shard.status(i), shard.recovered_events())
            })
            .collect();
        let mut usage: u128 = 0;
        let mut status = ServeStatus {
            policy: self.policy.name(),
            meta: self
                .portfolio
                .as_ref()
                .map_or_else(|| "off".to_string(), |cfg| cfg.meta.name()),
            policy_switches: 0,
            repack: self.repack.name(),
            router: self.router.kind().name().to_string(),
            shards: self.shards.len(),
            arrivals: 0,
            departures: 0,
            active_items: 0,
            open_bins: 0,
            bins_opened: 0,
            migrations: 0,
            migration_cost: 0,
            usage_time: String::new(),
            wal_lines: 0,
            recovered_events: 0,
            last_time: 0,
            shutting_down: self.is_shutting_down(),
            per_shard: Vec::with_capacity(per_shard.len()),
        };
        for (s, recovered) in per_shard {
            status.arrivals += s.arrivals;
            status.policy_switches += s.policy_switches;
            status.departures += s.departures;
            status.active_items += s.active_items;
            status.open_bins += s.open_bins;
            status.bins_opened += s.bins_opened;
            status.migrations += s.migrations;
            status.migration_cost += s.migration_cost;
            status.wal_lines += s.wal_lines;
            status.recovered_events += recovered;
            status.last_time = status.last_time.max(s.last_time);
            usage += s.usage_time.parse::<u128>().unwrap_or(0);
            status.per_shard.push(s);
        }
        status.usage_time = usage.to_string();
        status
    }

    /// Prometheus text exposition (scraped by `dvbp-monitor --scrape`).
    #[must_use]
    pub fn metrics_text(&self) -> String {
        let status = self.status();
        let mut out = String::new();
        let totals: [(&str, &str, String); 9] = [
            ("arrivals_total", "counter", status.arrivals.to_string()),
            ("departures_total", "counter", status.departures.to_string()),
            ("active_items", "gauge", status.active_items.to_string()),
            ("open_bins", "gauge", status.open_bins.to_string()),
            (
                "bins_opened_total",
                "counter",
                status.bins_opened.to_string(),
            ),
            ("migrations_total", "counter", status.migrations.to_string()),
            (
                "migration_cost_total",
                "counter",
                status.migration_cost.to_string(),
            ),
            ("usage_time_total", "counter", status.usage_time.clone()),
            (
                "policy_switches_total",
                "counter",
                status.policy_switches.to_string(),
            ),
        ];
        for (name, kind, value) in &totals {
            out.push_str(&format!(
                "# TYPE dvbp_serve_{name} {kind}\ndvbp_serve_{name} {value}\n"
            ));
        }
        out.push_str(&format!(
            "# TYPE dvbp_serve_repack_info gauge\ndvbp_serve_repack_info{{repack=\"{}\"}} 1\n",
            status.repack
        ));
        if self.portfolio.is_some() {
            out.push_str(&format!(
                "# TYPE dvbp_serve_meta_info gauge\ndvbp_serve_meta_info{{meta=\"{}\"}} 1\n",
                status.meta
            ));
            // Shadow scoreboard. The aggregate series divides summed
            // shadow costs by the summed lower-bound anchor across
            // shards; both start at zero, so cold start reads 1.0 (never
            // NaN or +Inf — Prometheus would accept them, dashboards
            // would not forgive them).
            out.push_str("# TYPE dvbp_shadow_cr gauge\n");
            let mut agg: Vec<(&str, u128, u128)> = Vec::new();
            for s in &status.per_shard {
                for sh in &s.shadows {
                    let cost = sh.cost.parse::<u128>().unwrap_or(0);
                    let lb = sh.lb.parse::<u128>().unwrap_or(0);
                    match agg.iter_mut().find(|(p, _, _)| *p == sh.policy) {
                        Some(e) => {
                            e.1 += cost;
                            e.2 += lb;
                        }
                        None => agg.push((&sh.policy, cost, lb)),
                    }
                }
            }
            for (policy, cost, lb) in &agg {
                let cr = if *lb == 0 {
                    1.0
                } else {
                    *cost as f64 / *lb as f64
                };
                out.push_str(&format!("dvbp_shadow_cr{{policy=\"{policy}\"}} {cr:.6}\n"));
            }
            for s in &status.per_shard {
                for sh in &s.shadows {
                    out.push_str(&format!(
                        "dvbp_shadow_cr{{shard=\"{}\",policy=\"{}\"}} {:.6}\n",
                        s.shard,
                        sh.policy,
                        sh.running_cr()
                    ));
                }
            }
        }
        for s in &status.per_shard {
            for (name, value) in [
                ("arrivals_total", s.arrivals.to_string()),
                ("departures_total", s.departures.to_string()),
                ("active_items", s.active_items.to_string()),
                ("open_bins", s.open_bins.to_string()),
                ("migrations_total", s.migrations.to_string()),
                ("usage_time_total", s.usage_time.clone()),
                ("policy_switches_total", s.policy_switches.to_string()),
            ] {
                out.push_str(&format!(
                    "dvbp_serve_shard_{name}{{shard=\"{}\"}} {value}\n",
                    s.shard
                ));
            }
        }
        write_build_info(
            &mut out,
            env!("CARGO_PKG_VERSION"),
            dvbp_core::enabled_features(),
        );
        self.spans.render_metrics(&mut out);
        out
    }

    /// The span sink: per-stage latency histograms plus the flight
    /// recorder behind `GET /spans`.
    #[must_use]
    pub fn span_hub(&self) -> &SpanHub {
        &self.spans
    }

    /// Sets the per-connection socket read timeout (0 disables). Applies
    /// to connections accepted after the call.
    pub fn set_read_timeout_ms(&self, ms: u64) {
        self.read_timeout_ms.store(ms, Ordering::Relaxed);
    }

    /// The current per-connection read timeout in milliseconds.
    #[must_use]
    pub fn read_timeout_ms(&self) -> u64 {
        self.read_timeout_ms.load(Ordering::Relaxed)
    }

    /// Latches shutdown and persists every shard's WAL tail.
    pub fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        for shard in &self.shards {
            shard.lock().unwrap().persist();
        }
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }
}

fn error_response(e: &ShardError) -> Response {
    let code = match e {
        ShardError::DuplicateId { .. } => error_code::DUPLICATE_ID,
        ShardError::UnknownId { .. } => error_code::UNKNOWN_ID,
        ShardError::AlreadyDeparted { .. } => error_code::ALREADY_DEPARTED,
        ShardError::Live(LiveError::OutOfOrder { .. } | LiveError::EqualTickOrder { .. }) => {
            error_code::OUT_OF_ORDER
        }
        ShardError::Live(_) => error_code::INVALID_ITEM,
        ShardError::Wal { .. } => error_code::WAL,
        ShardError::Portfolio { .. } => error_code::PORTFOLIO,
    };
    Response::Error {
        code: code.into(),
        message: e.to_string(),
    }
}

/// Runs the accept loop until a `Shutdown` request (or `POST
/// /shutdown`) arrives. Connections are handled on their own threads.
///
/// # Errors
///
/// Propagates listener failures; per-connection I/O errors only end
/// that connection.
pub fn serve<W: StableWrite + Send + 'static>(
    state: &Arc<ServeState<W>>,
    listener: &TcpListener,
) -> io::Result<()> {
    let local = listener.local_addr()?;
    for stream in listener.incoming() {
        if state.is_shutting_down() {
            break;
        }
        let stream = stream?;
        // Request/response ping-pong over NDJSON: Nagle batching would
        // stall every round trip on the peer's delayed-ACK timer.
        let _ = stream.set_nodelay(true);
        let state = Arc::clone(state);
        std::thread::spawn(move || {
            if handle_connection(&state, stream) && !state.is_shutting_down() {
                state.begin_shutdown();
            }
            if state.is_shutting_down() {
                // Nudge the accept loop out of its blocking accept.
                let _ = TcpStream::connect(local);
            }
        });
    }
    Ok(())
}

/// Outcome of one guarded line read.
enum LineRead {
    /// A complete line landed in the buffer.
    Line,
    /// Clean EOF (or a hard I/O error) — end the connection silently.
    Closed,
    /// The socket timed out with a *partial* line buffered: the peer
    /// started a request and stalled mid-line.
    Stalled,
}

/// Reads one line under the socket's read timeout. A timeout with
/// nothing buffered is a benign idle keep-alive connection and the read
/// resumes; a timeout after partial bytes is a stall
/// ([`LineRead::Stalled`]) — `BufRead::read_line` appends whatever was
/// read before the error, so `line` being non-empty distinguishes the
/// two.
fn read_line_guarded(reader: &mut impl BufRead, line: &mut String) -> LineRead {
    let start_len = line.len();
    loop {
        match reader.read_line(line) {
            Ok(0) => return LineRead::Closed,
            Ok(_) => return LineRead::Line,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if line.len() == start_len {
                    continue; // idle between requests: keep waiting
                }
                return LineRead::Stalled;
            }
            Err(_) => return LineRead::Closed,
        }
    }
}

/// Tells a stalled client why it is being disconnected (best-effort —
/// a peer that stopped mid-line may not read it either).
fn write_timeout_error(writer: &mut impl Write) {
    let response = Response::Error {
        code: error_code::TIMEOUT.into(),
        message: "read timed out mid-request; disconnecting".into(),
    };
    if let Ok(mut out) = serde_json::to_string(&response) {
        out.push('\n');
        let _ = writer.write_all(out.as_bytes());
        let _ = writer.flush();
    }
}

/// Handles one connection; returns `true` if it requested shutdown.
fn handle_connection<W: StableWrite>(state: &ServeState<W>, stream: TcpStream) -> bool {
    let timeout_ms = state.read_timeout_ms();
    if timeout_ms > 0 {
        // A stalled partial line must not pin this thread forever; the
        // guarded read loop keeps genuinely idle connections alive.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(timeout_ms)));
    }
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return false,
    });
    let mut writer = stream;
    let mut first = String::new();
    match read_line_guarded(&mut reader, &mut first) {
        LineRead::Line => {}
        LineRead::Closed => return false,
        LineRead::Stalled => {
            write_timeout_error(&mut writer);
            return false;
        }
    }
    let verb = first.split_whitespace().next().unwrap_or("");
    if matches!(verb, "GET" | "POST" | "HEAD") {
        return handle_http(state, &mut reader, &mut writer, &first);
    }
    handle_ndjson(state, &mut reader, &mut writer, &first)
}

/// NDJSON session: `first` is the already-read first request line.
/// Every iteration runs under a [`Span`]: `recv` covers the socket
/// read, `parse` the JSON decode, the shard stages are charged inside
/// [`ServeState::handle_spanned`], and `reply` covers the response
/// write; the finished record lands in the hub's histograms and flight
/// recorder.
fn handle_ndjson<W: StableWrite>(
    state: &ServeState<W>,
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    first: &str,
) -> bool {
    let mut line = first.to_string();
    let mut pending = true;
    loop {
        let mut span = Span::begin();
        if !pending {
            line.clear();
            match read_line_guarded(reader, &mut line) {
                LineRead::Line => {}
                LineRead::Closed => return false,
                LineRead::Stalled => {
                    write_timeout_error(writer);
                    return false;
                }
            }
        }
        pending = false;
        span.mark(Stage::Recv);
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let parsed = serde_json::from_str::<Request>(trimmed);
        span.mark(Stage::Parse);
        let (response, shard) = match parsed {
            Ok(req) => state.handle_spanned(&req, &mut span),
            Err(e) => (
                Response::Error {
                    code: error_code::BAD_REQUEST.into(),
                    message: format!("unparseable request: {e}"),
                },
                SpanRecord::SERVICE,
            ),
        };
        let Ok(mut out) = serde_json::to_string(&response) else {
            return false;
        };
        // One write call per line so the payload and its newline
        // never straddle two TCP segments.
        out.push('\n');
        if writer
            .write_all(out.as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            return false;
        }
        span.mark(Stage::Reply);
        let ok = !matches!(response, Response::Error { .. });
        state.spans.record(&span.finish(shard, ok));
        if matches!(response, Response::ShuttingDown) {
            return true;
        }
    }
}

/// Minimal HTTP/1.1 for the operator surface (monitor-compatible).
fn handle_http<W: StableWrite>(
    state: &ServeState<W>,
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    request_line: &str,
) -> bool {
    // Drain headers; requests with bodies are not supported.
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) | Err(_) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("/");
    let mut shutdown = false;
    let (status, content_type, body) = match (method, path) {
        ("GET" | "HEAD", "/healthz") => ("200 OK", "text/plain", "ok\n".to_string()),
        ("GET" | "HEAD", "/status") => (
            "200 OK",
            "application/json",
            serde_json::to_string(&state.status()).unwrap_or_else(|_| "{}".into()),
        ),
        ("GET" | "HEAD", "/metrics") => {
            ("200 OK", "text/plain; version=0.0.4", state.metrics_text())
        }
        ("GET" | "HEAD", "/spans") => ("200 OK", "application/x-ndjson", state.spans.dump_jsonl()),
        ("POST", "/shutdown") => {
            shutdown = true;
            ("200 OK", "text/plain", "shutting down\n".to_string())
        }
        _ => (
            "404 Not Found",
            "text/plain",
            format!("no route for {method} {path}\n"),
        ),
    };
    let _ = write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = writer.flush();
    if shutdown {
        state.begin_shutdown();
    }
    shutdown
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(shards: usize, router: RouterKind) -> ServeState<Vec<u8>> {
        state_with(shards, router, RepackPolicy::NoRepack)
    }

    fn state_with(shards: usize, router: RouterKind, repack: RepackPolicy) -> ServeState<Vec<u8>> {
        ServeState::in_memory(
            &DimVec::from_slice(&[10, 10]),
            &PolicyKind::FirstFit,
            repack,
            shards,
            router,
            TraceMode::Full,
            TimeMode::Strict,
            SyncPolicy::PerEvent,
            None,
        )
        .unwrap()
    }

    fn arrive(id: &str, size: &[u64], time: Time) -> Request {
        Request::Arrive {
            id: id.into(),
            size: size.to_vec(),
            time,
        }
    }

    #[test]
    fn requests_route_and_resolve_across_shards() {
        let s = state(4, RouterKind::Hash);
        let mut shards_hit = std::collections::HashSet::new();
        for i in 0..32 {
            match s.handle(&arrive(&format!("vm-{i}"), &[1, 1], i)) {
                Response::Placed { shard, .. } => {
                    shards_hit.insert(shard);
                }
                other => panic!("expected Placed, got {other:?}"),
            }
        }
        assert!(shards_hit.len() > 1, "hash must spread 32 ids");
        // Departures find their items without any directory.
        for i in 0..32 {
            match s.handle(&Request::Depart {
                id: format!("vm-{i}"),
                time: 100 + i,
            }) {
                Response::Departed { .. } => {}
                other => panic!("expected Departed, got {other:?}"),
            }
        }
        let st = s.status();
        assert_eq!(st.arrivals, 32);
        assert_eq!(st.departures, 32);
        assert_eq!(st.active_items, 0);
        assert_eq!(st.open_bins, 0);
    }

    #[test]
    fn per_tick_ordering_is_per_shard_not_global() {
        // Strict mode is enforced within each shard's own clock; two
        // shards can sit at different ticks.
        let s = state(2, RouterKind::RoundRobin);
        assert!(matches!(
            s.handle(&arrive("a", &[1, 1], 100)),
            Response::Placed { shard: 0, .. }
        ));
        assert!(matches!(
            s.handle(&arrive("b", &[1, 1], 5)),
            Response::Placed { shard: 1, .. }
        ));
        // Shard 0's clock is at 100: an earlier arrival routed there
        // (round-robin cursor wraps back to 0) is out of order...
        match s.handle(&arrive("c", &[1, 1], 50)) {
            Response::Error { code, .. } => assert_eq!(code, error_code::OUT_OF_ORDER),
            other => panic!("expected out-of-order, got {other:?}"),
        }
        // ...while shard 1 (clock at 5) accepts the same tick.
        assert!(matches!(
            s.handle(&arrive("d", &[1, 1], 50)),
            Response::Placed { shard: 1, .. }
        ));
    }

    #[test]
    fn errors_map_to_protocol_codes() {
        let s = state(1, RouterKind::Hash);
        s.handle(&arrive("a", &[1, 1], 0));
        let cases: Vec<(Request, &str)> = vec![
            (arrive("a", &[1, 1], 1), error_code::DUPLICATE_ID),
            (arrive("big", &[11, 1], 1), error_code::INVALID_ITEM),
            (arrive("flat", &[0, 0], 1), error_code::INVALID_ITEM),
            (arrive("skew", &[1], 1), error_code::INVALID_ITEM),
            (
                Request::Depart {
                    id: "ghost".into(),
                    time: 1,
                },
                error_code::UNKNOWN_ID,
            ),
        ];
        for (req, expected) in cases {
            match s.handle(&req) {
                Response::Error { code, .. } => assert_eq!(code, expected, "{req:?}"),
                other => panic!("expected error for {req:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn status_totals_are_sums_of_shard_slices() {
        let s = state(3, RouterKind::RoundRobin);
        for i in 0..9 {
            s.handle(&arrive(&format!("x{i}"), &[2, 2], i));
        }
        s.handle(&Request::Depart {
            id: "x0".into(),
            time: 20,
        });
        let st = s.status();
        assert_eq!(st.per_shard.len(), 3);
        assert_eq!(
            st.arrivals,
            st.per_shard.iter().map(|p| p.arrivals).sum::<u64>()
        );
        assert_eq!(
            st.usage_time.parse::<u128>().unwrap(),
            st.per_shard
                .iter()
                .map(|p| p.usage_time.parse::<u128>().unwrap())
                .sum::<u128>()
        );
        assert_eq!(st.active_items, 8);
    }

    #[test]
    fn shutdown_latches_and_rejects_mutations() {
        let s = state(1, RouterKind::Hash);
        s.handle(&arrive("a", &[1, 1], 0));
        assert!(matches!(
            s.handle(&Request::Shutdown),
            Response::ShuttingDown
        ));
        assert!(s.is_shutting_down());
        assert!(matches!(
            s.handle(&arrive("b", &[1, 1], 1)),
            Response::Error { code, .. } if code == error_code::SHUTTING_DOWN
        ));
        // Queries still work for final-state collection.
        assert!(matches!(s.handle(&Request::Query), Response::Status(_)));
    }

    #[test]
    fn metrics_exposition_has_totals_and_shard_series() {
        let s = state(2, RouterKind::RoundRobin);
        s.handle(&arrive("a", &[1, 1], 0));
        s.handle(&arrive("b", &[1, 1], 0));
        let text = s.metrics_text();
        assert!(text.contains("# TYPE dvbp_serve_arrivals_total counter"));
        assert!(text.contains("dvbp_serve_arrivals_total 2"));
        assert!(text.contains("dvbp_serve_shard_arrivals_total{shard=\"0\"} 1"));
        assert!(text.contains("dvbp_serve_shard_arrivals_total{shard=\"1\"} 1"));
    }

    #[test]
    fn portfolio_service_reports_shadows_and_switches() {
        use dvbp_portfolio::MetaPolicy;
        let cfg = PortfolioConfig {
            candidates: vec![PolicyKind::FirstFit, PolicyKind::NextFit],
            meta: MetaPolicy::BestOf { window: 1 },
        };
        let s = ServeState::in_memory(
            &DimVec::from_slice(&[10]),
            &PolicyKind::NextFit,
            RepackPolicy::NoRepack,
            1,
            RouterKind::Hash,
            TraceMode::CostOnly,
            TimeMode::Strict,
            SyncPolicy::PerEvent,
            Some(&cfg),
        )
        .unwrap();
        s.handle(&arrive("small", &[3], 0));
        s.handle(&arrive("blocker", &[10], 1));
        s.handle(&arrive("tail", &[3], 2));
        s.handle(&Request::Depart {
            id: "blocker".into(),
            time: 3,
        });
        let st = s.status();
        assert_eq!(st.meta, "best-of:1");
        assert_eq!(st.policy_switches, 1);
        assert_eq!(st.per_shard[0].policy, "FirstFit");
        assert_eq!(st.per_shard[0].switch_history.len(), 1);
        assert_eq!(st.per_shard[0].shadows.len(), 2);
        let text = s.metrics_text();
        assert!(text.contains("dvbp_serve_policy_switches_total 1"));
        assert!(text.contains("dvbp_serve_shard_policy_switches_total{shard=\"0\"} 1"));
        assert!(text.contains("dvbp_serve_meta_info{meta=\"best-of:1\"} 1"));
        assert!(text.contains("dvbp_shadow_cr{policy=\"FirstFit\"}"));
        assert!(text.contains("dvbp_shadow_cr{shard=\"0\",policy=\"NextFit\"}"));
        assert!(
            !text.contains("NaN") && !text.contains(" inf"),
            "shadow CRs must stay finite"
        );

        // Without a portfolio, the families are absent and meta is off.
        let plain = state(1, RouterKind::Hash);
        assert_eq!(plain.status().meta, "off");
        let text = plain.metrics_text();
        assert!(!text.contains("dvbp_shadow_cr"));
        assert!(!text.contains("dvbp_serve_meta_info"));
        assert!(text.contains("dvbp_serve_policy_switches_total 0"));
    }

    #[test]
    fn repacking_service_reports_migrations() {
        let s = state_with(1, RouterKind::Hash, RepackPolicy::DrainOnDepart { k: 1 });
        s.handle(&arrive("a", &[7, 7], 0));
        s.handle(&arrive("b", &[7, 7], 1));
        s.handle(&arrive("c", &[2, 2], 2));
        match s.handle(&Request::Depart {
            id: "a".into(),
            time: 3,
        }) {
            Response::Departed {
                closed, migrations, ..
            } => {
                assert!(!closed, "c still occupied a's bin at the tick");
                assert_eq!(migrations, 1, "c drained into b's bin");
            }
            other => panic!("expected Departed, got {other:?}"),
        }
        let st = s.status();
        assert_eq!(st.repack, "drain:1");
        assert_eq!(st.migrations, 1);
        assert_eq!(st.migration_cost, 1);
        assert_eq!(st.open_bins, 1);
        let text = s.metrics_text();
        assert!(text.contains("dvbp_serve_migrations_total 1"));
        assert!(text.contains("dvbp_serve_repack_info{repack=\"drain:1\"} 1"));
        assert!(text.contains("dvbp_serve_shard_migrations_total{shard=\"0\"} 1"));
    }

    #[test]
    fn ndjson_session_over_real_tcp() {
        use std::io::{BufRead, BufReader, Write};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let state = Arc::new(state(2, RouterKind::Hash));
        let srv = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || serve(&state, &listener).unwrap())
        };

        let mut conn = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        for (req, probe) in [
            (
                r#"{"Arrive":{"id":"vm-1","size":[2,3],"time":0}}"#,
                "Placed",
            ),
            (r#"{"Depart":{"id":"vm-1","time":5}}"#, "Departed"),
            (r#""Query""#, "Status"),
            ("not json at all", "bad-request"),
        ] {
            writeln!(conn, "{req}").unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains(probe), "{req} -> {line}");
        }

        // HTTP on the same port, from a second connection.
        let mut http = TcpStream::connect(addr).unwrap();
        write!(http, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut text = String::new();
        BufReader::new(&mut http).read_line(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");

        // Shutdown ends the accept loop.
        writeln!(conn, "\"Shutdown\"").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("ShuttingDown"), "{line}");
        srv.join().unwrap();
        assert!(state.is_shutting_down());
    }
}

//! WAL files on disk: one `shard-NNN.wal` per shard under the service's
//! `--wal` directory.
//!
//! Opening a shard's WAL is the whole crash-recovery cycle in one call:
//! read the file, [`recover`] the
//! acknowledged prefix, **truncate** the file back to that prefix
//! (dropping torn tails and unacknowledged trailing groups), and reopen
//! it in append mode so new groups extend the restored log. A fresh
//! file gets the `RunStart` header instead.

use crate::recovery::{recover, RecoveryError};
use crate::shard::{PortfolioConfig, Shard, ShardError};
use dvbp_core::{PolicyKind, RepackPolicy, TimeMode, TraceMode};
use dvbp_dimvec::DimVec;
use dvbp_obs::{JsonlEmitter, SyncPolicy};
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter};
use std::path::{Path, PathBuf};

/// The WAL file for shard `shard` under `dir`.
#[must_use]
pub fn shard_wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:03}.wal"))
}

/// What [`open_shard`] did to get the shard back: one of these per
/// shard is logged at boot (the "recovered" line CI greps for).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Shard index.
    pub shard: usize,
    /// WAL file path.
    pub path: PathBuf,
    /// Events (lines) replayed, header included; 0 for a fresh WAL.
    pub events_applied: u64,
    /// Complete-line events dropped as unacknowledged trailing work.
    pub dropped_events: u64,
    /// Torn trailing bytes discarded.
    pub torn_bytes: u64,
    /// Whether the file was truncated back to the acknowledged prefix.
    pub truncated: bool,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {}: recovered {} event(s) from {} (dropped {}, torn {} byte(s){})",
            self.shard,
            self.events_applied,
            self.path.display(),
            self.dropped_events,
            self.torn_bytes,
            if self.truncated { ", truncated" } else { "" },
        )
    }
}

/// Why a shard could not be opened.
#[derive(Debug)]
pub enum WalOpenError {
    /// Filesystem failure (read, truncate, open-append, mkdir).
    Io(io::Error),
    /// The log exists but cannot be recovered.
    Recovery(RecoveryError),
    /// Fresh-shard construction failed (clairvoyant policy, header
    /// write).
    Shard(ShardError),
}

impl std::fmt::Display for WalOpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalOpenError::Io(e) => write!(f, "WAL I/O: {e}"),
            WalOpenError::Recovery(e) => write!(f, "{e}"),
            WalOpenError::Shard(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WalOpenError {}

impl From<io::Error> for WalOpenError {
    fn from(e: io::Error) -> Self {
        WalOpenError::Io(e)
    }
}

/// Opens (recovering if present) shard `shard`'s WAL under `dir` and
/// returns the ready-to-serve shard plus the recovery report.
///
/// # Errors
///
/// See [`WalOpenError`]; the service must not boot a shard it cannot
/// open.
#[allow(clippy::too_many_arguments)] // the shard's full configuration surface
pub fn open_shard(
    dir: &Path,
    shard: usize,
    capacity: &DimVec,
    kind: &PolicyKind,
    repack: RepackPolicy,
    trace: TraceMode,
    time_mode: TimeMode,
    sync: SyncPolicy,
    portfolio: Option<&PortfolioConfig>,
) -> Result<(Shard<BufWriter<File>>, RecoveryReport), WalOpenError> {
    std::fs::create_dir_all(dir)?;
    let path = shard_wal_path(dir, shard);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    let rec = recover(&bytes, capacity, kind, repack, trace, time_mode, portfolio)
        .map_err(WalOpenError::Recovery)?;

    let truncated = rec.valid_bytes < bytes.len() as u64;
    if truncated {
        // Cut the file back to the acknowledged prefix before anything
        // is appended; set_len is the durability-safe primitive here
        // (the prefix bytes themselves are untouched).
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(rec.valid_bytes)?;
        file.sync_all()?;
    }

    let report = RecoveryReport {
        shard,
        path: path.clone(),
        events_applied: rec.events_applied,
        dropped_events: rec.dropped_events,
        torn_bytes: rec.torn_bytes,
        truncated,
    };

    let shard_state = if rec.has_header {
        let emitter = JsonlEmitter::open_append(&path)?.with_sync(sync);
        Shard::resume(
            rec.live,
            rec.ids,
            rec.names,
            rec.events_applied,
            emitter,
            rec.portfolio,
        )
    } else {
        // Fresh (or fully-torn) log: start over with a new header.
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Shard::create(
            capacity.clone(),
            kind,
            repack,
            trace,
            time_mode,
            BufWriter::new(file),
            sync,
            portfolio,
        )
        .map_err(WalOpenError::Shard)?
    };
    Ok((shard_state, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique temp dir per test (no external tempfile crate).
    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("dvbp-serve-wal-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn open(dir: &Path) -> (Shard<BufWriter<File>>, RecoveryReport) {
        open_with(dir, RepackPolicy::NoRepack)
    }

    fn open_with(dir: &Path, repack: RepackPolicy) -> (Shard<BufWriter<File>>, RecoveryReport) {
        open_shard(
            dir,
            0,
            &DimVec::from_slice(&[10, 10]),
            &PolicyKind::FirstFit,
            repack,
            TraceMode::Full,
            TimeMode::Strict,
            SyncPolicy::PerEvent,
            None,
        )
        .unwrap()
    }

    #[test]
    fn fresh_then_reopen_round_trips_state() {
        let dir = temp_dir("roundtrip");
        {
            let (mut s, report) = open(&dir);
            assert_eq!(report.events_applied, 0);
            s.arrive("a", DimVec::from_slice(&[6, 6]), 0).unwrap();
            s.arrive("b", DimVec::from_slice(&[2, 2]), 1).unwrap();
            s.depart("a", 4).unwrap();
            assert!(s.persist());
            // Simulate a crash: the shard is dropped without any
            // graceful close (per-event sync already persisted it).
        }
        let (s, report) = open(&dir);
        assert_eq!(report.dropped_events, 0);
        assert!(!report.truncated);
        assert!(report.events_applied > 0);
        assert_eq!(s.live().items_seen(), 2);
        assert_eq!(s.live().active_items(), 1);
        assert!(s.live().has_departed(0));
        assert_eq!(s.ids()["b"], 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open_and_service_resumes() {
        let dir = temp_dir("torn");
        {
            let (mut s, _) = open(&dir);
            s.arrive("a", DimVec::from_slice(&[6, 6]), 0).unwrap();
            s.arrive("b", DimVec::from_slice(&[2, 2]), 1).unwrap();
            assert!(s.persist());
        }
        // Tear the final line mid-byte.
        let path = shard_wal_path(&dir, 0);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();

        let (mut s, report) = open(&dir);
        assert!(report.truncated);
        assert!(report.torn_bytes > 0);
        // b's group lost its Place commit line, so b was rolled back.
        assert_eq!(s.live().items_seen(), 1);
        assert!(!s.ids().contains_key("b"));
        // The service resumes: b retries and the log heals.
        s.arrive("b", DimVec::from_slice(&[2, 2]), 1).unwrap();
        drop(s);
        let (s, report) = open(&dir);
        assert!(!report.truncated);
        assert_eq!(s.live().items_seen(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn migrating_shard_round_trips_through_its_wal() {
        let dir = temp_dir("repack");
        let drain = RepackPolicy::DrainOnDepart { k: 1 };
        {
            let (mut s, _) = open_with(&dir, drain);
            s.arrive("a", DimVec::from_slice(&[7, 7]), 0).unwrap();
            s.arrive("b", DimVec::from_slice(&[7, 7]), 1).unwrap();
            s.arrive("c", DimVec::from_slice(&[2, 2]), 2).unwrap();
            let dep = s.depart("a", 3).unwrap();
            assert_eq!(dep.migrations.len(), 1, "c drained into b's bin");
            assert!(s.persist());
        }
        let (s, report) = open_with(&dir, drain);
        assert!(!report.truncated);
        assert_eq!(s.live().migrations(), 1);
        assert_eq!(s.live().open_bins(), 1);
        assert_eq!(s.live().item_bin(2), Some(dvbp_core::BinId(1)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn portfolio_shard_round_trips_switch_history_through_its_wal() {
        use dvbp_portfolio::MetaPolicy;
        let dir = temp_dir("portfolio");
        let cfg = PortfolioConfig {
            candidates: vec![PolicyKind::FirstFit, PolicyKind::NextFit],
            meta: MetaPolicy::BestOf { window: 1 },
        };
        let open_pf = |dir: &Path| {
            open_shard(
                dir,
                0,
                &DimVec::from_slice(&[10]),
                &PolicyKind::NextFit,
                RepackPolicy::NoRepack,
                TraceMode::CostOnly,
                TimeMode::Strict,
                SyncPolicy::PerEvent,
                Some(&cfg),
            )
            .unwrap()
        };
        {
            let (mut s, _) = open_pf(&dir);
            s.arrive("small", DimVec::from_slice(&[3]), 0).unwrap();
            s.arrive("blocker", DimVec::from_slice(&[10]), 1).unwrap();
            s.arrive("tail", DimVec::from_slice(&[3]), 2).unwrap();
            s.depart("blocker", 3).unwrap(); // closes a bin -> switch
            assert_eq!(s.live().kind(), &PolicyKind::FirstFit);
            assert!(s.persist());
        }
        let (s, report) = open_pf(&dir);
        assert!(!report.truncated);
        assert_eq!(report.dropped_events, 0);
        assert_eq!(s.live().kind(), &PolicyKind::FirstFit);
        assert_eq!(s.live().policy_switches(), 1);
        let pf = s.portfolio().expect("state rebuilt on resume");
        assert_eq!(pf.switches().len(), 1);
        assert_eq!(pf.switches()[0].to, "FirstFit");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_files_are_distinct_per_index() {
        let dir = PathBuf::from("/tmp/whatever");
        assert_eq!(
            shard_wal_path(&dir, 7),
            PathBuf::from("/tmp/whatever/shard-007.wal")
        );
        assert_ne!(shard_wal_path(&dir, 0), shard_wal_path(&dir, 1));
    }
}

//! Crash recovery: replay a shard's write-ahead log back to the exact
//! live-engine state it described.
//!
//! Recovery is a *verified re-drive*: the WAL is parsed into operation
//! groups (see [`crate::shard`] for the grammar), each group's
//! operation is re-executed against a fresh [`LiveEngine`], and the
//! engine's actual outcome (bin choice, `opened_new`, `closed`) is
//! checked against what the journal recorded. Any disagreement is
//! [`RecoveryError::Diverged`] — the log was written by a different
//! policy/capacity/engine, or is corrupt — rather than silently
//! trusting either side. Because the engine is deterministic, a clean
//! replay reproduces **bit-identical** state: same bins, same loads,
//! same policy-internal order.
//!
//! # What gets dropped
//!
//! * A torn (unterminated) final line — classified by
//!   [`scan_wal`], never an error.
//! * A trailing **incomplete group** (e.g. `Ident`+`Arrival` without
//!   the committing `Place`): the crash hit between the group's lines,
//!   so the operation was never acknowledged.
//! * A trailing depart group whose journaled lines are a **strict
//!   prefix** of what the replay produces — a lone `Depart` whose
//!   replay says the bin closed, or a depart whose repack migrations
//!   (and their `BinClose` lines) were cut before the group's commit
//!   line. The whole group is rolled back (by re-driving without it):
//!   repacking is deterministic, so an unacknowledged departure takes
//!   its migrations with it. A mid-log group with the same
//!   disagreement is *not* ambiguous — its group is complete because
//!   later groups follow — so there it is `Diverged`.
//!
//! Dropped events are reported in [`Recovered::dropped_events`] and
//! excluded from [`Recovered::valid_bytes`]; the caller truncates the
//! log file to `valid_bytes` before appending new groups, restoring the
//! acknowledged-prefix invariant.

use crate::shard::PortfolioConfig;
use dvbp_core::{
    LiveEngine, LiveError, LiveRequest, PolicyKind, RepackPolicy, TimeMode, TraceMode,
};
use dvbp_dimvec::DimVec;
use dvbp_obs::{scan_wal, ObsError, ObsEvent};
use dvbp_portfolio::{PortfolioError, PortfolioState};
use dvbp_sim::Time;
use std::collections::HashMap;

/// A WAL that could not be recovered. All variants are fatal: the
/// service refuses to boot on a log it cannot fully explain.
#[derive(Debug)]
pub enum RecoveryError {
    /// A newline-terminated line failed to parse (real corruption, not
    /// a torn tail).
    Scan(ObsError),
    /// The log is non-empty but does not start with the `RunStart`
    /// header.
    MissingHeader,
    /// The header's capacity differs from the service configuration.
    HeaderMismatch {
        /// Capacity the service was configured with.
        expected: Vec<u64>,
        /// Capacity recorded in the WAL header.
        found: Vec<u64>,
    },
    /// The event sequence violates the group grammar somewhere other
    /// than a trailing (crash-explicable) position.
    Malformed {
        /// 0-based index into the scanned event list.
        event: usize,
        /// What was wrong.
        msg: String,
    },
    /// Replay produced a different outcome than the journal recorded.
    Diverged {
        /// 0-based index of the group's first event.
        event: usize,
        /// The disagreement.
        msg: String,
    },
    /// Replay rejected a journaled operation outright (corrupt size or
    /// timestamp), or the policy kind is not liveable.
    Live(LiveError),
    /// The portfolio configuration itself was rejected (empty candidate
    /// list) — a boot-configuration problem, not a log problem.
    Portfolio {
        /// The rendered [`PortfolioError`].
        msg: String,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Scan(e) => write!(f, "unreadable WAL: {e}"),
            RecoveryError::MissingHeader => write!(f, "WAL does not start with a RunStart header"),
            RecoveryError::HeaderMismatch { expected, found } => write!(
                f,
                "WAL capacity {found:?} does not match configured capacity {expected:?}"
            ),
            RecoveryError::Malformed { event, msg } => {
                write!(f, "malformed WAL at event {event}: {msg}")
            }
            RecoveryError::Diverged { event, msg } => {
                write!(f, "WAL diverged from replay at event {event}: {msg}")
            }
            RecoveryError::Live(e) => write!(f, "replay rejected a journaled operation: {e}"),
            RecoveryError::Portfolio { msg } => write!(f, "portfolio rejected: {msg}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<LiveError> for RecoveryError {
    fn from(e: LiveError) -> Self {
        RecoveryError::Live(e)
    }
}

impl From<PortfolioError> for RecoveryError {
    fn from(e: PortfolioError) -> Self {
        match e {
            PortfolioError::Live(e) => RecoveryError::Live(e),
            other => RecoveryError::Portfolio {
                msg: other.to_string(),
            },
        }
    }
}

/// The state rebuilt from a WAL by [`recover`].
pub struct Recovered {
    /// A live engine holding exactly the state the WAL's acknowledged
    /// prefix described.
    pub live: LiveEngine,
    /// External id → run-local index for every recovered arrival.
    pub ids: HashMap<String, usize>,
    /// Run-local index → external id.
    pub names: Vec<String>,
    /// Events (journal lines, header included) applied by the replay.
    pub events_applied: u64,
    /// Byte length of the acknowledged prefix; the caller truncates the
    /// log file to this before appending.
    pub valid_bytes: u64,
    /// Complete-line events discarded as unacknowledged trailing work
    /// (incomplete group or rolled-back closing depart).
    pub dropped_events: u64,
    /// Bytes of torn (unterminated) final line skipped by the scan.
    pub torn_bytes: u64,
    /// Whether the log contained the `RunStart` header (false only for
    /// an empty/fully-torn log).
    pub has_header: bool,
    /// The replayed portfolio state when a [`PortfolioConfig`] was
    /// given: shadows re-driven over the acknowledged stream, journaled
    /// switches re-applied verbatim (the meta-policy is **not**
    /// re-run).
    pub portfolio: Option<PortfolioState>,
}

/// One parsed WAL group, with the journal's recorded outcome.
#[derive(Debug)]
enum Group {
    Arrive {
        /// Index of the group's first event (for error reporting).
        at: usize,
        id: String,
        item: usize,
        size: Vec<u64>,
        time: Time,
        bin: usize,
        opened_new: bool,
    },
    Depart {
        at: usize,
        item: usize,
        time: Time,
        bin: usize,
        /// The journaled post-`Depart` lines (`BinClose`, `Migrate`)
        /// in order, for comparison against the replay's outcome.
        tail: Vec<TailLine>,
    },
    /// A `PolicySwitch` line — a complete single-line group, re-applied
    /// verbatim (recovery never re-runs the meta-policy).
    Switch {
        at: usize,
        time: Time,
        from: String,
        to: String,
    },
}

/// One post-`Depart` line of a depart group, in a shape shared by the
/// journal parser and the replay so prefix comparison is literal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TailLine {
    /// `BinClose{bin}` — the departed bin, or a drained migration
    /// source.
    Close(usize),
    /// `Migrate{item, from, to}`.
    Migrate(usize, usize, usize),
}

/// The depart group's tail a replayed departure would journal.
fn replay_tail(dep: &dvbp_core::LiveDeparture) -> Vec<TailLine> {
    let mut tail = Vec::new();
    if dep.closed {
        tail.push(TailLine::Close(dep.bin.0));
    }
    for m in &dep.migrations {
        tail.push(TailLine::Migrate(m.item, m.from.0, m.to.0));
        if m.closed_from {
            tail.push(TailLine::Close(m.from.0));
        }
    }
    tail
}

/// Parses the scanned event list into groups. `complete[i]` is the
/// event index of group `i`'s commit line. Returns the groups plus the
/// number of trailing events dropped as an incomplete group.
fn parse_groups(events: &[ObsEvent]) -> Result<(Vec<Group>, u64), RecoveryError> {
    let mut groups = Vec::new();
    let mut i = 1; // 0 is the header
    while i < events.len() {
        let at = i;
        match &events[i] {
            ObsEvent::Ident { item, id } => {
                // Arrival group: Ident, Arrival, BinOpen?, Place.
                let Some(ObsEvent::Arrival {
                    time,
                    item: ai,
                    size,
                }) = events.get(i + 1)
                else {
                    return trailing_or_malformed(events, at, groups, "Ident without Arrival");
                };
                if ai != item {
                    return Err(RecoveryError::Malformed {
                        event: i + 1,
                        msg: format!("Arrival item {ai} does not match Ident item {item}"),
                    });
                }
                let mut j = i + 2;
                let opened = matches!(events.get(j), Some(ObsEvent::BinOpen { .. }));
                if opened {
                    j += 1;
                }
                let Some(ObsEvent::Place {
                    time: pt,
                    item: pi,
                    bin,
                    opened_new,
                    ..
                }) = events.get(j)
                else {
                    return trailing_or_malformed(
                        events,
                        at,
                        groups,
                        "arrival group without Place",
                    );
                };
                if pi != item || pt != time {
                    return Err(RecoveryError::Malformed {
                        event: j,
                        msg: "Place does not match its Arrival".to_string(),
                    });
                }
                if *opened_new != opened {
                    return Err(RecoveryError::Malformed {
                        event: j,
                        msg: format!(
                            "Place says opened_new={opened_new} but group has {} BinOpen",
                            if opened { "a" } else { "no" }
                        ),
                    });
                }
                groups.push(Group::Arrive {
                    at,
                    id: id.clone(),
                    item: *item,
                    size: size.clone(),
                    time: *time,
                    bin: *bin,
                    opened_new: *opened_new,
                });
                i = j + 1;
            }
            ObsEvent::Depart { time, item, bin } => {
                // Depart group: Depart, BinClose?, (Migrate BinClose?)*.
                // Greedy consumption is unambiguous: BinClose and
                // Migrate cannot start a group.
                let mut tail = Vec::new();
                let mut j = i + 1;
                if let Some(ObsEvent::BinClose { bin: b, .. }) = events.get(j) {
                    tail.push(TailLine::Close(*b));
                    j += 1;
                }
                while let Some(ObsEvent::Migrate {
                    item: mi, from, to, ..
                }) = events.get(j)
                {
                    tail.push(TailLine::Migrate(*mi, *from, *to));
                    j += 1;
                    if let Some(ObsEvent::BinClose { bin: b, .. }) = events.get(j) {
                        tail.push(TailLine::Close(*b));
                        j += 1;
                    }
                }
                groups.push(Group::Depart {
                    at,
                    item: *item,
                    time: *time,
                    bin: *bin,
                    tail,
                });
                i = j;
            }
            ObsEvent::PolicySwitch { time, from, to } => {
                // A switch group is one line, so it is always complete.
                groups.push(Group::Switch {
                    at,
                    time: *time,
                    from: from.clone(),
                    to: to.clone(),
                });
                i += 1;
            }
            other => {
                return Err(RecoveryError::Malformed {
                    event: i,
                    msg: format!("event cannot start a group: {other:?}"),
                });
            }
        }
    }
    Ok((groups, 0))
}

/// An incomplete group at the very end of the log is a crash artifact
/// (dropped); anywhere else it is corruption.
fn trailing_or_malformed(
    events: &[ObsEvent],
    at: usize,
    groups: Vec<Group>,
    msg: &str,
) -> Result<(Vec<Group>, u64), RecoveryError> {
    // The group is trailing iff every remaining event belongs to it —
    // i.e. parsing stopped because the log *ended*, not because an
    // unexpected event interrupted the group. Interruptions show up as
    // a parseable-but-wrong next event and were already rejected above;
    // reaching here means `events.get(..)` ran off the end unless the
    // next events are group-starters, which would have parsed.
    let rest = &events[at..];
    let interrupted = rest.iter().skip(1).any(|e| {
        matches!(
            e,
            ObsEvent::Ident { .. } | ObsEvent::Depart { .. } | ObsEvent::PolicySwitch { .. }
        )
    });
    if interrupted {
        Err(RecoveryError::Malformed {
            event: at,
            msg: msg.to_string(),
        })
    } else {
        Ok((groups, rest.len() as u64))
    }
}

/// The replayed engine plus its id tables (`id -> local index`, the
/// reverse `local index -> id`) and the replayed portfolio state.
type DrivenState = (
    LiveEngine,
    HashMap<String, usize>,
    Vec<String>,
    Option<PortfolioState>,
);

/// Builds the fresh portfolio state a replay (or a fresh boot) starts
/// from.
fn fresh_portfolio(
    portfolio: Option<&PortfolioConfig>,
    capacity: &DimVec,
    kind: &PolicyKind,
    time_mode: TimeMode,
) -> Result<Option<PortfolioState>, RecoveryError> {
    portfolio
        .map(|cfg| PortfolioState::new(capacity, time_mode, &cfg.candidates, kind, cfg.meta, 0))
        .transpose()
        .map_err(Into::into)
}

/// Re-drives `groups` on a fresh engine, checking every outcome against
/// the journal. With a [`PortfolioConfig`], every accepted operation is
/// also mirrored into a fresh [`PortfolioState`] and journaled switch
/// groups are re-applied verbatim — the meta-policy's *proposals* are
/// ignored, so the replay lands on exactly the journaled switch
/// history.
fn drive(
    groups: &[Group],
    capacity: &DimVec,
    kind: &PolicyKind,
    repack: RepackPolicy,
    trace: TraceMode,
    time_mode: TimeMode,
    portfolio: Option<&PortfolioConfig>,
) -> Result<DrivenState, RecoveryError> {
    let mut live = LiveRequest::new(kind.clone())
        .capacity(capacity.clone())
        .trace_mode(trace)
        .time_mode(time_mode)
        .repack(repack)
        .build()?;
    let mut pf = fresh_portfolio(portfolio, capacity, kind, time_mode)?;
    let mut ids = HashMap::new();
    let mut names = Vec::new();
    for group in groups {
        match group {
            Group::Arrive {
                at,
                id,
                item,
                size,
                time,
                bin,
                opened_new,
            } => {
                if *item != live.items_seen() {
                    return Err(RecoveryError::Diverged {
                        event: *at,
                        msg: format!(
                            "journal item index {item}, replay expects {}",
                            live.items_seen()
                        ),
                    });
                }
                let placed = live.arrive(DimVec::from_slice(size), *time)?;
                if placed.bin.0 != *bin || placed.opened_new != *opened_new || placed.time != *time
                {
                    return Err(RecoveryError::Diverged {
                        event: *at,
                        msg: format!(
                            "journal placed item {item} in bin {bin} (opened_new={opened_new}), \
                             replay chose bin {} (opened_new={})",
                            placed.bin.0, placed.opened_new
                        ),
                    });
                }
                ids.insert(id.clone(), *item);
                names.push(id.clone());
                if let Some(pf) = pf.as_mut() {
                    pf.on_arrive(&DimVec::from_slice(size), *time);
                }
            }
            Group::Depart {
                at,
                item,
                time,
                bin,
                tail,
            } => {
                let dep = match live.depart(*item, *time) {
                    Ok(dep) => dep,
                    Err(
                        e @ (LiveError::UnknownItem { .. } | LiveError::AlreadyDeparted { .. }),
                    ) => {
                        return Err(RecoveryError::Diverged {
                            event: *at,
                            msg: e.to_string(),
                        })
                    }
                    Err(e) => return Err(e.into()),
                };
                if dep.bin.0 != *bin {
                    // The Depart line itself (a complete line) named a
                    // different bin: corruption regardless of position.
                    return Err(RecoveryError::Diverged {
                        event: *at,
                        msg: format!(
                            "journal departed item {item} from bin {bin}, replay says bin {}",
                            dep.bin.0
                        ),
                    });
                }
                let replay = replay_tail(&dep);
                if *tail != replay {
                    // A journaled tail that is a *strict prefix* of the
                    // replay's is the crash-explicable shape (the
                    // group's remaining lines were cut before its
                    // commit); `is_ambiguous_trailing_depart` matches
                    // this marker for the final group.
                    let msg = if replay.len() > tail.len() && replay[..tail.len()] == tail[..] {
                        format!(
                            "{AMBIGUOUS_PREFIX_MARKER}: journal has {} tail line(s), \
                             replay produced {}",
                            tail.len(),
                            replay.len()
                        )
                    } else {
                        format!(
                            "journal depart group tail {tail:?} does not match replay {replay:?}"
                        )
                    };
                    return Err(RecoveryError::Diverged { event: *at, msg });
                }
                if let Some(pf) = pf.as_mut() {
                    // Mirror the departure; the close counters advance
                    // exactly as they did live. The returned proposal
                    // is discarded — only journaled Switch groups move
                    // the policy during replay.
                    let closes = tail
                        .iter()
                        .filter(|l| matches!(l, TailLine::Close(_)))
                        .count() as u64;
                    let _ = pf.on_depart(*item, *time, closes);
                }
            }
            Group::Switch { at, time, from, to } => {
                if live.kind().spec() != *from {
                    return Err(RecoveryError::Diverged {
                        event: *at,
                        msg: format!(
                            "journal switches from {from}, replay is on {}",
                            live.kind().spec()
                        ),
                    });
                }
                let to_kind = to
                    .parse::<PolicyKind>()
                    .map_err(|e| RecoveryError::Malformed {
                        event: *at,
                        msg: format!("unparseable switch target {to:?}: {e}"),
                    })?;
                live.switch_policy(to_kind.clone())?;
                if let Some(pf) = pf.as_mut() {
                    pf.record_switch(&to_kind, *time)
                        .map_err(|e| RecoveryError::Diverged {
                            event: *at,
                            msg: e.to_string(),
                        })?;
                }
            }
        }
    }
    Ok((live, ids, names, pf))
}

/// Number of journal lines group `i` occupies.
fn group_lines(g: &Group) -> u64 {
    match g {
        Group::Arrive { opened_new, .. } => 3 + u64::from(*opened_new),
        Group::Depart { tail, .. } => 1 + tail.len() as u64,
        Group::Switch { .. } => 1,
    }
}

/// Replays raw WAL bytes into a [`Recovered`] shard state for the given
/// service configuration. Pass the service's [`PortfolioConfig`] to
/// also rebuild the shard's [`PortfolioState`] (shadows re-driven over
/// the acknowledged stream, journaled switches re-applied verbatim); a
/// log containing switch groups replays its live engine correctly even
/// without one.
///
/// # Errors
///
/// See [`RecoveryError`]; every variant means the service must not
/// boot on this log.
#[allow(clippy::too_many_arguments)] // the shard's full configuration surface
pub fn recover(
    bytes: &[u8],
    capacity: &DimVec,
    kind: &PolicyKind,
    repack: RepackPolicy,
    trace: TraceMode,
    time_mode: TimeMode,
    portfolio: Option<&PortfolioConfig>,
) -> Result<Recovered, RecoveryError> {
    let scan = scan_wal(bytes).map_err(RecoveryError::Scan)?;
    if scan.events.is_empty() {
        // Empty or fully-torn log: boot fresh; the caller truncates the
        // torn fragment (valid_bytes = 0) and writes a new header.
        let live = LiveRequest::new(kind.clone())
            .capacity(capacity.clone())
            .trace_mode(trace)
            .time_mode(time_mode)
            .repack(repack)
            .build()?;
        let pf = fresh_portfolio(portfolio, capacity, kind, time_mode)?;
        return Ok(Recovered {
            live,
            ids: HashMap::new(),
            names: Vec::new(),
            events_applied: 0,
            valid_bytes: 0,
            dropped_events: 0,
            torn_bytes: scan.torn_bytes,
            has_header: false,
            portfolio: pf,
        });
    }
    match &scan.events[0] {
        ObsEvent::RunStart { capacity: c, .. } => {
            if c != capacity.as_slice() {
                return Err(RecoveryError::HeaderMismatch {
                    expected: capacity.as_slice().to_vec(),
                    found: c.clone(),
                });
            }
        }
        _ => return Err(RecoveryError::MissingHeader),
    }

    let (mut groups, mut dropped_events) = parse_groups(&scan.events)?;
    let (live, ids, names, pf) =
        match drive(&groups, capacity, kind, repack, trace, time_mode, portfolio) {
            Ok(state) => state,
            Err(RecoveryError::Diverged { event, msg })
                if is_ambiguous_trailing_depart(&groups, event, &msg) =>
            {
                // The log's last group is a depart whose journaled lines
                // are a strict prefix of what the replay produces: the
                // crash cut the group before its commit line (BinClose or
                // trailing Migrate lines). Roll the whole group back.
                let rolled = groups.pop().expect("non-empty by construction");
                dropped_events += group_lines(&rolled);
                drive(&groups, capacity, kind, repack, trace, time_mode, portfolio)?
            }
            Err(e) => return Err(e),
        };

    // The acknowledged prefix ends at the last kept group's commit line.
    let events_kept = 1 + groups.iter().map(group_lines).sum::<u64>();
    let valid_bytes = scan.offsets[events_kept as usize - 1];
    Ok(Recovered {
        live,
        ids,
        names,
        events_applied: events_kept,
        valid_bytes,
        dropped_events,
        torn_bytes: scan.torn_bytes,
        has_header: true,
        portfolio: pf,
    })
}

/// Marker prefix of the one crash-explicable replay divergence: the
/// journaled depart-group tail is a strict prefix of the replay's.
const AMBIGUOUS_PREFIX_MARKER: &str = "journal depart group is a prefix of replay";

/// Whether a replay divergence is the crash-explicable case: the
/// *final* group is a `Depart` whose journaled tail is a strict prefix
/// of the replay's (its `BinClose` / `Migrate` lines were cut before
/// the commit line).
fn is_ambiguous_trailing_depart(groups: &[Group], event: usize, msg: &str) -> bool {
    match groups.last() {
        Some(Group::Depart { at, .. }) => *at == event && msg.starts_with(AMBIGUOUS_PREFIX_MARKER),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::Shard;
    use dvbp_obs::SyncPolicy;

    fn capacity() -> DimVec {
        DimVec::from_slice(&[10, 10])
    }

    fn shard_with(repack: RepackPolicy) -> Shard<Vec<u8>> {
        Shard::create(
            capacity(),
            &PolicyKind::FirstFit,
            repack,
            TraceMode::Full,
            TimeMode::Strict,
            Vec::new(),
            SyncPolicy::OnClose,
            None,
        )
        .unwrap()
    }

    /// A shard driven through a fixed script, returning its WAL bytes.
    fn scripted_wal() -> Vec<u8> {
        let mut s = shard_with(RepackPolicy::NoRepack);
        s.arrive("a", DimVec::from_slice(&[6, 6]), 0).unwrap();
        s.arrive("b", DimVec::from_slice(&[2, 2]), 1).unwrap();
        s.arrive("c", DimVec::from_slice(&[6, 6]), 2).unwrap();
        s.depart("b", 3).unwrap();
        s.depart("a", 4).unwrap(); // closes bin 0
        s.arrive("d", DimVec::from_slice(&[3, 3]), 5).unwrap();
        s.into_wal_bytes()
    }

    /// A drain-on-depart shard whose last group is a depart with a
    /// journaled migration (plus the drained bin's close).
    fn migrating_wal() -> Vec<u8> {
        let mut s = shard_with(RepackPolicy::DrainOnDepart { k: 1 });
        s.arrive("a", DimVec::from_slice(&[7, 7]), 0).unwrap(); // bin 0
        s.arrive("b", DimVec::from_slice(&[7, 7]), 1).unwrap(); // bin 1
        s.arrive("c", DimVec::from_slice(&[2, 2]), 2).unwrap(); // bin 0
        let dep = s.depart("a", 3).unwrap(); // drains c into bin 1
        assert_eq!(dep.migrations.len(), 1);
        s.into_wal_bytes()
    }

    fn recover_with(bytes: &[u8], repack: RepackPolicy) -> Result<Recovered, RecoveryError> {
        recover(
            bytes,
            &capacity(),
            &PolicyKind::FirstFit,
            repack,
            TraceMode::Full,
            TimeMode::Strict,
            None,
        )
    }

    fn recover_ff(bytes: &[u8]) -> Result<Recovered, RecoveryError> {
        recover_with(bytes, RepackPolicy::NoRepack)
    }

    #[test]
    fn clean_log_recovers_every_detail() {
        let bytes = scripted_wal();
        let rec = recover_ff(&bytes).unwrap();
        assert_eq!(rec.valid_bytes as usize, bytes.len());
        assert_eq!(rec.dropped_events, 0);
        assert_eq!(rec.torn_bytes, 0);
        assert!(rec.has_header);
        assert_eq!(rec.names, ["a", "b", "c", "d"]);
        assert_eq!(rec.ids["d"], 3);
        assert_eq!(rec.live.items_seen(), 4);
        assert_eq!(rec.live.active_items(), 2);
        assert!(rec.live.has_departed(0));
        assert!(rec.live.has_departed(1));
        // Bin 0 closed at t=4; c sits in bin 1; d reuses... FirstFit
        // placed d in the earliest open bin that fits.
        assert_eq!(rec.live.bins_opened(), rec.live.item_bin(3).unwrap().0 + 1);
    }

    #[test]
    fn empty_log_boots_fresh() {
        let rec = recover_ff(b"").unwrap();
        assert!(!rec.has_header);
        assert_eq!(rec.events_applied, 0);
        assert_eq!(rec.live.items_seen(), 0);
    }

    #[test]
    fn every_event_boundary_is_a_consistent_recovery_point() {
        let bytes = scripted_wal();
        let scan = scan_wal(&bytes).unwrap();
        for &off in &scan.offsets {
            let rec = recover_ff(&bytes[..off as usize]).unwrap();
            // The recovered prefix must itself re-recover to the same
            // byte count it reported valid.
            let again = recover_ff(&bytes[..rec.valid_bytes as usize]).unwrap();
            assert_eq!(again.valid_bytes, rec.valid_bytes);
            assert_eq!(again.dropped_events, 0, "truncation must be a fixpoint");
            assert_eq!(again.live.items_seen(), rec.live.items_seen());
            assert_eq!(again.live.active_items(), rec.live.active_items());
        }
    }

    #[test]
    fn torn_final_line_is_dropped_not_fatal() {
        let bytes = scripted_wal();
        // Cut mid-way through the final line.
        let cut = bytes.len() - 7;
        let rec = recover_ff(&bytes[..cut]).unwrap();
        assert!(rec.torn_bytes > 0);
        assert!(rec.valid_bytes <= cut as u64 - rec.torn_bytes);
    }

    #[test]
    fn trailing_incomplete_arrival_group_is_rolled_back() {
        let bytes = scripted_wal();
        let scan = scan_wal(&bytes).unwrap();
        // The last group is d's arrival: Ident, Arrival, BinOpen?,
        // Place. Cut after its Ident line (events_kept would end
        // mid-group).
        let full = recover_ff(&bytes).unwrap();
        let d_first_event = full.events_applied - group_lines_of_last(&bytes);
        let cut = scan.offsets[d_first_event as usize] as usize; // keep Ident only
        let rec = recover_ff(&bytes[..cut]).unwrap();
        assert_eq!(rec.live.items_seen(), 3, "d's arrival must be dropped");
        assert_eq!(rec.dropped_events, 1);
        assert!(!rec.ids.contains_key("d"));
    }

    fn group_lines_of_last(bytes: &[u8]) -> u64 {
        // d's arrival group: 3 lines + 1 if it opened a bin. Derive
        // from the log itself to stay policy-agnostic.
        let scan = scan_wal(bytes).unwrap();
        let mut n = 0;
        for ev in scan.events.iter().rev() {
            n += 1;
            if matches!(ev, ObsEvent::Ident { .. }) {
                break;
            }
        }
        n
    }

    #[test]
    fn trailing_closing_depart_without_binclose_is_rolled_back() {
        // Build a log whose last group is a depart that closes its bin,
        // then strip the BinClose commit line.
        let mut s = shard_with(RepackPolicy::NoRepack);
        s.arrive("only", DimVec::from_slice(&[5, 5]), 0).unwrap();
        s.depart("only", 9).unwrap(); // Depart + BinClose
        let bytes = s.into_wal_bytes();
        let scan = scan_wal(&bytes).unwrap();
        assert!(matches!(
            scan.events.last(),
            Some(ObsEvent::BinClose { .. })
        ));
        let cut = scan.offsets[scan.offsets.len() - 2] as usize; // drop BinClose
        let rec = recover_ff(&bytes[..cut]).unwrap();
        // The depart never committed: "only" must still be active.
        assert_eq!(rec.live.active_items(), 1);
        assert!(!rec.live.has_departed(0));
        assert_eq!(rec.dropped_events, 1);
        // valid_bytes excludes the rolled-back Depart line.
        let again = recover_ff(&bytes[..rec.valid_bytes as usize]).unwrap();
        assert_eq!(again.dropped_events, 0);
        assert_eq!(again.live.active_items(), 1);
    }

    #[test]
    fn mid_log_disagreement_is_diverged_not_rolled_back() {
        // Same closing-depart-without-BinClose shape, but with a later
        // group following — the group is complete, so the missing
        // BinClose is corruption.
        let mut s = shard_with(RepackPolicy::NoRepack);
        s.arrive("x", DimVec::from_slice(&[5, 5]), 0).unwrap();
        s.depart("x", 3).unwrap();
        s.arrive("y", DimVec::from_slice(&[5, 5]), 4).unwrap();
        let bytes = s.into_wal_bytes();
        let scan = scan_wal(&bytes).unwrap();
        // Remove x's BinClose line (event index: header=0, x group
        // 1..=4 or 1..=3 +BinOpen... find it).
        let bc = scan
            .events
            .iter()
            .position(|e| matches!(e, ObsEvent::BinClose { .. }))
            .unwrap();
        let start = scan.offsets[bc - 1] as usize;
        let end = scan.offsets[bc] as usize;
        let mut cut = bytes[..start].to_vec();
        cut.extend_from_slice(&bytes[end..]);
        let err = recover_ff(&cut).err().expect("recovery must fail");
        assert!(matches!(err, RecoveryError::Diverged { .. }), "{err}");
    }

    #[test]
    fn wrong_capacity_or_policy_is_rejected() {
        let bytes = scripted_wal();
        let err = recover(
            &bytes,
            &DimVec::from_slice(&[10, 11]),
            &PolicyKind::FirstFit,
            RepackPolicy::NoRepack,
            TraceMode::Full,
            TimeMode::Strict,
            None,
        )
        .err()
        .expect("recovery must fail");
        assert!(matches!(err, RecoveryError::HeaderMismatch { .. }), "{err}");
        // A different policy replays to different bin choices: FirstFit
        // sends d back to bin 0, NextFit (never looks back) to bin 1.
        let mut s = shard_with(RepackPolicy::NoRepack);
        s.arrive("a", DimVec::from_slice(&[6, 6]), 0).unwrap(); // bin 0
        s.arrive("c", DimVec::from_slice(&[6, 6]), 2).unwrap(); // bin 1
        s.arrive("d", DimVec::from_slice(&[3, 3]), 5).unwrap(); // FF: bin 0
        let bytes = s.into_wal_bytes();
        let err = recover(
            &bytes,
            &capacity(),
            &PolicyKind::NextFit,
            RepackPolicy::NoRepack,
            TraceMode::Full,
            TimeMode::Strict,
            None,
        )
        .err()
        .expect("recovery must fail");
        assert!(matches!(err, RecoveryError::Diverged { .. }), "{err}");
    }

    #[test]
    fn migration_groups_replay_to_identical_state() {
        let bytes = migrating_wal();
        let rec = recover_with(&bytes, RepackPolicy::DrainOnDepart { k: 1 }).unwrap();
        assert_eq!(rec.valid_bytes as usize, bytes.len());
        assert_eq!(rec.dropped_events, 0);
        assert_eq!(rec.live.migrations(), 1);
        // c ended up in bin 1, and the drained bin 0 is closed.
        assert_eq!(rec.live.item_bin(2), Some(dvbp_core::BinId(1)));
        assert_eq!(rec.live.open_bins(), 1);
    }

    #[test]
    fn trailing_migration_lines_cut_before_commit_roll_back_the_depart() {
        let bytes = migrating_wal();
        let scan = scan_wal(&bytes).unwrap();
        // The last group is Depart, Migrate, BinClose (a's departure
        // does not close bin 0 — c is still there — so the drain's
        // close is the only BinClose). Cut at every boundary inside
        // the group: all three cuts must roll back the whole depart.
        let depart_at = scan
            .events
            .iter()
            .position(|e| matches!(e, ObsEvent::Depart { .. }))
            .unwrap();
        for keep in depart_at..scan.events.len() - 1 {
            let cut = scan.offsets[keep] as usize;
            let rec = recover_with(&bytes[..cut], RepackPolicy::DrainOnDepart { k: 1 }).unwrap();
            assert_eq!(rec.live.active_items(), 3, "cut after event {keep}");
            assert!(!rec.live.has_departed(0));
            assert_eq!(rec.live.migrations(), 0);
            assert_eq!(
                rec.dropped_events,
                keep as u64 - depart_at as u64 + 1,
                "the partial group is dropped whole"
            );
            // Truncation is a fixpoint.
            let again = recover_with(
                &bytes[..rec.valid_bytes as usize],
                RepackPolicy::DrainOnDepart { k: 1 },
            )
            .unwrap();
            assert_eq!(again.dropped_events, 0);
        }
    }

    #[test]
    fn repack_policy_mismatch_is_diverged() {
        // A WAL written with migrations cannot replay under NoRepack
        // (mid-log Migrate lines never match), and a NoRepack WAL whose
        // non-trailing departs should have migrated diverges under
        // DrainOnDepart.
        let bytes = migrating_wal();
        let err = recover_ff(&bytes).err().expect("recovery must fail");
        assert!(matches!(err, RecoveryError::Diverged { .. }), "{err}");

        let mut s = shard_with(RepackPolicy::NoRepack);
        s.arrive("a", DimVec::from_slice(&[7, 7]), 0).unwrap();
        s.arrive("b", DimVec::from_slice(&[7, 7]), 1).unwrap();
        s.arrive("c", DimVec::from_slice(&[2, 2]), 2).unwrap();
        s.depart("a", 3).unwrap(); // no migration journaled
        s.arrive("d", DimVec::from_slice(&[1, 1]), 4).unwrap(); // completes the group
        let bytes = s.into_wal_bytes();
        let err = recover_with(&bytes, RepackPolicy::DrainOnDepart { k: 1 })
            .err()
            .expect("recovery must fail");
        assert!(matches!(err, RecoveryError::Diverged { .. }), "{err}");
    }

    #[test]
    fn terminated_garbage_is_fatal() {
        let mut bytes = scripted_wal();
        bytes.extend_from_slice(b"garbage\n");
        assert!(matches!(
            recover_ff(&bytes),
            Err(RecoveryError::Scan(ObsError::Parse { .. }))
        ));
    }

    use dvbp_portfolio::MetaPolicy;

    fn pf_config() -> PortfolioConfig {
        PortfolioConfig {
            candidates: vec![PolicyKind::FirstFit, PolicyKind::NextFit],
            meta: MetaPolicy::BestOf { window: 1 },
        }
    }

    /// A NextFit portfolio shard whose blocker departure journals a
    /// switch to FirstFit, followed by a post-switch arrival that only
    /// replays cleanly if the switch was re-applied.
    fn switching_wal() -> Vec<u8> {
        let cfg = pf_config();
        let mut s = Shard::create(
            DimVec::from_slice(&[10]),
            &PolicyKind::NextFit,
            RepackPolicy::NoRepack,
            TraceMode::CostOnly,
            TimeMode::Strict,
            Vec::new(),
            SyncPolicy::PerEvent,
            Some(&cfg),
        )
        .unwrap();
        s.arrive("small", DimVec::from_slice(&[3]), 0).unwrap(); // b0
        s.arrive("blocker", DimVec::from_slice(&[10]), 1).unwrap(); // b1
        s.arrive("tail", DimVec::from_slice(&[3]), 2).unwrap(); // NF: b2
        s.depart("blocker", 3).unwrap(); // closes b1 -> switch group
                                         // FirstFit sends this to b0 (3+4 fits); NextFit would pick its
                                         // current bin b2 — the replay must honor the journaled switch.
        s.arrive("post", DimVec::from_slice(&[4]), 4).unwrap();
        assert_eq!(s.live().kind(), &PolicyKind::FirstFit);
        s.into_wal_bytes()
    }

    fn recover_pf(
        bytes: &[u8],
        portfolio: Option<&PortfolioConfig>,
    ) -> Result<Recovered, RecoveryError> {
        recover(
            bytes,
            &DimVec::from_slice(&[10]),
            &PolicyKind::NextFit,
            RepackPolicy::NoRepack,
            TraceMode::CostOnly,
            TimeMode::Strict,
            portfolio,
        )
    }

    #[test]
    fn journaled_switches_replay_verbatim() {
        let bytes = switching_wal();
        let cfg = pf_config();
        let rec = recover_pf(&bytes, Some(&cfg)).unwrap();
        assert_eq!(rec.valid_bytes as usize, bytes.len());
        assert_eq!(rec.dropped_events, 0);
        assert_eq!(rec.live.kind(), &PolicyKind::FirstFit);
        assert_eq!(rec.live.policy_switches(), 1);
        assert_eq!(rec.live.item_bin(3), Some(dvbp_core::BinId(0)));
        let pf = rec.portfolio.expect("config given, state rebuilt");
        assert_eq!(pf.switches().len(), 1);
        assert_eq!(pf.switches()[0].from, "NextFit");
        assert_eq!(pf.switches()[0].to, "FirstFit");
        assert_eq!(pf.switches()[0].time, 3);
        assert_eq!(pf.shadows().items_seen(), 4, "shadows saw the stream");
    }

    #[test]
    fn switch_groups_replay_the_engine_even_without_a_portfolio_config() {
        let bytes = switching_wal();
        let rec = recover_pf(&bytes, None).unwrap();
        assert_eq!(rec.live.kind(), &PolicyKind::FirstFit);
        assert!(rec.portfolio.is_none());
        assert_eq!(rec.valid_bytes as usize, bytes.len());
    }

    #[test]
    fn a_cut_switch_line_leaves_the_replay_on_the_outgoing_policy() {
        let bytes = switching_wal();
        let scan = scan_wal(&bytes).unwrap();
        let switch_at = scan
            .events
            .iter()
            .position(|e| matches!(e, ObsEvent::PolicySwitch { .. }))
            .unwrap();
        // End the log right after the depart group's commit line: the
        // switch was never acknowledged.
        let cut = scan.offsets[switch_at - 1] as usize;
        let cfg = pf_config();
        let rec = recover_pf(&bytes[..cut], Some(&cfg)).unwrap();
        assert_eq!(rec.dropped_events, 0);
        assert_eq!(rec.live.kind(), &PolicyKind::NextFit);
        assert!(rec.portfolio.unwrap().switches().is_empty());
    }

    #[test]
    fn switch_to_a_foreign_candidate_is_diverged() {
        let bytes = switching_wal();
        let cfg = PortfolioConfig {
            candidates: vec![PolicyKind::NextFit, PolicyKind::MoveToFront],
            meta: MetaPolicy::BestOf { window: 1 },
        };
        let err = recover_pf(&bytes, Some(&cfg)).err().expect("must fail");
        assert!(matches!(err, RecoveryError::Diverged { .. }), "{err}");
    }

    #[test]
    fn every_switching_wal_boundary_is_a_consistent_recovery_point() {
        let bytes = switching_wal();
        let scan = scan_wal(&bytes).unwrap();
        let cfg = pf_config();
        for &off in &scan.offsets {
            let rec = recover_pf(&bytes[..off as usize], Some(&cfg)).unwrap();
            let again = recover_pf(&bytes[..rec.valid_bytes as usize], Some(&cfg)).unwrap();
            assert_eq!(again.valid_bytes, rec.valid_bytes);
            assert_eq!(again.dropped_events, 0, "truncation must be a fixpoint");
            assert_eq!(again.live.kind(), rec.live.kind());
            assert_eq!(again.live.policy_switches(), rec.live.policy_switches());
            assert_eq!(
                again.portfolio.unwrap().switches(),
                rec.portfolio.unwrap().switches()
            );
        }
    }
}

//! The service's span sink: per-shard latency histograms, flight
//! recorders, and every rendering of them (Prometheus families, the
//! `/spans` JSONL dump, the `dvbp-serve spans` breakdown table).
//!
//! One [`SpanHub`] lives in the [`ServeState`](crate::ServeState). The
//! connection loop finishes one [`SpanRecord`] per request and hands it
//! to [`SpanHub::record`], which is wait-free: histogram buckets are
//! relaxed atomics and the flight-recorder rings are per-slot seqlocks
//! (`dvbp-obs`'s [`SpanRing`](dvbp_obs::SpanRing)), so the serving path
//! never blocks on a scrape and a scrape never tears a record.
//!
//! Every request records **all nine stages** (zeros included), so each
//! stage histogram's `_count` equals the request count and the sum of
//! the stage `_sum`s cross-checks against the end-to-end `_sum` —
//! `bench_serve` asserts that identity and the monitor renders
//! per-stage quantiles from the same families.
//!
//! The Prometheus *parser* ([`parse_histograms`]) lives here too so the
//! monitor and the load generator reconstruct the exact 65-bucket
//! [`LogHistogram`] from a scrape: the exposition's inclusive `le`
//! bounds are `2^i − 1`, so `le + 1` recovers each bucket index
//! losslessly.

use dvbp_obs::{AtomicHistogram, LogHistogram, OpKind, SpanRecord, Stage};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default capacity of each shard's recent-requests ring.
pub const RECENT_RING: usize = 256;
/// Default capacity of each shard's slow-requests keep-ring.
pub const SLOW_RING: usize = 64;
/// Default slow-request threshold: 1 ms of *service* time (total minus
/// socket receive), so an idle keep-alive connection is never "slow".
pub const DEFAULT_SLOW_THRESHOLD_NS: u64 = 1_000_000;

/// Latency sinks for one op kind on one shard slot.
struct OpSpans {
    stages: [AtomicHistogram; Stage::COUNT],
    total: AtomicHistogram,
}

impl OpSpans {
    fn new() -> Self {
        OpSpans {
            stages: std::array::from_fn(|_| AtomicHistogram::new()),
            total: AtomicHistogram::new(),
        }
    }
}

/// One shard's slice of the hub: three op kinds of histograms plus the
/// flight recorder.
struct SpanSlot {
    ops: [OpSpans; OpKind::COUNT],
    rec: dvbp_obs::FlightRecorder,
}

/// The service-wide span sink: one slot per shard plus a trailing
/// service slot (label `shard="svc"`) for requests no shard owns
/// (queries, parse failures, shutdown).
pub struct SpanHub {
    slots: Vec<SpanSlot>,
    slow_threshold_ns: AtomicU64,
}

impl SpanHub {
    /// A hub for `shards` shards with default ring sizes and slow
    /// threshold.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self::with_config(shards, RECENT_RING, SLOW_RING, DEFAULT_SLOW_THRESHOLD_NS)
    }

    /// A hub with explicit ring capacities and slow threshold (ns).
    #[must_use]
    pub fn with_config(shards: usize, recent: usize, slow: usize, threshold_ns: u64) -> Self {
        SpanHub {
            slots: (0..=shards)
                .map(|_| SpanSlot {
                    ops: std::array::from_fn(|_| OpSpans::new()),
                    rec: dvbp_obs::FlightRecorder::new(recent, slow, threshold_ns),
                })
                .collect(),
            slow_threshold_ns: AtomicU64::new(threshold_ns),
        }
    }

    fn slot_of(&self, shard: u32) -> &SpanSlot {
        let svc = self.slots.len() - 1;
        let idx = if shard == SpanRecord::SERVICE {
            svc
        } else {
            (shard as usize).min(svc)
        };
        &self.slots[idx]
    }

    fn shard_label(&self, slot: usize) -> String {
        if slot == self.slots.len() - 1 {
            "svc".to_string()
        } else {
            slot.to_string()
        }
    }

    /// Records one finished request: every stage (zeros included) plus
    /// the end-to-end total into the owning slot's histograms, and the
    /// record into its flight recorder. Wait-free, allocation-free.
    pub fn record(&self, rec: &SpanRecord) {
        let slot = self.slot_of(rec.shard);
        let ops = &slot.ops[rec.op.index()];
        for (hist, &ns) in ops.stages.iter().zip(&rec.stage_ns) {
            hist.record(ns);
        }
        ops.total.record(rec.total_ns);
        slot.rec.record(rec);
    }

    /// The current slow-request threshold (ns).
    #[must_use]
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns.load(Ordering::Relaxed)
    }

    /// Updates the slow threshold on every slot (ns; 0 disables).
    pub fn set_slow_threshold_ns(&self, ns: u64) {
        self.slow_threshold_ns.store(ns, Ordering::Relaxed);
        for slot in &self.slots {
            slot.rec.set_slow_threshold_ns(ns);
        }
    }

    /// Requests ever classified slow, over all slots.
    #[must_use]
    pub fn slow_total(&self) -> u64 {
        self.slots.iter().map(|s| s.rec.slow_total()).sum()
    }

    /// End-to-end latency histogram merged over every slot and op.
    #[must_use]
    pub fn merged_total(&self) -> LogHistogram {
        let mut h = LogHistogram::new();
        for slot in &self.slots {
            for ops in &slot.ops {
                h.merge(&ops.total.snapshot());
            }
        }
        h
    }

    /// Per-stage histograms merged over every slot and op, indexed by
    /// [`Stage::index`].
    #[must_use]
    pub fn merged_stages(&self) -> Vec<LogHistogram> {
        let mut out: Vec<LogHistogram> = (0..Stage::COUNT).map(|_| LogHistogram::new()).collect();
        for slot in &self.slots {
            for ops in &slot.ops {
                for (m, h) in out.iter_mut().zip(&ops.stages) {
                    m.merge(&h.snapshot());
                }
            }
        }
        out
    }

    /// Appends the span metric families in Prometheus text format:
    /// `dvbp_serve_request_latency_ns` (per op × shard),
    /// `dvbp_serve_stage_latency_ns` (per op × shard × stage),
    /// `dvbp_serve_slow_requests_total`, and
    /// `dvbp_serve_slow_threshold_ns`. Histograms that never saw a
    /// request are omitted.
    pub fn render_metrics(&self, out: &mut String) {
        out.push_str("# TYPE dvbp_serve_request_latency_ns histogram\n");
        for (i, slot) in self.slots.iter().enumerate() {
            let shard = self.shard_label(i);
            for op in OpKind::ALL {
                let h = slot.ops[op.index()].total.snapshot();
                if h.total() == 0 {
                    continue;
                }
                let labels = format!("op=\"{}\",shard=\"{shard}\"", op.name());
                write_histogram(out, "dvbp_serve_request_latency_ns", &labels, &h);
            }
        }
        out.push_str("# TYPE dvbp_serve_stage_latency_ns histogram\n");
        for (i, slot) in self.slots.iter().enumerate() {
            let shard = self.shard_label(i);
            for op in OpKind::ALL {
                for stage in Stage::ALL {
                    let h = slot.ops[op.index()].stages[stage.index()].snapshot();
                    if h.total() == 0 {
                        continue;
                    }
                    let labels = format!(
                        "op=\"{}\",shard=\"{shard}\",stage=\"{}\"",
                        op.name(),
                        stage.name()
                    );
                    write_histogram(out, "dvbp_serve_stage_latency_ns", &labels, &h);
                }
            }
        }
        let _ = write!(
            out,
            "# TYPE dvbp_serve_slow_requests_total counter\n\
             dvbp_serve_slow_requests_total {}\n\
             # TYPE dvbp_serve_slow_threshold_ns gauge\n\
             dvbp_serve_slow_threshold_ns {}\n",
            self.slow_total(),
            self.slow_threshold_ns(),
        );
    }

    /// Renders the flight recorders as JSONL (the `GET /spans` body):
    /// one object per captured record, `kind` `"recent"` or `"slow"`,
    /// oldest first within each ring, shards in order with the service
    /// slot last.
    #[must_use]
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        let mut scratch = String::new();
        for slot in &self.slots {
            for (kind, ring) in [("recent", slot.rec.recent()), ("slow", slot.rec.slow())] {
                for rec in ring.snapshot() {
                    scratch.clear();
                    rec.write_json(&mut scratch);
                    let _ = write!(out, "{{\"kind\":\"{kind}\",{}", &scratch[1..]);
                    out.push('\n');
                }
            }
        }
        out
    }
}

/// Appends one `dvbp_build_info` gauge: crate version, enabled feature
/// summary, and compile profile. Both `dvbp-serve` and `dvbp-monitor`
/// call this from their `/metrics` with their own
/// `env!("CARGO_PKG_VERSION")`.
pub fn write_build_info(out: &mut String, version: &str, features: &str) {
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let _ = write!(
        out,
        "# TYPE dvbp_build_info gauge\n\
         dvbp_build_info{{version=\"{version}\",features=\"{features}\",profile=\"{profile}\"}} 1\n",
    );
}

/// Appends one histogram family member in Prometheus text format.
/// Buckets are cumulative with inclusive integer bounds: bucket 0 gets
/// `le="0"`, bucket `i ≥ 1` gets `le="2^i − 1"`, then `+Inf`, `_sum`,
/// `_count`. Buckets above the highest non-empty one are elided.
pub fn write_histogram(out: &mut String, name: &str, labels: &str, h: &LogHistogram) {
    let last = h.last_bucket().unwrap_or(0);
    let mut cum = 0u64;
    for (i, &c) in h.counts().iter().enumerate().take(last + 1) {
        cum += c;
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels},le=\"{}\"}} {cum}",
            LogHistogram::bucket_upper(i)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{{labels},le=\"+Inf\"}} {}", h.total());
    let _ = writeln!(out, "{name}_sum{{{labels}}} {}", h.sum());
    let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.total());
}

/// One histogram reconstructed from a Prometheus scrape: its label set
/// (minus `le`) and the rebuilt [`LogHistogram`].
#[derive(Clone, Debug)]
pub struct ScrapedHistogram {
    /// Label key → value, `le` excluded.
    pub labels: BTreeMap<String, String>,
    /// The reconstructed histogram. `max` is approximated by the upper
    /// bound of the highest non-empty bucket (the exposition does not
    /// carry the exact max).
    pub hist: LogHistogram,
}

impl ScrapedHistogram {
    /// The value of label `key`, or `""`.
    #[must_use]
    pub fn label(&self, key: &str) -> &str {
        self.labels.get(key).map_or("", String::as_str)
    }
}

/// Splits `op="arrive",shard="0",le="15"` into pairs. Our exposition
/// never escapes quotes or embeds commas in values.
fn parse_labels(s: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for part in s.split(',') {
        if let Some((k, v)) = part.split_once('=') {
            out.insert(k.trim().to_string(), v.trim().trim_matches('"').to_string());
        }
    }
    out
}

/// Reconstructs every member of histogram family `family` from
/// Prometheus text. Inverse of [`write_histogram`]: `le` bounds are
/// `2^i − 1`, so `le + 1` (a power of two) recovers the bucket index
/// and consecutive cumulative counts recover per-bucket counts exactly.
/// Unparseable lines are skipped.
#[must_use]
pub fn parse_histograms(text: &str, family: &str) -> Vec<ScrapedHistogram> {
    let bucket_prefix = format!("{family}_bucket{{");
    let sum_prefix = format!("{family}_sum{{");
    // keyed by the rendered non-le label set
    let mut groups: BTreeMap<String, (Vec<(u128, u64)>, u64)> = BTreeMap::new();
    for line in text.lines() {
        let (prefix, is_bucket) = if line.starts_with(&bucket_prefix) {
            (&bucket_prefix, true)
        } else if line.starts_with(&sum_prefix) {
            (&sum_prefix, false)
        } else {
            continue;
        };
        let rest = &line[prefix.len()..];
        let Some((labels_str, value_str)) = rest.split_once('}') else {
            continue;
        };
        let Ok(value) = value_str.trim().parse::<u64>() else {
            continue;
        };
        let mut labels = parse_labels(labels_str);
        let le = labels.remove("le");
        let key = labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",");
        let entry = groups.entry(key).or_default();
        if is_bucket {
            let bound = match le.as_deref() {
                Some("+Inf") => continue, // redundant with _count
                Some(le) => match le.parse::<u128>() {
                    Ok(b) => b,
                    Err(_) => continue,
                },
                None => continue,
            };
            entry.0.push((bound, value));
        } else {
            entry.1 = value;
        }
    }
    groups
        .into_iter()
        .map(|(key, (mut buckets, sum))| {
            buckets.sort_unstable_by_key(|&(le, _)| le);
            let mut counts = [0u64; 65];
            let mut prev = 0u64;
            for (le, cum) in buckets {
                let idx = if le == 0 {
                    0
                } else {
                    (le + 1).ilog2() as usize
                };
                if idx < counts.len() {
                    counts[idx] = cum.saturating_sub(prev);
                }
                prev = cum;
            }
            let max = counts
                .iter()
                .rposition(|&c| c > 0)
                .map_or(0, LogHistogram::bucket_upper);
            ScrapedHistogram {
                labels: key
                    .split(',')
                    .filter_map(|p| p.split_once('='))
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                hist: LogHistogram::from_counts(&counts, sum, max),
            }
        })
        .collect()
}

/// Fetches `path` from `addr` over hand-rolled HTTP/1.1 and returns the
/// body (the same discipline as `dvbp-monitor`'s scraper — `dvbp-serve`
/// cannot depend on the monitor crate).
///
/// # Errors
///
/// Connection or read failures, or a non-200 status.
pub fn http_get(addr: &str, path: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut text = String::new();
    BufReader::new(stream).read_to_string(&mut text)?;
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(io::Error::other("malformed HTTP response"));
    };
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.contains(" 200 ") {
        return Err(io::Error::other(format!("HTTP error: {status_line}")));
    }
    Ok(body.to_string())
}

/// Renders a `/spans` JSONL dump as the `dvbp-serve spans` breakdown:
/// the last `recent` recent requests, every captured slow request, and
/// a per-stage aggregate table (mean, p50/p99 upper bounds, share of
/// total). Returns an explanatory line when no spans are captured yet.
#[must_use]
pub fn render_spans_table(jsonl: &str, recent: usize) -> String {
    let mut recent_rows = Vec::new();
    let mut slow_rows = Vec::new();
    for line in jsonl.lines() {
        let Ok(v) = serde_json::from_str::<serde_json::Value>(line) else {
            continue;
        };
        match v.get("kind").and_then(|k| k.as_str()) {
            Some("recent") => recent_rows.push(v),
            Some("slow") => slow_rows.push(v),
            _ => {}
        }
    }
    if recent_rows.is_empty() && slow_rows.is_empty() {
        return "no spans captured yet (drive some requests first)\n".to_string();
    }

    let mut out = String::new();
    let header = format!(
        "{:<7} {:>5} {:<3} {:>8} {:>10} {}\n",
        "op",
        "shard",
        "ok",
        "time",
        "total_us",
        Stage::ALL
            .iter()
            .map(|s| format!("{:>11}", s.name()))
            .collect::<String>(),
    );

    let row = |v: &serde_json::Value, out: &mut String| {
        let shard = v
            .get("shard")
            .and_then(|s| {
                s.as_u64()
                    .map(|n| n.to_string())
                    .or_else(|| s.as_str().map(String::from))
            })
            .unwrap_or_default();
        let _ = write!(
            out,
            "{:<7} {:>5} {:<3} {:>8} {:>10.1}",
            v.get("op").and_then(|o| o.as_str()).unwrap_or("?"),
            shard,
            if v.get("ok").and_then(|o| o.as_bool()).unwrap_or(false) {
                "ok"
            } else {
                "ERR"
            },
            v.get("time").and_then(|t| t.as_u64()).unwrap_or(0),
            v.get("total_ns").and_then(|t| t.as_u64()).unwrap_or(0) as f64 / 1000.0,
        );
        for stage in Stage::ALL {
            let ns = v
                .get("stages")
                .and_then(|s| s.get(stage.name()))
                .and_then(|n| n.as_u64())
                .unwrap_or(0);
            let _ = write!(out, " {:>10.1}", ns as f64 / 1000.0);
        }
        out.push('\n');
    };

    let shown = recent_rows.len().min(recent);
    let _ = writeln!(
        out,
        "recent requests (showing {shown} of {} captured; stage columns in us):",
        recent_rows.len()
    );
    out.push_str(&header);
    for v in recent_rows.iter().rev().take(recent).rev() {
        row(v, &mut out);
    }

    let _ = writeln!(out, "\nslow requests ({} captured):", slow_rows.len());
    if slow_rows.is_empty() {
        out.push_str("  none\n");
    } else {
        out.push_str(&header);
        for v in &slow_rows {
            row(v, &mut out);
        }
    }

    // Per-stage aggregate over the recent ring.
    let mut stage_hists: Vec<LogHistogram> =
        (0..Stage::COUNT).map(|_| LogHistogram::new()).collect();
    let mut stage_sum = [0u64; Stage::COUNT];
    let mut total_sum = 0u64;
    for v in &recent_rows {
        total_sum += v.get("total_ns").and_then(|t| t.as_u64()).unwrap_or(0);
        for (i, stage) in Stage::ALL.iter().enumerate() {
            let ns = v
                .get("stages")
                .and_then(|s| s.get(stage.name()))
                .and_then(|n| n.as_u64())
                .unwrap_or(0);
            stage_hists[i].record(ns);
            stage_sum[i] += ns;
        }
    }
    if total_sum > 0 {
        out.push_str("\nper-stage breakdown over the recent ring (us):\n");
        let _ = writeln!(
            out,
            "{:<11} {:>10} {:>10} {:>10} {:>7}",
            "stage", "mean", "p50<=", "p99<=", "share"
        );
        for (i, stage) in Stage::ALL.iter().enumerate() {
            let h = &stage_hists[i];
            let _ = writeln!(
                out,
                "{:<11} {:>10.1} {:>10.1} {:>10.1} {:>6.1}%",
                stage.name(),
                h.mean() / 1000.0,
                h.quantile(0.5) as f64 / 1000.0,
                h.quantile(0.99) as f64 / 1000.0,
                100.0 * stage_sum[i] as f64 / total_sum as f64,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbp_obs::Span;

    fn finished(op: OpKind, shard: u32, busy_ns: u64) -> SpanRecord {
        let mut rec = SpanRecord {
            op,
            shard,
            ok: true,
            time: 1,
            total_ns: busy_ns,
            stage_ns: [0; Stage::COUNT],
        };
        rec.stage_ns[Stage::Dispatch.index()] = busy_ns;
        rec
    }

    #[test]
    fn record_routes_to_shard_and_service_slots() {
        let hub = SpanHub::new(2);
        hub.record(&finished(OpKind::Arrive, 0, 100));
        hub.record(&finished(OpKind::Depart, 1, 200));
        hub.record(&finished(OpKind::Query, SpanRecord::SERVICE, 300));
        let mut text = String::new();
        hub.render_metrics(&mut text);
        assert!(
            text.contains("request_latency_ns_count{op=\"arrive\",shard=\"0\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("request_latency_ns_count{op=\"depart\",shard=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("request_latency_ns_count{op=\"query\",shard=\"svc\"} 1"),
            "{text}"
        );
        // All nine stages record per request, zeros included.
        assert!(
            text.contains("stage_latency_ns_count{op=\"arrive\",shard=\"0\",stage=\"recv\"} 1"),
            "{text}"
        );
        assert!(text.contains("dvbp_serve_slow_requests_total 0"), "{text}");
    }

    #[test]
    fn stage_sums_cross_check_against_total() {
        let hub = SpanHub::new(1);
        let mut span = Span::begin();
        span.set_op(OpKind::Arrive, 3);
        for stage in Stage::ALL {
            span.mark(stage);
        }
        hub.record(&span.finish(0, true));
        let stage_sum: u64 = hub.merged_stages().iter().map(LogHistogram::sum).sum();
        let total = hub.merged_total().sum();
        assert!(stage_sum <= total, "{stage_sum} vs {total}");
        // finish() adds only the post-last-mark tail beyond the stages.
        assert!(total - stage_sum < 1_000_000, "{stage_sum} vs {total}");
    }

    #[test]
    fn metrics_round_trip_through_the_parser() {
        let hub = SpanHub::new(2);
        for i in 0..100u64 {
            hub.record(&finished(OpKind::Arrive, (i % 2) as u32, i * i));
        }
        let mut text = String::new();
        hub.render_metrics(&mut text);
        let parsed = parse_histograms(&text, "dvbp_serve_request_latency_ns");
        assert_eq!(parsed.len(), 2);
        let mut merged = LogHistogram::new();
        for sh in &parsed {
            assert_eq!(sh.label("op"), "arrive");
            merged.merge(&sh.hist);
        }
        let expect = hub.merged_total();
        assert_eq!(merged.total(), expect.total());
        assert_eq!(merged.sum(), expect.sum());
        assert_eq!(merged.counts(), expect.counts());
        // Counts are identical, so quantiles land in the same bucket;
        // the scraped max is only the bucket's upper bound, so a
        // max-capped quantile can sit above the exact one (never below).
        for q in [0.5, 0.99, 0.999] {
            let (scraped, exact) = (merged.quantile(q), expect.quantile(q));
            assert!(scraped >= exact, "q={q}: {scraped} < {exact}");
            assert_eq!(
                LogHistogram::bucket_of(scraped),
                LogHistogram::bucket_of(exact),
                "q={q}"
            );
        }
    }

    #[test]
    fn slow_requests_land_in_the_keep_ring_and_dump() {
        let hub = SpanHub::with_config(1, 8, 8, 1_000);
        hub.record(&finished(OpKind::Arrive, 0, 100)); // fast
        hub.record(&finished(OpKind::Depart, 0, 5_000)); // slow
        assert_eq!(hub.slow_total(), 1);
        let dump = hub.dump_jsonl();
        let slow_lines: Vec<&str> = dump
            .lines()
            .filter(|l| l.contains("\"kind\":\"slow\""))
            .collect();
        assert_eq!(slow_lines.len(), 1);
        assert!(slow_lines[0].contains("\"op\":\"depart\""), "{dump}");
        // Every dumped line is valid JSON.
        for line in dump.lines() {
            serde_json::from_str::<serde_json::Value>(line).unwrap();
        }
    }

    #[test]
    fn spans_table_renders_rows_and_breakdown() {
        let hub = SpanHub::with_config(1, 8, 8, 1_000);
        hub.record(&finished(OpKind::Arrive, 0, 100));
        hub.record(&finished(OpKind::Depart, 0, 5_000));
        let table = render_spans_table(&hub.dump_jsonl(), 16);
        assert!(table.contains("recent requests"), "{table}");
        assert!(table.contains("slow requests (1 captured)"), "{table}");
        assert!(table.contains("per-stage breakdown"), "{table}");
        assert!(table.contains("dispatch"), "{table}");
        assert!(
            render_spans_table("", 16).contains("no spans captured"),
            "empty dump explains itself"
        );
    }

    #[test]
    fn build_info_has_version_and_profile() {
        let mut out = String::new();
        write_build_info(&mut out, "1.2.3", "scalar-scan");
        assert!(out.contains("# TYPE dvbp_build_info gauge"), "{out}");
        assert!(
            out.contains("dvbp_build_info{version=\"1.2.3\",features=\"scalar-scan\",profile="),
            "{out}"
        );
        assert!(out.trim_end().ends_with("1"), "{out}");
    }
}

//! **dvbp-serve**: a sharded online dispatch service over the
//! MinUsageTime DVBP engine, with write-ahead-log durability and crash
//! recovery.
//!
//! The batch crates replay complete instances; this crate turns the
//! same engine into a long-lived *service*: items arrive and depart
//! over a newline-delimited-JSON TCP protocol ([`protocol`]), a router
//! ([`router`]) spreads them over `N` independent engine shards, and
//! every accepted operation is journaled to a per-shard write-ahead log
//! in the `dvbp-obs` JSONL event format *before* it is acknowledged
//! ([`shard`]). After a crash, [`recovery`] replays each log through a
//! verified re-drive back to **bit-identical** in-memory state — the
//! conformance harness holds a one-shard service to exact equality with
//! the batch engine, at every possible crash point.
//!
//! ```text
//!        TCP (NDJSON + HTTP operator routes)
//!                      │
//!                 [server::serve]
//!                      │ route(id)
//!            ┌─────────┼─────────┐
//!        [Shard 0] [Shard 1] [Shard N-1]     shard = LiveEngine + WAL
//!            │         │         │
//!        shard-000  shard-001  shard-…  .wal  (JSONL ObsEvent groups)
//! ```
//!
//! See DESIGN.md ("Serving & durability") for the WAL group grammar and
//! the recovery contract.

pub mod client;
pub mod protocol;
pub mod recovery;
pub mod router;
pub mod server;
pub mod shard;
pub mod spans;
pub mod wal;

pub use client::{load_instance, Client, DriveReport};
pub use protocol::{Request, Response, ServeStatus, ShadowStatus, ShardStatus, SwitchEntry};
pub use recovery::{recover, Recovered, RecoveryError};
pub use router::{fnv1a, Router, RouterKind};
pub use server::{serve, ServeState, DEFAULT_READ_TIMEOUT_MS};
pub use shard::{PortfolioConfig, Shard, ShardError};
pub use spans::{
    http_get, parse_histograms, render_spans_table, write_build_info, ScrapedHistogram, SpanHub,
};
pub use wal::{open_shard, shard_wal_path, RecoveryReport, WalOpenError};

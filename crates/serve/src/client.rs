//! Driving client: replays any [`EventSource`] — a trace stream, a
//! generator, or a materialized [`Instance`] — against a running
//! service over TCP, in the canonical event order.
//!
//! Source item `i` is sent under the id `item-{i}`, so the id ↔ item
//! mapping is reproducible across runs — which makes the client
//! **idempotently resumable**: re-driving the same feed after a
//! service crash simply skips everything the recovered service already
//! knows (`duplicate-id` / `already-departed` rejections count as
//! [`DriveReport::skipped`], not errors). The CI serve-smoke job leans
//! on this: kill the service mid-drive, restart it on the same WAL,
//! re-drive from the top, and the final state must match an
//! uninterrupted run. Feeds with deterministic item indices (trace
//! parsers assign dense indices in arrival order) resume the same way.

use crate::protocol::{error_code, Request, Response, ServeStatus};
use dvbp_core::{EventSource, Instance, InstanceSource, LiveOp};
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

/// Outcome counts of one [`Client::drive_instance`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DriveReport {
    /// Arrivals acknowledged with `Placed`.
    pub placed: u64,
    /// Departures acknowledged with `Departed`.
    pub departed: u64,
    /// Operations the service already knew (`duplicate-id` /
    /// `already-departed`) — the idempotent-resume path.
    pub skipped: u64,
    /// Any other rejection.
    pub errors: u64,
}

/// The id item `i` of a driven instance is sent under.
#[must_use]
pub fn item_id(item: usize) -> String {
    format!("item-{item}")
}

/// Reads an instance trace file (the `dvbp` facade's JSON format).
///
/// # Errors
///
/// Renders read, parse, and validation failures.
pub fn load_instance(path: &Path) -> Result<Instance, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let instance: Instance =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    instance
        .validate()
        .map_err(|e| format!("invalid instance {}: {e}", path.display()))?;
    Ok(instance)
}

/// One NDJSON connection to a service.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: &str) -> io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        // Every call is a strict round trip; Nagle + delayed ACK would
        // add tens of milliseconds to each one.
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Sends one request and reads its response line.
    ///
    /// # Errors
    ///
    /// I/O failures, or an unparseable response line.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        let mut line = serde_json::to_string(req).map_err(io::Error::other)?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "service closed the connection",
            ));
        }
        serde_json::from_str(response.trim()).map_err(io::Error::other)
    }

    /// Fetches the service status.
    ///
    /// # Errors
    ///
    /// I/O failures, or a non-`Status` response.
    pub fn query(&mut self) -> io::Result<ServeStatus> {
        match self.call(&Request::Query)? {
            Response::Status(status) => Ok(status),
            other => Err(io::Error::other(format!("expected Status, got {other:?}"))),
        }
    }

    /// Requests graceful shutdown.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.call(&Request::Shutdown).map(|_| ())
    }

    /// Replays a streamed event feed in its own (canonical) order:
    /// source item `i` is sent as `item-{i}`. The feed is consumed one
    /// event at a time, so an arbitrarily long trace drives the service
    /// in constant client memory. `throttle` sleeps between operations
    /// — the CI smoke job uses it to widen the mid-drive kill window.
    ///
    /// # Errors
    ///
    /// Transport failures and source read failures only; service-level
    /// rejections are counted in the report.
    pub fn drive_source<S: EventSource + ?Sized>(
        &mut self,
        source: &mut S,
        throttle: Option<Duration>,
    ) -> io::Result<DriveReport> {
        let mut report = DriveReport::default();
        while let Some(op) = source.next_event().map_err(io::Error::other)? {
            let req = match op {
                LiveOp::Arrive { item, size, time } => Request::Arrive {
                    id: item_id(item),
                    size: size.as_slice().to_vec(),
                    time,
                },
                LiveOp::Depart { item, time } => Request::Depart {
                    id: item_id(item),
                    time,
                },
            };
            match self.call(&req)? {
                Response::Placed { .. } => report.placed += 1,
                Response::Departed { .. } => report.departed += 1,
                Response::Error { code, .. }
                    if code == error_code::DUPLICATE_ID || code == error_code::ALREADY_DEPARTED =>
                {
                    report.skipped += 1;
                }
                Response::Error { .. } => report.errors += 1,
                _ => report.errors += 1,
            }
            if let Some(pause) = throttle {
                std::thread::sleep(pause);
            }
        }
        Ok(report)
    }

    /// Replays `instance` in canonical timeline order (departures
    /// before arrivals at equal ticks) — [`drive_source`](Self::drive_source)
    /// over the instance's [`InstanceSource`].
    ///
    /// # Errors
    ///
    /// Transport failures only; service-level rejections are counted in
    /// the report.
    pub fn drive_instance(
        &mut self,
        instance: &Instance,
        throttle: Option<Duration>,
    ) -> io::Result<DriveReport> {
        let mut source = InstanceSource::new(instance).map_err(io::Error::other)?;
        self.drive_source(&mut source, throttle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RouterKind;
    use crate::server::{serve, ServeState};
    use dvbp_core::{Item, PolicyKind, TimeMode, TraceMode};
    use dvbp_dimvec::DimVec;
    use dvbp_obs::SyncPolicy;
    use std::net::TcpListener;
    use std::sync::Arc;

    fn instance() -> Instance {
        Instance::new(
            DimVec::from_slice(&[10, 10]),
            vec![
                Item::new(DimVec::from_slice(&[6, 2]), 0, 10),
                Item::new(DimVec::from_slice(&[2, 6]), 2, 5),
                Item::new(DimVec::from_slice(&[3, 3]), 5, 12),
            ],
        )
        .unwrap()
    }

    fn boot(shards: usize) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let state = Arc::new(
            ServeState::in_memory(
                &DimVec::from_slice(&[10, 10]),
                &PolicyKind::FirstFit,
                dvbp_core::RepackPolicy::NoRepack,
                shards,
                RouterKind::Hash,
                TraceMode::Full,
                TimeMode::Strict,
                SyncPolicy::PerEvent,
                None,
            )
            .unwrap(),
        );
        let handle = std::thread::spawn(move || serve(&state, &listener).unwrap());
        (addr, handle)
    }

    #[test]
    fn drive_reports_full_acknowledgement_and_resume_skips() {
        let (addr, srv) = boot(2);
        let inst = instance();
        let mut client = Client::connect(&addr.to_string()).unwrap();
        let report = client.drive_instance(&inst, None).unwrap();
        assert_eq!(report.placed, 3);
        assert_eq!(report.departed, 3);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.errors, 0);

        // Re-driving the identical instance is a no-op: every operation
        // is skipped as already-known.
        let report = client.drive_instance(&inst, None).unwrap();
        assert_eq!(report.placed, 0);
        assert_eq!(report.departed, 0);
        assert_eq!(report.skipped, 6);
        assert_eq!(report.errors, 0);

        let status = client.query().unwrap();
        assert_eq!(status.arrivals, 3);
        assert_eq!(status.departures, 3);
        client.shutdown().unwrap();
        srv.join().unwrap();
    }

    #[test]
    fn streamed_feed_drives_the_service_without_materializing() {
        // A generator source through drive_source: every event is
        // acknowledged, and re-driving the identical stream resumes
        // idempotently, exactly like the instance path.
        let (addr, srv) = boot(2);
        let gen = dvbp_traces::HeavyTail::new(40, DimVec::from_slice(&[10, 10]), 11);
        let mut client = Client::connect(&addr.to_string()).unwrap();
        let report = client.drive_source(&mut gen.source(), None).unwrap();
        assert_eq!(report.placed, 40);
        assert_eq!(report.departed, 40);
        assert_eq!(report.errors, 0);

        let report = client.drive_source(&mut gen.source(), None).unwrap();
        assert_eq!(report.placed, 0);
        assert_eq!(report.skipped, 80);
        assert_eq!(report.errors, 0);

        let status = client.query().unwrap();
        assert_eq!(status.arrivals, 40);
        assert_eq!(status.departures, 40);
        client.shutdown().unwrap();
        srv.join().unwrap();
    }
}

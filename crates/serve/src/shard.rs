//! One dispatch shard: a [`LiveEngine`] fronted by a write-ahead log.
//!
//! Every accepted operation is journaled to the shard's WAL — in the
//! `dvbp-obs` [`ObsEvent`] JSONL format — *before* the shard
//! acknowledges it, so a restart can replay the log back to the exact
//! in-memory state (see [`crate::recovery`]).
//!
//! # WAL group grammar
//!
//! The log is a header followed by one *group* of lines per accepted
//! operation; the **last line of a group is its commit line** — a group
//! whose commit line is missing (torn write) was never acknowledged and
//! is dropped on recovery:
//!
//! ```text
//! header        := RunStart{capacity, items: 0}
//! arrival group := Ident{item, id}  Arrival{time, item, size}
//!                  BinOpen{time, bin}?            // iff a bin was opened
//!                  Place{time, item, bin, opened_new, scanned: 0}
//! depart group  := Depart{time, item, bin}
//!                  BinClose{time, bin}?           // iff the bin closed
//!                  ( Migrate{time, item, from, to}
//!                    BinClose{time, bin: from}? )*  // repack moves
//! switch group  := PolicySwitch{time, from, to}   // single line = its
//!                                                 // own commit line
//! ```
//!
//! A switch group is journaled *after* the depart group whose bin
//! close(s) tripped the shard's [`MetaPolicy`] (switches happen only at
//! bin-close boundaries). Recovery re-applies journaled switches
//! **verbatim** — it never re-runs the meta-policy — so a crash between
//! a committed depart group and its switch line simply means the switch
//! was never acknowledged and the replayed shard stays on the outgoing
//! policy, exactly the pre-switch state the log describes.
//!
//! The configured [`SyncPolicy`] is applied at each group's commit line
//! (so `batch:N` counts *operations*, not lines). A depart group whose
//! bin stays open and that triggers no repacking commits on the
//! `Depart` line itself; the resulting trailing-group ambiguity after a
//! crash — the journaled group is a strict prefix of what a replay
//! produces — is resolved by re-driving without it (see `recovery`).
//! Migration lines are part of the *same* group as the departure that
//! triggered them: repacking is deterministic given the engine state,
//! so an unacknowledged departure must roll back its migrations too.
//!
//! # Ordering
//!
//! Apply-then-journal: the engine decides the placement first (the
//! journal needs the chosen bin), the group is written and persisted
//! per policy, and only then is the operation acknowledged. If the WAL
//! write fails after the engine applied, the shard **poisons** itself —
//! it rejects all further mutations — so the unacknowledged divergence
//! between memory and log can never grow; a restart recovers the
//! pre-operation state, which is correct because the operation was
//! never acked.

use crate::protocol::{ShadowStatus, ShardStatus, SwitchEntry};
use dvbp_core::{
    LiveDeparture, LiveEngine, LiveError, LivePlacement, LiveRequest, PolicyKind, RepackPolicy,
    TimeMode, TraceMode,
};
use dvbp_dimvec::DimVec;
use dvbp_obs::{JsonlEmitter, ObsEvent, Span, StableWrite, Stage, SyncPolicy};
use dvbp_portfolio::{MetaPolicy, PortfolioError, PortfolioState};
use dvbp_sim::Time;
use std::collections::HashMap;

/// The service-level portfolio configuration: which candidates to
/// shadow and which [`MetaPolicy`] decides switches. One config is
/// shared by every shard (each shard runs its own independent
/// [`PortfolioState`] over its own stream).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// Candidate policies (the live policy is added when missing).
    pub candidates: Vec<PolicyKind>,
    /// The switching discipline.
    pub meta: MetaPolicy,
}

/// Ends the current stage on a span that may not be there. The traced
/// and untraced entry points share one implementation; `None`
/// monomorphizes every mark to a no-op branch.
fn mark(span: &mut Option<&mut Span>, stage: Stage) {
    if let Some(s) = span {
        s.mark(stage);
    }
}

/// A rejected shard operation. The shard state is unchanged except for
/// [`ShardError::Wal`], which poisons the shard (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// The arrival id is already in use (ids are permanent — departed
    /// items keep theirs, which is what makes client retries safe).
    DuplicateId {
        /// The rejected id.
        id: String,
    },
    /// Departure for an id this shard has never admitted.
    UnknownId {
        /// The unknown id.
        id: String,
    },
    /// Departure for an id that already departed.
    AlreadyDeparted {
        /// The repeated id.
        id: String,
    },
    /// The live engine rejected the operation (validation, time
    /// discipline).
    Live(LiveError),
    /// The portfolio configuration was rejected (clairvoyant candidate,
    /// empty candidate list).
    Portfolio {
        /// The rendered [`PortfolioError`].
        msg: String,
    },
    /// The write-ahead log failed; the shard no longer accepts writes.
    Wal {
        /// The latched emitter error, rendered.
        msg: String,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::DuplicateId { id } => write!(f, "id {id:?} already in use"),
            ShardError::UnknownId { id } => write!(f, "unknown id {id:?}"),
            ShardError::AlreadyDeparted { id } => write!(f, "id {id:?} already departed"),
            ShardError::Live(e) => write!(f, "{e}"),
            ShardError::Portfolio { msg } => write!(f, "portfolio rejected: {msg}"),
            ShardError::Wal { msg } => write!(f, "write-ahead log failed: {msg}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<LiveError> for ShardError {
    fn from(e: LiveError) -> Self {
        ShardError::Live(e)
    }
}

impl From<PortfolioError> for ShardError {
    fn from(e: PortfolioError) -> Self {
        match e {
            PortfolioError::Live(e) => ShardError::Live(e),
            other => ShardError::Portfolio {
                msg: other.to_string(),
            },
        }
    }
}

/// One dispatch shard: live engine, WAL, and the id ↔ run-local-index
/// tables.
pub struct Shard<W: StableWrite> {
    live: LiveEngine,
    wal: JsonlEmitter<W>,
    /// Shadow portfolio + meta-policy state; `None` runs the classic
    /// single-policy shard byte-identically.
    portfolio: Option<PortfolioState>,
    /// External id → run-local item index. Entries are permanent.
    ids: HashMap<String, usize>,
    /// Run-local item index → external id.
    names: Vec<String>,
    arrivals: u64,
    departures: u64,
    /// Events replayed from the WAL at construction (0 for a fresh
    /// shard).
    recovered_events: u64,
    poisoned: bool,
}

impl<W: StableWrite> Shard<W> {
    /// Creates a fresh shard over an empty WAL sink and journals the
    /// header line. With a [`PortfolioConfig`], every candidate gets a
    /// cost-only shadow engine and the config's meta-policy may switch
    /// the live policy at bin-close boundaries (journaled as switch
    /// groups).
    ///
    /// # Errors
    ///
    /// [`ShardError::Live`] for clairvoyant policy kinds (live or
    /// candidate); [`ShardError::Wal`] if the header cannot be
    /// persisted.
    #[allow(clippy::too_many_arguments)] // the shard's full configuration surface
    pub fn create(
        capacity: DimVec,
        kind: &PolicyKind,
        repack: RepackPolicy,
        trace: TraceMode,
        time_mode: TimeMode,
        sink: W,
        sync: SyncPolicy,
        portfolio: Option<&PortfolioConfig>,
    ) -> Result<Self, ShardError> {
        let live = LiveRequest::new(kind.clone())
            .capacity(capacity)
            .trace_mode(trace)
            .time_mode(time_mode)
            .repack(repack)
            .build()?;
        let portfolio = portfolio
            .map(|cfg| {
                PortfolioState::new(
                    &live.capacity().clone(),
                    live.time_mode(),
                    &cfg.candidates,
                    live.kind(),
                    cfg.meta,
                    0,
                )
            })
            .transpose()?;
        let mut wal = JsonlEmitter::new(sink).with_sync(sync);
        let header = ObsEvent::RunStart {
            capacity: live.capacity().as_slice().to_vec(),
            items: 0,
        };
        if !wal.emit_durable(&header) {
            return Err(wal_error(&wal));
        }
        Ok(Shard {
            live,
            wal,
            portfolio,
            ids: HashMap::new(),
            names: Vec::new(),
            arrivals: 0,
            departures: 0,
            recovered_events: 0,
            poisoned: false,
        })
    }

    /// Re-assembles a shard from recovered state (see
    /// [`crate::recovery::recover`]) and a WAL emitter positioned at the
    /// end of the log's valid prefix. `portfolio` is the recovery's
    /// replayed portfolio state (switch history and shadow costs are
    /// replay-identical to the pre-crash process).
    pub fn resume(
        live: LiveEngine,
        ids: HashMap<String, usize>,
        names: Vec<String>,
        recovered_events: u64,
        wal: JsonlEmitter<W>,
        portfolio: Option<PortfolioState>,
    ) -> Self {
        let departures = names
            .iter()
            .enumerate()
            .filter(|&(item, _)| live.has_departed(item))
            .count() as u64;
        Shard {
            arrivals: names.len() as u64,
            departures,
            live,
            wal,
            portfolio,
            ids,
            names,
            recovered_events,
            poisoned: false,
        }
    }

    fn check_writable(&self) -> Result<(), ShardError> {
        if self.poisoned {
            Err(wal_error(&self.wal))
        } else {
            Ok(())
        }
    }

    /// Admits an item under `id`, journals the arrival group, and
    /// returns the placement.
    ///
    /// # Errors
    ///
    /// [`ShardError::DuplicateId`] for a reused id (including departed
    /// items' ids); [`ShardError::Live`] for engine rejections (state
    /// unchanged); [`ShardError::Wal`] if journaling fails (shard
    /// poisons).
    pub fn arrive(
        &mut self,
        id: &str,
        size: DimVec,
        time: Time,
    ) -> Result<LivePlacement, ShardError> {
        self.arrive_impl(id, size, time, None)
    }

    /// [`arrive`](Shard::arrive) with per-stage latency attribution:
    /// charges the engine's placement to `dispatch`, the group's journal
    /// writes to `wal_append`, and the commit-line durability point to
    /// `wal_sync`. Identical decisions, WAL bytes, and errors — timing
    /// is observational only.
    ///
    /// # Errors
    ///
    /// Exactly as [`arrive`](Shard::arrive).
    pub fn arrive_traced(
        &mut self,
        id: &str,
        size: DimVec,
        time: Time,
        span: &mut Span,
    ) -> Result<LivePlacement, ShardError> {
        self.arrive_impl(id, size, time, Some(span))
    }

    fn arrive_impl(
        &mut self,
        id: &str,
        size: DimVec,
        time: Time,
        mut span: Option<&mut Span>,
    ) -> Result<LivePlacement, ShardError> {
        self.check_writable()?;
        if self.ids.contains_key(id) {
            return Err(ShardError::DuplicateId { id: id.to_string() });
        }
        let size_units = size.as_slice().to_vec();
        let mirror_size = self.portfolio.as_ref().map(|_| size.clone());
        let placed = self.live.arrive(size, time)?;
        mark(&mut span, Stage::Dispatch);
        self.wal.emit(&ObsEvent::Ident {
            item: placed.item,
            id: id.to_string(),
        });
        self.wal.emit(&ObsEvent::Arrival {
            time: placed.time,
            item: placed.item,
            size: size_units,
        });
        if placed.opened_new {
            self.wal.emit(&ObsEvent::BinOpen {
                time: placed.time,
                bin: placed.bin.0,
            });
        }
        self.wal.emit(&ObsEvent::Place {
            time: placed.time,
            item: placed.item,
            bin: placed.bin.0,
            opened_new: placed.opened_new,
            scanned: 0,
        });
        mark(&mut span, Stage::WalAppend);
        let committed = self.wal.commit();
        mark(&mut span, Stage::WalSync);
        if !committed {
            self.poisoned = true;
            return Err(wal_error(&self.wal));
        }
        if let (Some(pf), Some(sz)) = (self.portfolio.as_mut(), mirror_size.as_ref()) {
            pf.on_arrive(sz, placed.time);
        }
        self.ids.insert(id.to_string(), placed.item);
        self.names.push(id.to_string());
        self.arrivals += 1;
        Ok(placed)
    }

    /// Retires the item admitted under `id`, journals the depart group,
    /// and returns the departure.
    ///
    /// # Errors
    ///
    /// [`ShardError::UnknownId`] / [`ShardError::AlreadyDeparted`] for
    /// bad ids; [`ShardError::Live`] for engine rejections (state
    /// unchanged); [`ShardError::Wal`] if journaling fails (shard
    /// poisons).
    pub fn depart(&mut self, id: &str, time: Time) -> Result<LiveDeparture, ShardError> {
        self.depart_impl(id, time, None)
    }

    /// [`depart`](Shard::depart) with per-stage latency attribution:
    /// the engine's departure step lands in `dispatch`, repack-policy
    /// migrations in `repack` (split via the engine's
    /// `depart_with_mark` seam), journal writes in `wal_append`, and
    /// the commit-line durability point in `wal_sync`. Identical
    /// decisions, WAL bytes, and errors.
    ///
    /// # Errors
    ///
    /// Exactly as [`depart`](Shard::depart).
    pub fn depart_traced(
        &mut self,
        id: &str,
        time: Time,
        span: &mut Span,
    ) -> Result<LiveDeparture, ShardError> {
        self.depart_impl(id, time, Some(span))
    }

    fn depart_impl(
        &mut self,
        id: &str,
        time: Time,
        mut span: Option<&mut Span>,
    ) -> Result<LiveDeparture, ShardError> {
        self.check_writable()?;
        let Some(&item) = self.ids.get(id) else {
            return Err(ShardError::UnknownId { id: id.to_string() });
        };
        if self.live.has_departed(item) {
            return Err(ShardError::AlreadyDeparted { id: id.to_string() });
        }
        let dep = self
            .live
            .depart_with_mark(item, time, || mark(&mut span, Stage::Dispatch))?;
        mark(&mut span, Stage::Repack);
        // Assemble the whole group, then journal all lines but the
        // last with `emit` and the last — the commit line — durably.
        let mut lines = vec![ObsEvent::Depart {
            time: dep.time,
            item: dep.item,
            bin: dep.bin.0,
        }];
        if dep.closed {
            lines.push(ObsEvent::BinClose {
                time: dep.time,
                bin: dep.bin.0,
            });
        }
        for m in &dep.migrations {
            lines.push(ObsEvent::Migrate {
                time: dep.time,
                item: m.item,
                from: m.from.0,
                to: m.to.0,
            });
            if m.closed_from {
                lines.push(ObsEvent::BinClose {
                    time: dep.time,
                    bin: m.from.0,
                });
            }
        }
        let commit_line = lines.pop().expect("group has at least the Depart line");
        for line in &lines {
            self.wal.emit(line);
        }
        self.wal.emit(&commit_line);
        mark(&mut span, Stage::WalAppend);
        let committed = self.wal.commit();
        mark(&mut span, Stage::WalSync);
        if !committed {
            self.poisoned = true;
            return Err(wal_error(&self.wal));
        }
        self.departures += 1;
        // The departure is durable; mirror it into the portfolio and —
        // when its bin close(s) trip the meta-policy — apply the switch
        // and journal it as its own single-line group. A crash before
        // that line commits leaves the switch unacknowledged: recovery
        // replays the depart and stays on the outgoing policy.
        if let Some(pf) = self.portfolio.as_mut() {
            let closes = u64::from(dep.closed)
                + dep.migrations.iter().filter(|m| m.closed_from).count() as u64;
            if let Some(kind) = pf.on_depart(item, dep.time, closes) {
                let from = self.live.kind().spec();
                self.live
                    .switch_policy(kind.clone())
                    .expect("portfolio candidates are validated non-clairvoyant");
                pf.record_switch(&kind, dep.time)
                    .expect("proposed kinds come from the candidate list");
                self.wal.emit(&ObsEvent::PolicySwitch {
                    time: dep.time,
                    from,
                    to: kind.spec(),
                });
                if !self.wal.commit() {
                    self.poisoned = true;
                    return Err(wal_error(&self.wal));
                }
            }
        }
        Ok(dep)
    }

    /// Forces the WAL onto stable storage (shutdown path for
    /// [`SyncPolicy::OnClose`] / pending `batch:N` tails). Returns
    /// `false` (and poisons) on failure.
    pub fn persist(&mut self) -> bool {
        if self.poisoned {
            return false;
        }
        if !self.wal.persist() {
            self.poisoned = true;
            return false;
        }
        true
    }

    /// The underlying live engine (read-only).
    #[must_use]
    pub fn live(&self) -> &LiveEngine {
        &self.live
    }

    /// Consumes the shard, returning the live engine (conformance
    /// snapshotting).
    #[must_use]
    pub fn into_live(self) -> LiveEngine {
        self.live
    }

    /// External id → run-local index table.
    #[must_use]
    pub fn ids(&self) -> &HashMap<String, usize> {
        &self.ids
    }

    /// Run-local index → external id table.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Whether a WAL failure has made the shard read-only.
    #[must_use]
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Events replayed from the WAL when this shard was resumed.
    #[must_use]
    pub fn recovered_events(&self) -> u64 {
        self.recovered_events
    }

    /// WAL lines written since construction (excludes recovered lines).
    #[must_use]
    pub fn wal_lines(&self) -> u64 {
        self.wal.lines()
    }

    /// The shard's portfolio state, when one is running.
    #[must_use]
    pub fn portfolio(&self) -> Option<&PortfolioState> {
        self.portfolio.as_ref()
    }

    /// The shard's slice of a [`crate::protocol::ServeStatus`].
    #[must_use]
    pub fn status(&self, shard: usize) -> ShardStatus {
        let (switch_history, shadows) = match &self.portfolio {
            None => (Vec::new(), Vec::new()),
            Some(pf) => (
                pf.switches()
                    .iter()
                    .map(|s| SwitchEntry {
                        time: s.time,
                        from: s.from.clone(),
                        to: s.to.clone(),
                    })
                    .collect(),
                pf.scoreboard(self.live.now())
                    .iter()
                    .map(|s| ShadowStatus {
                        policy: s.policy.clone(),
                        cost: s.cost.to_string(),
                        lb: s.lb.to_string(),
                    })
                    .collect(),
            ),
        };
        ShardStatus {
            shard,
            policy: self.live.kind().spec(),
            policy_switches: self.live.policy_switches(),
            switch_history,
            shadows,
            arrivals: self.arrivals,
            departures: self.departures,
            active_items: self.live.active_items() as u64,
            open_bins: self.live.open_bins() as u64,
            bins_opened: self.live.bins_opened() as u64,
            migrations: self.live.migrations(),
            migration_cost: self.live.migration_cost(),
            usage_time: self.live.usage_time_at(self.live.now()).to_string(),
            wal_lines: self.wal.lines(),
            last_time: self.live.now(),
        }
    }
}

impl Shard<Vec<u8>> {
    /// Consumes an in-memory shard into its engine and WAL bytes (the
    /// conformance layer snapshots the packing *and* cuts the log at
    /// arbitrary offsets).
    #[must_use]
    pub fn into_parts(self) -> (LiveEngine, Vec<u8>) {
        let wal = self
            .wal
            .finish()
            .expect("an in-memory WAL sink cannot fail");
        (self.live, wal)
    }

    /// Consumes an in-memory shard and returns its WAL bytes.
    #[must_use]
    pub fn into_wal_bytes(self) -> Vec<u8> {
        self.into_parts().1
    }
}

fn wal_error<W: StableWrite>(wal: &JsonlEmitter<W>) -> ShardError {
    ShardError::Wal {
        msg: wal
            .error()
            .map_or_else(|| "unknown".to_string(), |e| e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbp_obs::scan_wal;
    use std::io::{self, Write};

    fn shard() -> Shard<Vec<u8>> {
        Shard::create(
            DimVec::from_slice(&[10, 10]),
            &PolicyKind::FirstFit,
            RepackPolicy::NoRepack,
            TraceMode::Full,
            TimeMode::Strict,
            Vec::new(),
            SyncPolicy::PerEvent,
            None,
        )
        .unwrap()
    }

    /// A one-dimensional portfolio shard: NextFit live, FirstFit in the
    /// shadows, switching under the given meta-policy.
    fn portfolio_shard(meta: MetaPolicy) -> Shard<Vec<u8>> {
        Shard::create(
            DimVec::from_slice(&[10]),
            &PolicyKind::NextFit,
            RepackPolicy::NoRepack,
            TraceMode::CostOnly,
            TimeMode::Strict,
            Vec::new(),
            SyncPolicy::PerEvent,
            Some(&PortfolioConfig {
                candidates: vec![PolicyKind::FirstFit, PolicyKind::NextFit],
                meta,
            }),
        )
        .unwrap()
    }

    #[test]
    fn arrival_groups_follow_the_grammar() {
        let mut s = shard();
        s.arrive("a", DimVec::from_slice(&[6, 6]), 0).unwrap();
        s.arrive("b", DimVec::from_slice(&[2, 2]), 1).unwrap();
        s.arrive("c", DimVec::from_slice(&[6, 6]), 2).unwrap(); // new bin
        let dep = s.depart("b", 3).unwrap();
        assert!(!dep.closed);
        let dep = s.depart("a", 4).unwrap();
        assert!(dep.closed);

        let sink = s.wal.finish().unwrap();
        let scan = scan_wal(&sink).unwrap();
        assert_eq!(scan.torn_bytes, 0);
        let kinds: Vec<&'static str> = scan
            .events
            .iter()
            .map(|e| match e {
                ObsEvent::RunStart { .. } => "RunStart",
                ObsEvent::Ident { .. } => "Ident",
                ObsEvent::Arrival { .. } => "Arrival",
                ObsEvent::BinOpen { .. } => "BinOpen",
                ObsEvent::Place { .. } => "Place",
                ObsEvent::Depart { .. } => "Depart",
                ObsEvent::BinClose { .. } => "BinClose",
                _ => "other",
            })
            .collect();
        assert_eq!(
            kinds,
            [
                "RunStart", "Ident", "Arrival", "BinOpen", "Place", // a opens bin 0
                "Ident", "Arrival", "Place", // b joins bin 0
                "Ident", "Arrival", "BinOpen", "Place",  // c opens bin 1
                "Depart", // b leaves, bin 0 stays open
                "Depart", "BinClose", // a leaves, bin 0 closes
            ]
        );
    }

    #[test]
    fn migration_lines_extend_the_depart_group() {
        let mut s = Shard::create(
            DimVec::from_slice(&[10, 10]),
            &PolicyKind::FirstFit,
            RepackPolicy::DrainOnDepart { k: 1 },
            TraceMode::Full,
            TimeMode::Strict,
            Vec::new(),
            SyncPolicy::PerEvent,
            None,
        )
        .unwrap();
        s.arrive("a", DimVec::from_slice(&[7, 7]), 0).unwrap(); // bin 0
        s.arrive("b", DimVec::from_slice(&[7, 7]), 1).unwrap(); // bin 1
        s.arrive("c", DimVec::from_slice(&[2, 2]), 2).unwrap(); // bin 0
        let dep = s.depart("a", 3).unwrap(); // drains c into bin 1
        assert_eq!(dep.migrations.len(), 1);
        let sink = s.wal.finish().unwrap();
        let scan = scan_wal(&sink).unwrap();
        let tail: Vec<&ObsEvent> = scan.events.iter().rev().take(3).collect();
        assert!(matches!(tail[2], ObsEvent::Depart { item: 0, .. }));
        assert!(matches!(
            tail[1],
            ObsEvent::Migrate {
                item: 2,
                from: 0,
                to: 1,
                ..
            }
        ));
        assert!(
            matches!(tail[0], ObsEvent::BinClose { bin: 0, .. }),
            "the drained source bin's close commits the group"
        );
    }

    #[test]
    fn duplicate_and_unknown_ids_are_rejected() {
        let mut s = shard();
        s.arrive("a", DimVec::from_slice(&[1, 1]), 0).unwrap();
        assert!(matches!(
            s.arrive("a", DimVec::from_slice(&[1, 1]), 1),
            Err(ShardError::DuplicateId { .. })
        ));
        assert!(matches!(
            s.depart("ghost", 1),
            Err(ShardError::UnknownId { .. })
        ));
        s.depart("a", 1).unwrap();
        assert!(matches!(
            s.depart("a", 2),
            Err(ShardError::AlreadyDeparted { .. })
        ));
        // The id stays burned after departure.
        assert!(matches!(
            s.arrive("a", DimVec::from_slice(&[1, 1]), 3),
            Err(ShardError::DuplicateId { .. })
        ));
    }

    #[test]
    fn rejected_operations_leave_no_journal_trace() {
        let mut s = shard();
        let before = s.wal_lines();
        assert!(s.arrive("x", DimVec::from_slice(&[11, 1]), 0).is_err()); // oversized
        assert!(s.depart("x", 1).is_err());
        assert_eq!(s.wal_lines(), before);
        assert_eq!(s.live().items_seen(), 0);
    }

    /// Fails every write after the first `ok_writes`.
    struct FlakysSink {
        ok_writes: usize,
        seen: usize,
    }
    impl Write for FlakysSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.seen += 1;
            if self.seen > self.ok_writes {
                Err(io::Error::other("disk detached"))
            } else {
                Ok(buf.len())
            }
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    impl StableWrite for FlakysSink {
        fn persist(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn wal_failure_poisons_the_shard() {
        let mut s = Shard::create(
            DimVec::from_slice(&[10]),
            &PolicyKind::FirstFit,
            RepackPolicy::NoRepack,
            TraceMode::CostOnly,
            TimeMode::Strict,
            // One writeln! is one write call; allow the header + one
            // line, then fail mid-group.
            FlakysSink {
                ok_writes: 2,
                seen: 0,
            },
            SyncPolicy::PerEvent,
            None,
        )
        .unwrap();
        let err = s.arrive("a", DimVec::from_slice(&[5]), 0).unwrap_err();
        assert!(matches!(err, ShardError::Wal { .. }), "{err}");
        assert!(s.poisoned());
        // Everything afterwards is rejected without touching the engine.
        let items = s.live().items_seen();
        assert!(matches!(
            s.arrive("b", DimVec::from_slice(&[1]), 1),
            Err(ShardError::Wal { .. })
        ));
        assert_eq!(s.live().items_seen(), items);
        assert!(!s.persist());
    }

    #[test]
    fn status_reports_live_counters() {
        let mut s = shard();
        s.arrive("a", DimVec::from_slice(&[6, 6]), 0).unwrap();
        s.arrive("b", DimVec::from_slice(&[6, 6]), 2).unwrap();
        s.depart("a", 5).unwrap();
        let st = s.status(3);
        assert_eq!(st.shard, 3);
        assert_eq!(st.arrivals, 2);
        assert_eq!(st.departures, 1);
        assert_eq!(st.active_items, 1);
        assert_eq!(st.open_bins, 1);
        assert_eq!(st.bins_opened, 2);
        // bin 0: [0,5) closed = 5; bin 1: open since 2, now=5 → 3.
        assert_eq!(st.usage_time, "8");
        assert_eq!(st.last_time, 5);
        assert_eq!(st.policy, "FirstFit");
        assert_eq!(st.policy_switches, 0);
        assert!(st.switch_history.is_empty());
        assert!(st.shadows.is_empty(), "no portfolio, no scoreboard");
    }

    /// NextFit strands capacity here: the blocker fills a fresh bin and
    /// becomes current, so the follow-up opens a third bin while
    /// FirstFit rides the first.
    fn drive_blocker(s: &mut Shard<Vec<u8>>) {
        s.arrive("small", DimVec::from_slice(&[3]), 0).unwrap(); // b0
        s.arrive("blocker", DimVec::from_slice(&[10]), 1).unwrap(); // b1
        s.arrive("tail", DimVec::from_slice(&[3]), 2).unwrap(); // NF: b2
    }

    #[test]
    fn switch_group_is_journaled_after_the_closing_depart() {
        let mut s = portfolio_shard(MetaPolicy::BestOf { window: 1 });
        drive_blocker(&mut s);
        let dep = s.depart("blocker", 3).unwrap();
        assert!(dep.closed, "the blocker was alone in its bin");
        assert_eq!(s.live().kind(), &PolicyKind::FirstFit, "best-of:1 flips");
        let st = s.status(0);
        assert_eq!(st.policy, "FirstFit");
        assert_eq!(st.policy_switches, 1);
        assert_eq!(st.switch_history.len(), 1);
        assert_eq!(st.switch_history[0].from, "NextFit");
        assert_eq!(st.switch_history[0].to, "FirstFit");
        assert_eq!(st.switch_history[0].time, 3);
        assert_eq!(st.shadows.len(), 2, "one scoreboard row per candidate");

        let bytes = s.into_wal_bytes();
        let scan = scan_wal(&bytes).unwrap();
        let tail: Vec<&ObsEvent> = scan.events.iter().rev().take(3).collect();
        assert!(
            matches!(
                tail[0],
                ObsEvent::PolicySwitch { time: 3, from, to }
                    if from == "NextFit" && to == "FirstFit"
            ),
            "the switch group follows the depart group: {tail:?}"
        );
        assert!(matches!(tail[1], ObsEvent::BinClose { .. }));
        assert!(matches!(tail[2], ObsEvent::Depart { .. }));
    }

    #[test]
    fn departures_without_closes_never_switch() {
        let mut s = portfolio_shard(MetaPolicy::BestOf { window: 1 });
        drive_blocker(&mut s);
        // "small" departs but "tail"... sits in its own NF bin; depart
        // nothing-sharing "small" -> its bin b0 closes? b0 holds only
        // "small" under NextFit, so pick the pair that keeps b0 open:
        // add a bin-mate first.
        s.arrive("mate", DimVec::from_slice(&[2]), 3).unwrap(); // NF current b2 fits [2]
        let dep = s.depart("tail", 4).unwrap(); // b2 keeps "mate": no close
        assert!(!dep.closed);
        assert_eq!(s.live().kind(), &PolicyKind::NextFit, "no close, no switch");
        assert_eq!(s.status(0).policy_switches, 0);
    }

    #[test]
    fn static_portfolio_wal_is_byte_identical_to_single_policy() {
        let mut plain = Shard::create(
            DimVec::from_slice(&[10]),
            &PolicyKind::NextFit,
            RepackPolicy::NoRepack,
            TraceMode::CostOnly,
            TimeMode::Strict,
            Vec::new(),
            SyncPolicy::PerEvent,
            None,
        )
        .unwrap();
        let mut pf = portfolio_shard(MetaPolicy::Static);
        drive_blocker(&mut plain);
        drive_blocker(&mut pf);
        for (id, t) in [("blocker", 3), ("small", 4), ("tail", 5)] {
            assert_eq!(pf.depart(id, t).unwrap(), plain.depart(id, t).unwrap());
        }
        let st = pf.status(0);
        assert_eq!(st.policy, "NextFit");
        assert_eq!(st.policy_switches, 0);
        assert_eq!(st.shadows.len(), 2, "shadows still score under static");
        assert_eq!(
            pf.into_wal_bytes(),
            plain.into_wal_bytes(),
            "static meta never journals a switch group"
        );
    }
}

//! The wire protocol: newline-delimited JSON over TCP.
//!
//! One [`Request`] per line in, one [`Response`] per line out, in
//! order. Requests are externally tagged JSON — the exact grammar is
//! documented in DESIGN.md ("Serving & durability"); a session looks
//! like:
//!
//! ```text
//! > {"Arrive":{"id":"vm-1","size":[2,3],"time":0}}
//! < {"Placed":{"id":"vm-1","shard":0,"item":0,"bin":0,"opened_new":true,"time":0}}
//! > {"Depart":{"id":"vm-1","time":5}}
//! < {"Departed":{"id":"vm-1","shard":0,"item":0,"bin":0,"closed":true,"time":5}}
//! > "Query"
//! < {"Status":{...}}
//! ```
//!
//! Identifiers are client-chosen opaque strings and are *permanent*:
//! re-using a departed item's id is rejected (`duplicate-id`), which is
//! what makes blind client retries after a crash idempotent.

use serde::{Deserialize, Serialize};

/// One client request (one JSON value per line).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Request {
    /// Admit an item under a client-chosen id.
    Arrive {
        /// Client-chosen opaque identifier, unique for the lifetime of
        /// the service.
        id: String,
        /// Resource demand vector (must match the service dimension).
        size: Vec<u64>,
        /// Arrival tick.
        time: u64,
    },
    /// Retire a previously admitted item.
    Depart {
        /// The id given at arrival.
        id: String,
        /// Departure tick.
        time: u64,
    },
    /// Snapshot of service totals and per-shard state.
    Query,
    /// Stop the service gracefully (persist WALs, exit accept loop).
    Shutdown,
}

/// Machine-readable rejection categories carried by [`Response::Error`].
pub mod error_code {
    /// The id is already in use (or was used by a departed item).
    pub const DUPLICATE_ID: &str = "duplicate-id";
    /// Departure for an id that never arrived.
    pub const UNKNOWN_ID: &str = "unknown-id";
    /// Departure for an id that already departed.
    pub const ALREADY_DEPARTED: &str = "already-departed";
    /// The item itself is invalid (dimension, oversized, zero size).
    pub const INVALID_ITEM: &str = "invalid-item";
    /// Strict time mode rejected the timestamp.
    pub const OUT_OF_ORDER: &str = "out-of-order";
    /// The write-ahead log failed; the shard no longer accepts writes.
    pub const WAL: &str = "wal";
    /// The portfolio layer rejected the configuration or operation.
    pub const PORTFOLIO: &str = "portfolio";
    /// The request line did not parse.
    pub const BAD_REQUEST: &str = "bad-request";
    /// The service is shutting down.
    pub const SHUTTING_DOWN: &str = "shutting-down";
    /// The connection stalled mid-request past the read timeout.
    pub const TIMEOUT: &str = "timeout";
}

/// One service response (one JSON value per line, matching the request
/// order).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The arrival was journaled and placed.
    Placed {
        /// Echo of the request id.
        id: String,
        /// Shard that owns the item.
        shard: usize,
        /// Shard-local dense item index.
        item: usize,
        /// Shard-local receiving bin index.
        bin: usize,
        /// Whether the bin was opened for this item.
        opened_new: bool,
        /// Effective tick (may exceed the request's in clamp mode).
        time: u64,
    },
    /// The departure was journaled and applied.
    Departed {
        /// Echo of the request id.
        id: String,
        /// Shard that owned the item.
        shard: usize,
        /// Shard-local item index.
        item: usize,
        /// Shard-local bin index departed from.
        bin: usize,
        /// Whether the departure closed the bin.
        closed: bool,
        /// Repack migrations this departure triggered (see
        /// `--repack`); 0 unless a repacking policy is active.
        migrations: u64,
        /// Effective tick.
        time: u64,
    },
    /// Snapshot answering [`Request::Query`].
    Status(ServeStatus),
    /// The request was rejected; no state changed.
    Error {
        /// One of the [`error_code`] constants.
        code: String,
        /// Human-readable cause.
        message: String,
    },
    /// Shutdown acknowledged; the connection closes after this line.
    ShuttingDown,
}

/// One applied policy switch, as journaled in the WAL (`PolicySwitch`
/// group) and replayed verbatim on recovery.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchEntry {
    /// Tick of the triggering bin close.
    pub time: u64,
    /// Outgoing policy (round-trippable spelling).
    pub from: String,
    /// Incoming policy (round-trippable spelling).
    pub to: String,
}

/// One shadow engine's scoreboard row: the cost its candidate policy
/// would have accumulated over the shard's accepted stream, plus the
/// stream's shared Lemma-1 lower bound.
///
/// Both values are decimal strings for the same reason `usage_time` is
/// (`u128` totals exceed exact JSON numbers).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShadowStatus {
    /// Candidate policy (round-trippable spelling).
    pub policy: String,
    /// The shadow's accumulated usage time at the shard's current tick.
    pub cost: String,
    /// The stream's Lemma-1 lower bound (shared by all shadows).
    pub lb: String,
}

impl ShadowStatus {
    /// Running competitive ratio, cold-start neutral: `1.0` until the
    /// lower bound is positive (never NaN or infinite).
    #[must_use]
    pub fn running_cr(&self) -> f64 {
        let cost = self.cost.parse::<u128>().unwrap_or(0);
        let lb = self.lb.parse::<u128>().unwrap_or(0);
        if lb == 0 {
            1.0
        } else {
            cost as f64 / lb as f64
        }
    }
}

/// Service-wide snapshot: totals plus one [`ShardStatus`] per shard.
///
/// `usage_time` values are decimal strings — they are `u128` bin-tick
/// totals that can exceed what JSON numbers represent exactly (same
/// convention as `dvbp-monitor`'s `/status`).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStatus {
    /// Policy display name (the *configured* policy; under a portfolio,
    /// shards report their current policy in their own slice).
    pub policy: String,
    /// Meta-policy display name (`off` when no portfolio is running).
    pub meta: String,
    /// Policy switches applied over all shards since boot (including
    /// replayed ones).
    pub policy_switches: u64,
    /// Repack policy display name (`none`, `drain:K`, `defrag:B:P`).
    pub repack: String,
    /// Router display name (`hash`, `round-robin`, `least-loaded`).
    pub router: String,
    /// Number of shards.
    pub shards: usize,
    /// Items admitted over all shards.
    pub arrivals: u64,
    /// Items departed over all shards.
    pub departures: u64,
    /// Items currently active.
    pub active_items: u64,
    /// Bins currently open.
    pub open_bins: u64,
    /// Bins ever opened.
    pub bins_opened: u64,
    /// Repack migrations executed over all shards.
    pub migrations: u64,
    /// Total migration cost (L1 item size per defrag move, 1 per drain
    /// move) over all shards.
    pub migration_cost: u64,
    /// Total usage time at each shard's current tick, as a decimal
    /// string (the MinUsageTime objective; `Σ` over shards).
    pub usage_time: String,
    /// WAL lines written since boot (excludes recovered lines).
    pub wal_lines: u64,
    /// Events replayed from the WAL at boot.
    pub recovered_events: u64,
    /// Highest current tick over all shards.
    pub last_time: u64,
    /// Whether shutdown was requested.
    pub shutting_down: bool,
    /// Per-shard state, indexed by shard id.
    pub per_shard: Vec<ShardStatus>,
}

/// One shard's slice of the [`ServeStatus`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: usize,
    /// The policy currently driving this shard's live engine
    /// (round-trippable spelling; equals the configured policy unless a
    /// meta-policy switched it).
    pub policy: String,
    /// Policy switches applied on this shard (including replayed ones).
    pub policy_switches: u64,
    /// Applied switches in order, replay-identical after recovery.
    pub switch_history: Vec<SwitchEntry>,
    /// Shadow scoreboard rows, in candidate order (empty without a
    /// portfolio).
    pub shadows: Vec<ShadowStatus>,
    /// Items admitted.
    pub arrivals: u64,
    /// Items departed.
    pub departures: u64,
    /// Items currently active.
    pub active_items: u64,
    /// Bins currently open.
    pub open_bins: u64,
    /// Bins ever opened.
    pub bins_opened: u64,
    /// Repack migrations executed.
    pub migrations: u64,
    /// Total migration cost.
    pub migration_cost: u64,
    /// Usage time at the shard's current tick, as a decimal string.
    pub usage_time: String,
    /// WAL lines written since boot.
    pub wal_lines: u64,
    /// The shard's current tick.
    pub last_time: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_as_single_json_lines() {
        let reqs = [
            Request::Arrive {
                id: "vm-1".into(),
                size: vec![2, 3],
                time: 0,
            },
            Request::Depart {
                id: "vm-1".into(),
                time: 5,
            },
            Request::Query,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = serde_json::to_string(&req).unwrap();
            assert!(!line.contains('\n'));
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn unit_requests_are_bare_strings() {
        // The nc-friendly spelling: `"Query"` on a line by itself.
        assert_eq!(
            serde_json::from_str::<Request>("\"Query\"").unwrap(),
            Request::Query
        );
        assert_eq!(
            serde_json::from_str::<Request>("\"Shutdown\"").unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn responses_round_trip() {
        let status = ServeStatus {
            policy: "FirstFit".into(),
            meta: "off".into(),
            policy_switches: 0,
            repack: "drain:2".into(),
            router: "hash".into(),
            shards: 2,
            arrivals: 3,
            departures: 1,
            active_items: 2,
            open_bins: 1,
            bins_opened: 2,
            migrations: 1,
            migration_cost: 1,
            usage_time: "12".into(),
            wal_lines: 9,
            recovered_events: 0,
            last_time: 7,
            shutting_down: false,
            per_shard: vec![ShardStatus {
                shard: 0,
                policy: "FirstFit".into(),
                policy_switches: 0,
                switch_history: Vec::new(),
                shadows: Vec::new(),
                arrivals: 2,
                departures: 1,
                active_items: 1,
                open_bins: 1,
                bins_opened: 1,
                migrations: 1,
                migration_cost: 1,
                usage_time: "8".into(),
                wal_lines: 5,
                last_time: 7,
            }],
        };
        let resps = [
            Response::Placed {
                id: "a".into(),
                shard: 0,
                item: 0,
                bin: 0,
                opened_new: true,
                time: 0,
            },
            Response::Status(status),
            Response::Error {
                code: error_code::DUPLICATE_ID.into(),
                message: "id a in use".into(),
            },
            Response::ShuttingDown,
        ];
        for resp in resps {
            let line = serde_json::to_string(&resp).unwrap();
            let back: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn shadow_status_cr_is_cold_start_finite() {
        let cold = ShadowStatus {
            policy: "FirstFit".into(),
            cost: "0".into(),
            lb: "0".into(),
        };
        assert_eq!(cold.running_cr(), 1.0);
        let warm = ShadowStatus {
            policy: "NextFit".into(),
            cost: "30".into(),
            lb: "20".into(),
        };
        assert!((warm.running_cr() - 1.5).abs() < 1e-12);
        let line = serde_json::to_string(&warm).unwrap();
        assert_eq!(serde_json::from_str::<ShadowStatus>(&line).unwrap(), warm);
        let switch = SwitchEntry {
            time: 7,
            from: "NextFit".into(),
            to: "RandomFit:3".into(),
        };
        let line = serde_json::to_string(&switch).unwrap();
        assert_eq!(serde_json::from_str::<SwitchEntry>(&line).unwrap(), switch);
    }
}

//! Shard routing: which shard owns which item id.
//!
//! Three strategies with different state/balance trade-offs:
//!
//! * [`RouterKind::Hash`] — FNV-1a of the id, mod shard count.
//!   **Stateless in both directions**: arrivals and departures compute
//!   the owner from the id alone, so there is no shared directory to
//!   contend on (and nothing extra to recover). The default.
//! * [`RouterKind::RoundRobin`] — arrivals rotate through shards;
//!   balanced admission counts regardless of id distribution, but
//!   departures need an id → shard directory.
//! * [`RouterKind::LeastLoaded`] — arrivals go to the shard with the
//!   smallest summed open-bin load; adapts to skewed item sizes, same
//!   directory requirement plus a load probe per admission.
//!
//! The directory (for the non-hash kinds) is rebuilt at boot from the
//! recovered shards' id tables, so routing state needs no WAL of its
//! own.

use std::collections::HashMap;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Routing strategy (see module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RouterKind {
    /// FNV-1a(id) mod shards; stateless.
    #[default]
    Hash,
    /// Rotate arrivals; directory-backed departures.
    RoundRobin,
    /// Smallest summed open-bin load wins; directory-backed departures.
    LeastLoaded,
}

impl RouterKind {
    /// Display name (matches the CLI spelling).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RouterKind::Hash => "hash",
            RouterKind::RoundRobin => "round-robin",
            RouterKind::LeastLoaded => "least-loaded",
        }
    }
}

impl FromStr for RouterKind {
    type Err = String;

    /// Parses `hash`, `round-robin`/`rr`, or `least-loaded`/`ll`.
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "hash" => Ok(RouterKind::Hash),
            "round-robin" | "rr" => Ok(RouterKind::RoundRobin),
            "least-loaded" | "ll" => Ok(RouterKind::LeastLoaded),
            _ => Err(format!(
                "unknown router {s:?} (expected hash, round-robin, or least-loaded)"
            )),
        }
    }
}

/// FNV-1a 64-bit: tiny, dependency-free, and stable across runs —
/// restarts and remote clients agree on every id's home shard.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Maps item ids to shards under one [`RouterKind`].
pub struct Router {
    kind: RouterKind,
    shards: usize,
    /// Next shard for round-robin admission.
    rr: AtomicUsize,
    /// id → owning shard; only populated for the non-hash kinds.
    directory: Mutex<HashMap<String, usize>>,
}

impl Router {
    /// A router over `shards` shards (`shards >= 1`).
    #[must_use]
    pub fn new(kind: RouterKind, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        Router {
            kind,
            shards,
            rr: AtomicUsize::new(0),
            directory: Mutex::new(HashMap::new()),
        }
    }

    /// The routing strategy.
    #[must_use]
    pub fn kind(&self) -> RouterKind {
        self.kind
    }

    /// Shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Picks the shard to admit `id` to. `load_of(s)` reports shard
    /// `s`'s current summed open-bin load (only consulted by
    /// least-loaded). An id already in the directory routes back to its
    /// owner, whose duplicate check then rejects it — ids must be
    /// globally unique, not merely unique per shard.
    pub fn route_arrival(&self, id: &str, load_of: impl Fn(usize) -> u128) -> usize {
        match self.kind {
            RouterKind::Hash => self.home(id),
            RouterKind::RoundRobin | RouterKind::LeastLoaded => {
                if let Some(&owner) = self.directory.lock().unwrap().get(id) {
                    return owner;
                }
                if self.kind == RouterKind::RoundRobin {
                    self.rr.fetch_add(1, Ordering::Relaxed) % self.shards
                } else {
                    (0..self.shards)
                        .min_by_key(|&s| load_of(s))
                        .expect("shards >= 1")
                }
            }
        }
    }

    /// The shard owning `id`, for a departure. `None` means no shard
    /// has ever admitted the id (hash ids still resolve — the home
    /// shard then reports the unknown id itself).
    #[must_use]
    pub fn route_departure(&self, id: &str) -> Option<usize> {
        match self.kind {
            RouterKind::Hash => Some(self.home(id)),
            RouterKind::RoundRobin | RouterKind::LeastLoaded => {
                self.directory.lock().unwrap().get(id).copied()
            }
        }
    }

    /// Records a successful admission (no-op for the stateless hash
    /// router). Entries are permanent, mirroring the shards' burned-id
    /// rule.
    pub fn record(&self, id: &str, shard: usize) {
        if self.kind != RouterKind::Hash {
            self.directory.lock().unwrap().insert(id.to_string(), shard);
        }
    }

    /// Seeds the directory (and round-robin cursor) from recovered
    /// shard id tables at boot.
    pub fn seed<'a>(&self, entries: impl Iterator<Item = (&'a str, usize)>) {
        let mut dir = self.directory.lock().unwrap();
        let mut count = 0usize;
        for (id, shard) in entries {
            count += 1;
            if self.kind != RouterKind::Hash {
                dir.insert(id.to_string(), shard);
            }
        }
        self.rr.store(count, Ordering::Relaxed);
    }

    fn home(&self, id: &str) -> usize {
        (fnv1a(id.as_bytes()) % self.shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_routing_is_stateless_and_consistent() {
        let r = Router::new(RouterKind::Hash, 4);
        for id in ["a", "vm-17", "x/y/z", ""] {
            let s = r.route_arrival(id, |_| 0);
            assert_eq!(r.route_departure(id), Some(s));
            // Repeatable without any record() call.
            assert_eq!(r.route_arrival(id, |_| 0), s);
            assert!(s < 4);
        }
    }

    #[test]
    fn hash_spreads_ids_over_shards() {
        let r = Router::new(RouterKind::Hash, 4);
        let mut hit = [false; 4];
        for i in 0..64 {
            hit[r.route_arrival(&format!("item-{i}"), |_| 0)] = true;
        }
        assert!(hit.iter().all(|&h| h), "64 ids must touch all 4 shards");
    }

    #[test]
    fn round_robin_rotates_and_remembers() {
        let r = Router::new(RouterKind::RoundRobin, 3);
        let mut counts = [0usize; 3];
        for i in 0..9 {
            let id = format!("i{i}");
            let s = r.route_arrival(&id, |_| 0);
            r.record(&id, s);
            counts[s] += 1;
        }
        assert_eq!(counts, [3, 3, 3]);
        assert_eq!(r.route_departure("i4"), Some(1));
        assert_eq!(r.route_departure("ghost"), None);
        // A recorded id routes back to its owner on (duplicate) arrival.
        assert_eq!(r.route_arrival("i4", |_| 0), 1);
    }

    #[test]
    fn least_loaded_picks_the_lightest_shard() {
        let r = Router::new(RouterKind::LeastLoaded, 3);
        let loads = [50u128, 10, 30];
        assert_eq!(r.route_arrival("new", |s| loads[s]), 1);
        r.record("new", 1);
        assert_eq!(r.route_departure("new"), Some(1));
    }

    #[test]
    fn seed_restores_directory_after_recovery() {
        let r = Router::new(RouterKind::RoundRobin, 2);
        r.seed([("a", 0), ("b", 1), ("c", 1)].into_iter());
        assert_eq!(r.route_departure("b"), Some(1));
        // The cursor resumes past the recovered population.
        let s = r.route_arrival("d", |_| 0);
        assert_eq!(s, 1, "cursor 3 mod 2 shards");
    }

    #[test]
    fn kinds_parse_cli_spellings() {
        assert_eq!("hash".parse(), Ok(RouterKind::Hash));
        assert_eq!("rr".parse(), Ok(RouterKind::RoundRobin));
        assert_eq!("round-robin".parse(), Ok(RouterKind::RoundRobin));
        assert_eq!("ll".parse(), Ok(RouterKind::LeastLoaded));
        assert_eq!("least-loaded".parse(), Ok(RouterKind::LeastLoaded));
        assert!("random".parse::<RouterKind>().is_err());
    }
}

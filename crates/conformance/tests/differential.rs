//! Tier-1 differential conformance: a bounded, deterministic slice of the
//! fuzzer runs on every `cargo test`. The full campaign is
//! `cargo run -p dvbp-conformance -- --seeds 200` (also run in CI).

use dvbp_conformance::{diff, fuzz, reference};
use dvbp_core::{Instance, Item, PackRequest, PolicyKind};
use dvbp_dimvec::DimVec;
use dvbp_workloads::predictions::{announce_exact, announce_noisy};
use dvbp_workloads::uniform::UniformParams;

#[test]
fn bounded_fuzz_finds_no_divergence() {
    let report = fuzz::run(12, |_, _| {});
    assert!(
        report.failures.is_empty(),
        "divergences: {:#?}",
        report
            .failures
            .iter()
            .map(|f| format!("{} seed {}: {}", f.family.name(), f.seed, f.divergence))
            .collect::<Vec<_>>()
    );
    // 12 seeds × families × 11 policies (all instances are announced).
    assert_eq!(report.runs, 12 * fuzz::FAMILIES.len() * 11);
}

/// The paper's own Table 2 corner (d = 1, μ = 200, n = 1000) through the
/// full suite once: big enough to exercise hundreds of concurrent bins
/// and the segment tree's growth, small enough for one tier-1 run.
#[test]
fn table2_extreme_point_conforms() {
    let inst = announce_exact(&UniformParams::table2(1, 200).generate(42));
    diff::check_instance(&inst, 42).unwrap();
}

/// Noisy duration predictions (announced ≠ true) are the one input shape
/// the fuzzer's `announce_exact` never produces; the clairvoyant policies
/// must still conform when their announcements lie.
#[test]
fn noisy_announcements_conform() {
    for seed in 0..6u64 {
        let base = UniformParams {
            dims: 2,
            items: 40,
            mu: 8,
            span: 40,
            bin_size: 10,
        }
        .generate(seed);
        let noisy = announce_noisy(&base, 1.5, seed);
        diff::check_instance(&noisy, seed).unwrap();
    }
}

/// Reference and engine agree on the degenerate but legal extremes:
/// exact-capacity items (every bin holds one item) and 1-unit slivers
/// (maximal sharing).
#[test]
fn degenerate_extremes_conform() {
    let full = Instance::new(
        DimVec::scalar(7),
        (0..10u64)
            .map(|t| Item::new(DimVec::scalar(7), t, t + 3))
            .collect(),
    )
    .unwrap();
    diff::check_instance(&full, 0).unwrap();

    let slivers = Instance::new(
        DimVec::scalar(7),
        (0..30u64)
            .map(|t| Item::new(DimVec::scalar(1), t / 3, t / 3 + 2))
            .collect(),
    )
    .unwrap();
    diff::check_instance(&slivers, 0).unwrap();
}

/// A dirty live feed whose zero-duration items (depart timestamp equal
/// to the arrival's) run under `TimeMode::Clamp` must land exactly on
/// the batch packing of the clamped instance, where each such item is
/// the one-tick stay `[a, a+1)` — the live clamp changes timestamps,
/// never placements.
#[test]
fn live_clamp_zero_duration_matches_batch_one_tick_stays() {
    use dvbp_core::{live_ops, LiveEngine, LiveOp, TimeMode, TraceMode};
    let items: Vec<Item> = (0..20u64)
        .map(|i| {
            let a = i / 2;
            // Odd items are the clamped image of zero-duration arrivals.
            let dur = if i % 2 == 0 { 3 } else { 1 };
            Item::new(DimVec::scalar(2 + i % 4), a, a + dur)
        })
        .collect();
    let clamped = Instance::new(DimVec::scalar(8), items).unwrap();
    for kind in PolicyKind::paper_suite(9) {
        let batch = PackRequest::new(kind.clone()).run(&clamped).unwrap();
        let mut live = LiveEngine::new(
            clamped.capacity.clone(),
            &kind,
            TraceMode::Full,
            TimeMode::Clamp,
        )
        .unwrap();
        let mut local = std::collections::HashMap::new();
        for op in live_ops(&clamped) {
            match op {
                LiveOp::Arrive { item, size, time } => {
                    local.insert(item, live.arrive(size, time).unwrap().item);
                }
                LiveOp::Depart { item, time } => {
                    // Re-dirty the feed: one-tick stays depart at their
                    // own arrival tick, as the raw trace had them.
                    let dirty = if clamped.items[item].duration() == 1 {
                        time - 1
                    } else {
                        time
                    };
                    live.depart(local[&item], dirty).unwrap();
                }
            }
        }
        let packing = live.into_packing().unwrap();
        assert_eq!(packing, batch, "{}", kind.name());
    }
}

/// Direct spot-check that the reference itself equals the engine on a
/// policy with internal state that survives closings (Move To Front).
#[test]
fn reference_equals_engine_on_mtf_churn() {
    // Heavy churn: bins open and close repeatedly so the MRU order is
    // pruned many times.
    let items: Vec<Item> = (0..24u64)
        .map(|i| {
            let a = i % 8;
            Item::new(DimVec::scalar(3 + (i % 5)), a, a + 1 + (i % 3))
        })
        .collect();
    let inst = Instance::new(DimVec::scalar(10), items).unwrap();
    let fast = PackRequest::new(PolicyKind::MoveToFront)
        .run(&inst)
        .unwrap();
    let slow = reference::simulate(&inst, &PolicyKind::MoveToFront);
    assert_eq!(fast, slow);
}

//! Targeted audit of the `IndexedFirstFit` residual-tree update/query
//! paths, via the differential harness.
//!
//! The segment tree has three mutation sites — `after_pack` (subtract),
//! `on_departure` (add back), `on_close` (zero) — and one growth path
//! (`ensure`, which rebuilds on leaf-count doubling). Each test shapes an
//! instance family so one of those paths dominates, then requires exact
//! agreement with both the reference simulator and plain First Fit.

use dvbp_conformance::diff;
use dvbp_core::{Instance, Item, PolicyKind};
use dvbp_dimvec::DimVec;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn check(inst: &Instance) {
    diff::check_policy(inst, &PolicyKind::IndexedFirstFit).unwrap();
}

/// Growth path: every item blocks sharing, so the bin count (and the
/// tree's leaf count) doubles past 1, 2, 4, …, 64 within one run.
#[test]
fn tree_growth_across_many_doublings() {
    let items: Vec<Item> = (0..100u64)
        .map(|t| Item::new(DimVec::scalar(6), t, t + 200))
        .collect();
    let inst = Instance::new(DimVec::scalar(10), items).unwrap();
    check(&inst);
}

/// Departure path: long-lived slivers keep bins open while large items
/// come and go, so residuals oscillate between nearly-empty and full.
#[test]
fn residual_oscillation_under_churn() {
    let mut items = Vec::new();
    for b in 0..6u64 {
        items.push(Item::new(DimVec::scalar(1), 0, 100 + b));
    }
    for round in 0..10u64 {
        for b in 0..6u64 {
            let a = 1 + round * 8 + b;
            items.push(Item::new(DimVec::scalar(9), a, a + 4));
        }
    }
    let inst = Instance::new(DimVec::scalar(10), items).unwrap();
    check(&inst);
}

/// Close path: waves of bins all close at once, then a new wave arrives
/// at the same tick; stale (non-zeroed) leaves would resurrect them.
#[test]
fn mass_closure_then_same_tick_arrivals() {
    let mut items = Vec::new();
    for wave in 0..5u64 {
        let a = wave * 10;
        for _ in 0..8 {
            items.push(Item::new(DimVec::scalar(7), a, a + 10));
        }
    }
    let inst = Instance::new(DimVec::scalar(10), items).unwrap();
    check(&inst);
}

/// Randomized sweep over the whole surface: many seeds, sizes spanning
/// sliver-to-full, durations spanning instant-to-run-length.
#[test]
fn randomized_audit_sweep() {
    for seed in 0..25u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(20..=120usize);
        let cap = rng.random_range(4..=16u64);
        let items: Vec<Item> = (0..n)
            .map(|_| {
                let a = rng.random_range(0..50u64);
                let dur = rng.random_range(1..=30u64);
                Item::new(DimVec::scalar(rng.random_range(1..=cap)), a, a + dur)
            })
            .collect();
        let inst = Instance::new(DimVec::scalar(cap), items).unwrap();
        diff::check_policy(&inst, &PolicyKind::IndexedFirstFit)
            .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
    }
}

//! Differential runner: optimized engine vs. reference simulator, plus
//! the invariant suite.
//!
//! For one `(instance, policy)` pair the check layers are:
//!
//! 1. **differential** — [`dvbp_core::PackRequest`] and
//!    [`crate::reference::simulate`] must return *equal* packings:
//!    assignment, per-bin usage records, decision trace, and cost;
//! 2. **feasibility** — [`Packing::verify`]: per-slice capacity in every
//!    dimension and a single contiguous usage interval per bin;
//! 3. **Any Fit** — [`Packing::verify_any_fit`] for every full-candidate
//!    policy (all but Next Fit and the class-restricted clairvoyant);
//! 4. **placement identity** — `IndexedFirstFit` must equal `FirstFit`
//!    item for item (the fit index is a data-structure change only);
//! 5. **cost-only identity** — re-running under
//!    [`TraceMode::CostOnly`] must reproduce the `Full` run's assignment,
//!    cost, and max concurrency (the mode skips bookkeeping, never
//!    decisions);
//! 6. **lower bounds** — `lb_span ≤ lb_load ≤ cost` (Lemma 1: the span
//!    bound is dominated by the load integral, and every online cost is
//!    at least the optimum, hence at least any lower bound on it);
//! 7. **observer replay** — re-running with a recording observer and
//!    replaying the event stream through
//!    [`dvbp_analysis::obs_ingest::replay_packing`] must reconstruct the
//!    live packing bit for bit (the observer feed is complete and
//!    hook-ordered, and observation never perturbs decisions). The same
//!    layer then re-runs under a
//!    [`ProvenanceObserver`](dvbp_obs::ProvenanceObserver): probe
//!    collection must not perturb the packing either, the provenance
//!    stream must still replay, total probes must equal the run's total
//!    scan count, and every `Decision` must agree with its placement
//!    (bin, open/existing, per-arrival probe count);
//! 8. **serving path** — see [`crate::serve`]: a one-shard `dvbp-serve`
//!    run must be bit-identical to the batch run, crash recovery from
//!    any WAL cut must converge to the same state, and sharded runs
//!    must verify per shard with additive cost ([`check_instance`] runs
//!    this layer with sampled crash cuts);
//! 9. **stream ≡ batch** — replaying the instance through
//!    [`InstanceSource`](dvbp_core::InstanceSource) via
//!    [`PackRequest::run_source`] must reproduce the batch packing bit
//!    for bit, under both `Full` and `CostOnly` trace modes (the
//!    constant-memory streaming path changes delivery, never
//!    decisions). Clairvoyant kinds are exempt: streamed items carry no
//!    announced durations and the stream entry points reject them;
//! 10. **repacking** — see [`crate::repack`]: live runs under the
//!     standard [`RepackPolicy`](dvbp_core::RepackPolicy) suite are
//!     audited by an independent event-stream checker (capacity,
//!     liveness, closure, Migrate provenance, cost accounting), with
//!     `NoRepack` pinned bit-identical to the batch engine. Clairvoyant
//!     kinds are exempt for the same reason as layer 9;
//! 11. **portfolio** — see [`crate::portfolio`]: shadow simulation must
//!     be pure observation. Every candidate's shadow cost must equal a
//!     standalone `CostOnly` run of that candidate bit for bit against
//!     the shared lower-bound anchor, and a `static`-meta
//!     [`PortfolioEngine`](dvbp_portfolio::PortfolioEngine) must be
//!     indistinguishable from the plain single-policy live path.
//!     Clairvoyant kinds are exempt (live candidates must be servable).

use crate::reference;
use dvbp_core::{Instance, PackRequest, Packing, PolicyKind, TraceMode};
use dvbp_offline::lower_bounds::{lb_load, lb_span};
use std::fmt;

/// One conformance failure, with enough context to reproduce it.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Display name of the offending policy.
    pub policy: String,
    /// The [`PolicyKind`] that diverged (reproducers re-run it exactly).
    pub kind: PolicyKind,
    /// Which layer failed and how.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.policy, self.detail)
    }
}

impl Divergence {
    pub(crate) fn new(kind: &PolicyKind, detail: String) -> Self {
        Divergence {
            policy: kind.name(),
            kind: kind.clone(),
            detail,
        }
    }
}

/// Describes the first difference between two packings, if any.
pub(crate) fn first_difference(fast: &Packing, slow: &Packing) -> Option<String> {
    if let Some(i) = (0..fast.assignment.len().min(slow.assignment.len()))
        .find(|&i| fast.assignment[i] != slow.assignment[i])
    {
        return Some(format!(
            "assignment[{i}]: engine {} vs reference {}",
            fast.assignment[i], slow.assignment[i]
        ));
    }
    if fast.assignment.len() != slow.assignment.len() {
        return Some(format!(
            "assignment length: engine {} vs reference {}",
            fast.assignment.len(),
            slow.assignment.len()
        ));
    }
    if fast.bins != slow.bins {
        return Some(format!(
            "bin usage records differ: engine {:?} vs reference {:?}",
            fast.bins, slow.bins
        ));
    }
    if let Some(i) =
        (0..fast.trace.len().min(slow.trace.len())).find(|&i| fast.trace[i] != slow.trace[i])
    {
        return Some(format!(
            "trace[{i}]: engine {:?} vs reference {:?}",
            fast.trace[i], slow.trace[i]
        ));
    }
    if fast.trace.len() != slow.trace.len() {
        return Some(format!(
            "trace length: engine {} vs reference {}",
            fast.trace.len(),
            slow.trace.len()
        ));
    }
    if fast.cost() != slow.cost() {
        return Some(format!(
            "cost: engine {} vs reference {}",
            fast.cost(),
            slow.cost()
        ));
    }
    None
}

/// Runs every check layer for one `(instance, kind)` pair.
///
/// # Errors
///
/// Returns the first [`Divergence`] found, layer by layer.
pub fn check_policy(instance: &Instance, kind: &PolicyKind) -> Result<(), Divergence> {
    let fast = PackRequest::new(kind.clone()).run(instance).unwrap();
    let slow = reference::simulate(instance, kind);

    if let Some(diff) = first_difference(&fast, &slow) {
        return Err(Divergence::new(kind, format!("differential: {diff}")));
    }
    if let Err(e) = fast.verify(instance) {
        return Err(Divergence::new(kind, format!("verify: {e}")));
    }
    if kind.is_full_candidate_any_fit() {
        if let Err(e) = fast.verify_any_fit(instance) {
            return Err(Divergence::new(kind, format!("any-fit: {e}")));
        }
    }
    if *kind == PolicyKind::IndexedFirstFit {
        let plain = PackRequest::new(PolicyKind::FirstFit)
            .run(instance)
            .unwrap();
        if fast.assignment != plain.assignment {
            let i = (0..fast.assignment.len())
                .find(|&i| fast.assignment[i] != plain.assignment[i])
                .unwrap_or(0);
            return Err(Divergence::new(
                kind,
                format!(
                    "placement identity: item {i} goes to {} under IndexedFirstFit \
                     but {} under FirstFit",
                    fast.assignment[i], plain.assignment[i]
                ),
            ));
        }
    }

    let cost_only = PackRequest::new(kind.clone())
        .trace_mode(TraceMode::CostOnly)
        .run(instance)
        .unwrap();
    if cost_only.assignment != fast.assignment {
        let i = (0..fast.assignment.len())
            .find(|&i| cost_only.assignment[i] != fast.assignment[i])
            .unwrap_or(0);
        return Err(Divergence::new(
            kind,
            format!(
                "cost-only: item {i} goes to {} under CostOnly but {} under Full",
                cost_only.assignment[i], fast.assignment[i]
            ),
        ));
    }
    if cost_only.cost() != fast.cost() {
        return Err(Divergence::new(
            kind,
            format!(
                "cost-only: cost {} vs Full cost {}",
                cost_only.cost(),
                fast.cost()
            ),
        ));
    }
    if cost_only.max_concurrent_bins() != fast.max_concurrent_bins() {
        return Err(Divergence::new(
            kind,
            format!(
                "cost-only: max concurrent bins {} vs Full {}",
                cost_only.max_concurrent_bins(),
                fast.max_concurrent_bins()
            ),
        ));
    }

    let mut recorder = dvbp_obs::Recorder::new();
    let observed = PackRequest::new(kind.clone())
        .observer(&mut recorder)
        .run(instance)
        .unwrap();
    if observed != fast {
        return Err(Divergence::new(
            kind,
            "observer replay: attaching an observer changed the packing".to_string(),
        ));
    }
    match dvbp_analysis::obs_ingest::replay_packing(&recorder.events) {
        Ok(replayed) => {
            if let Some(diff) = first_difference(&replayed, &fast) {
                return Err(Divergence::new(kind, format!("observer replay: {diff}")));
            }
        }
        Err(e) => {
            return Err(Divergence::new(
                kind,
                format!("observer replay: stream does not replay: {e}"),
            ));
        }
    }

    let mut prov = dvbp_obs::ProvenanceObserver::new();
    let prov_observed = PackRequest::new(kind.clone())
        .observer(&mut prov)
        .run(instance)
        .unwrap();
    if prov_observed != fast {
        return Err(Divergence::new(
            kind,
            "provenance: probe collection changed the packing".to_string(),
        ));
    }
    match dvbp_analysis::obs_ingest::replay_packing(&prov.events) {
        Ok(replayed) => {
            if let Some(diff) = first_difference(&replayed, &fast) {
                return Err(Divergence::new(kind, format!("provenance replay: {diff}")));
            }
        }
        Err(e) => {
            return Err(Divergence::new(
                kind,
                format!("provenance replay: stream does not replay: {e}"),
            ));
        }
    }
    let scanned_total: u64 = prov
        .events
        .iter()
        .map(|ev| match ev {
            dvbp_obs::ObsEvent::Place { scanned, .. } => *scanned,
            _ => 0,
        })
        .sum();
    if prov.total_probes() != scanned_total {
        return Err(Divergence::new(
            kind,
            format!(
                "provenance: {} probe events vs {} total scanned",
                prov.total_probes(),
                scanned_total
            ),
        ));
    }
    let explanations = dvbp_analysis::explain::explain_stream(&prov.events);
    if explanations.len() != fast.assignment.len() {
        return Err(Divergence::new(
            kind,
            format!(
                "provenance: {} decisions for {} placements",
                explanations.len(),
                fast.assignment.len()
            ),
        ));
    }
    for e in &explanations {
        if e.probes.len() as u64 != e.reported_probes {
            return Err(Divergence::new(
                kind,
                format!(
                    "provenance: item {} has {} probe events but Decision reports {}",
                    e.item,
                    e.probes.len(),
                    e.reported_probes
                ),
            ));
        }
        if fast.assignment[e.item].0 != e.bin {
            return Err(Divergence::new(
                kind,
                format!(
                    "provenance: Decision sends item {} to bin {} but the packing says {}",
                    e.item, e.bin, fast.assignment[e.item]
                ),
            ));
        }
    }

    if !matches!(
        kind,
        PolicyKind::DurationClassFirstFit | PolicyKind::AlignedFit
    ) {
        let mut source = dvbp_core::InstanceSource::new(instance)
            .expect("instance already validated by the batch run");
        let streamed = PackRequest::new(kind.clone())
            .run_source(&mut source)
            .map_err(|e| Divergence::new(kind, format!("stream: {e}")))?;
        if let Some(diff) = first_difference(&streamed, &fast) {
            return Err(Divergence::new(kind, format!("stream: {diff}")));
        }
        let mut source = dvbp_core::InstanceSource::new(instance)
            .expect("instance already validated by the batch run");
        let streamed_cost_only = PackRequest::new(kind.clone())
            .trace_mode(TraceMode::CostOnly)
            .run_source(&mut source)
            .map_err(|e| Divergence::new(kind, format!("stream cost-only: {e}")))?;
        if let Some(diff) = first_difference(&streamed_cost_only, &cost_only) {
            return Err(Divergence::new(kind, format!("stream cost-only: {diff}")));
        }
    }

    let span = lb_span(instance);
    let load = lb_load(instance);
    if span > load {
        return Err(Divergence::new(
            kind,
            format!("lower bounds: lb_span {span} > lb_load {load}"),
        ));
    }
    if load > fast.cost() {
        return Err(Divergence::new(
            kind,
            format!("lower bounds: lb_load {load} > cost {}", fast.cost()),
        ));
    }
    Ok(())
}

/// The policy suite applicable to `instance`: every [`PolicyKind`]
/// variant, with the clairvoyant kinds included only when all items carry
/// announced durations (they panic otherwise, by design).
#[must_use]
pub fn kinds_for(instance: &Instance, random_fit_seed: u64) -> Vec<PolicyKind> {
    use dvbp_core::LoadMeasure;
    let mut kinds = vec![
        PolicyKind::MoveToFront,
        PolicyKind::FirstFit,
        PolicyKind::NextFit,
        PolicyKind::BestFit(LoadMeasure::Linf),
        PolicyKind::BestFit(LoadMeasure::L1),
        PolicyKind::WorstFit(LoadMeasure::Linf),
        PolicyKind::LastFit,
        PolicyKind::RandomFit {
            seed: random_fit_seed,
        },
        PolicyKind::IndexedFirstFit,
    ];
    if instance
        .items
        .iter()
        .all(|i| i.announced_duration.is_some())
    {
        kinds.push(PolicyKind::DurationClassFirstFit);
        kinds.push(PolicyKind::AlignedFit);
    }
    kinds
}

/// Checks the full applicable suite over one instance, including the
/// layer-8 serving checks ([`crate::serve`]) with deterministically
/// sampled crash cuts and the layer-10 repacking audit
/// ([`crate::repack`]) for every non-clairvoyant kind. The corpus
/// replay runs the exhaustive crash plan separately
/// (`tests/serve_recovery_corpus.rs`).
///
/// # Errors
///
/// Returns the first [`Divergence`] across the suite.
pub fn check_instance(instance: &Instance, random_fit_seed: u64) -> Result<(), Divergence> {
    for kind in kinds_for(instance, random_fit_seed) {
        check_policy(instance, &kind)?;
        crate::serve::check_policy(
            instance,
            &kind,
            crate::serve::CrashPlan::Sampled {
                seed: random_fit_seed,
            },
        )?;
        if !matches!(
            kind,
            PolicyKind::DurationClassFirstFit | PolicyKind::AlignedFit
        ) {
            for repack in crate::repack::SUITE {
                crate::repack::check_policy(instance, &kind, repack)?;
            }
        }
        crate::portfolio::check_policy(instance, &kind)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbp_core::Item;
    use dvbp_dimvec::DimVec;

    #[test]
    fn clean_instance_passes_all_layers() {
        let inst = Instance::new(
            DimVec::scalar(10),
            vec![
                Item::new(DimVec::scalar(6), 0, 9).with_announced_duration(9),
                Item::new(DimVec::scalar(6), 1, 9).with_announced_duration(8),
                Item::new(DimVec::scalar(4), 2, 5).with_announced_duration(3),
            ],
        )
        .unwrap();
        check_instance(&inst, 7).unwrap();
    }

    #[test]
    fn clairvoyant_kinds_gated_on_announcements() {
        let bare =
            Instance::new(DimVec::scalar(10), vec![Item::new(DimVec::scalar(5), 0, 4)]).unwrap();
        assert_eq!(kinds_for(&bare, 0).len(), 9);
        let announced = dvbp_workloads::predictions::announce_exact(&bare);
        assert_eq!(kinds_for(&announced, 0).len(), 11);
    }
}

//! Layer 11: portfolio dispatch conformance.
//!
//! The shadow portfolio must be *pure observation*: running candidates
//! next to the live engine may never change what the live engine does,
//! and each shadow must be exactly the engine it claims to simulate.
//! For one `(instance, kind)` pair this layer checks:
//!
//! * **shadow fidelity** — after driving the canonical feed through a
//!   [`PortfolioEngine`], every candidate's shadow cost equals a
//!   standalone [`TraceMode::CostOnly`] `LiveEngine` run of that
//!   candidate over the same accepted stream, bit for bit (`Cost` is
//!   `u128`; no tolerance), and the shared lower-bound anchor is
//!   identical for every row;
//! * **static identity** — under [`MetaPolicy::Static`] the portfolio's
//!   live engine is indistinguishable from a plain single-policy
//!   `LiveEngine`: every placement and departure outcome matches, no
//!   switch is ever applied, and the drained [`dvbp_core::Packing`]s are equal
//!   (assignment, usage records, cost).
//!
//! Clairvoyant kinds ([`PolicyKind::DurationClassFirstFit`],
//! [`PolicyKind::AlignedFit`]) are exempt: live candidates must be
//! servable, and the portfolio rejects them by design.

use crate::diff::{first_difference, Divergence};
use dvbp_core::{live_ops, Instance, LiveEngine, LiveOp, LiveRequest, PolicyKind, TraceMode};
use dvbp_portfolio::{MetaPolicy, PortfolioEngine};

/// The candidate set layer 11 shadows next to `kind`: two cheap
/// always-on baselines plus the live kind itself (deduplicated by the
/// engine). Small on purpose — every kind in the suite takes a turn as
/// the live policy, so fidelity is still checked for all of them.
fn candidates(kind: &PolicyKind) -> Vec<PolicyKind> {
    let mut set = vec![PolicyKind::FirstFit, PolicyKind::NextFit];
    if !set.contains(kind) {
        set.push(kind.clone());
    }
    set
}

/// Runs the layer-11 checks for one `(instance, kind)` pair.
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
pub fn check_policy(instance: &Instance, kind: &PolicyKind) -> Result<(), Divergence> {
    if matches!(
        kind,
        PolicyKind::DurationClassFirstFit | PolicyKind::AlignedFit
    ) {
        return Ok(());
    }
    let ops = live_ops(instance);
    let shadows = candidates(kind);

    // Portfolio under Static meta, next to a plain single-policy engine.
    let live = LiveRequest::new(kind.clone())
        .capacity(instance.capacity.clone())
        .trace_mode(TraceMode::CostOnly)
        .shadow_policies(shadows.iter().cloned())
        .items_hint(instance.items.len())
        .build()
        .map_err(|e| Divergence::new(kind, format!("portfolio: live boot: {e}")))?;
    let mut pf = PortfolioEngine::new(live, MetaPolicy::Static, instance.items.len())
        .map_err(|e| Divergence::new(kind, format!("portfolio: boot: {e}")))?;
    let mut plain = LiveRequest::new(kind.clone())
        .capacity(instance.capacity.clone())
        .trace_mode(TraceMode::CostOnly)
        .items_hint(instance.items.len())
        .build()
        .map_err(|e| Divergence::new(kind, format!("portfolio: plain boot: {e}")))?;

    // Standalone CostOnly engines, one per candidate, fed the same
    // accepted stream — the ground truth every shadow must hit exactly.
    let mut standalone: Vec<(PolicyKind, LiveEngine)> = shadows
        .iter()
        .map(|c| {
            LiveRequest::new(c.clone())
                .capacity(instance.capacity.clone())
                .trace_mode(TraceMode::CostOnly)
                .items_hint(instance.items.len())
                .build()
                .map(|eng| (c.clone(), eng))
                .map_err(|e| Divergence::new(kind, format!("portfolio: standalone {c:?}: {e}")))
        })
        .collect::<Result<_, _>>()?;

    // `live_ops` names items by instance index; every engine here
    // assigns its own dense arrival-order index. All of them see the
    // same arrival sequence, so one translation map serves them all.
    let mut ids = vec![usize::MAX; instance.items.len()];
    for op in &ops {
        match op {
            LiveOp::Arrive { item, size, time } => {
                let got = pf
                    .arrive(size.clone(), *time)
                    .map_err(|e| Divergence::new(kind, format!("portfolio: arrive: {e}")))?;
                ids[*item] = got.item;
                let want = plain
                    .arrive(size.clone(), *time)
                    .map_err(|e| Divergence::new(kind, format!("portfolio: plain arrive: {e}")))?;
                if got != want {
                    return Err(Divergence::new(
                        kind,
                        format!(
                            "portfolio: static-meta placement of item {item} diverged: \
                             portfolio {got:?} vs plain {want:?}"
                        ),
                    ));
                }
                for (_, eng) in &mut standalone {
                    eng.arrive(size.clone(), *time).map_err(|e| {
                        Divergence::new(kind, format!("portfolio: standalone arrive: {e}"))
                    })?;
                }
            }
            LiveOp::Depart { item, time } => {
                let got = pf
                    .depart(ids[*item], *time)
                    .map_err(|e| Divergence::new(kind, format!("portfolio: depart: {e}")))?;
                if let Some(s) = got.switched {
                    return Err(Divergence::new(
                        kind,
                        format!("portfolio: static meta-policy switched: {s:?}"),
                    ));
                }
                let want = plain
                    .depart(ids[*item], *time)
                    .map_err(|e| Divergence::new(kind, format!("portfolio: plain depart: {e}")))?;
                if got.departure != want {
                    return Err(Divergence::new(
                        kind,
                        format!(
                            "portfolio: static-meta departure of item {item} diverged: \
                             portfolio {:?} vs plain {want:?}",
                            got.departure
                        ),
                    ));
                }
                for (_, eng) in &mut standalone {
                    eng.depart(ids[*item], *time).map_err(|e| {
                        Divergence::new(kind, format!("portfolio: standalone depart: {e}"))
                    })?;
                }
            }
        }
    }

    // Shadow fidelity: scoreboard costs vs the standalone ground truth,
    // at the portfolio's final tick.
    let at = pf.live().now();
    let board = pf.scoreboard(at);
    if board.len() != standalone.len() {
        return Err(Divergence::new(
            kind,
            format!(
                "portfolio: {} scoreboard rows for {} candidates",
                board.len(),
                standalone.len()
            ),
        ));
    }
    let lb = pf.lower_bound();
    for (row, (cand, eng)) in board.iter().zip(&standalone) {
        if row.policy != cand.spec() {
            return Err(Divergence::new(
                kind,
                format!(
                    "portfolio: scoreboard row {:?} out of candidate order (expected {})",
                    row.policy,
                    cand.spec()
                ),
            ));
        }
        let want = eng.usage_time_at(at);
        if row.cost != want {
            return Err(Divergence::new(
                kind,
                format!(
                    "portfolio: shadow {} cost {} vs standalone CostOnly cost {want}",
                    row.policy, row.cost
                ),
            ));
        }
        if row.lb != lb {
            return Err(Divergence::new(
                kind,
                format!(
                    "portfolio: shadow {} anchored to lb {} instead of the shared {lb}",
                    row.policy, row.lb
                ),
            ));
        }
    }

    // Drained packings must be equal too — same bins, same usage
    // records, same cost (the canonical feed departs every item).
    if pf.live().policy_switches() != 0 {
        return Err(Divergence::new(
            kind,
            "portfolio: static meta-policy recorded live switches".to_string(),
        ));
    }
    let pf_packing = pf
        .into_live()
        .into_packing()
        .map_err(|e| Divergence::new(kind, format!("portfolio: drain: {e}")))?;
    let plain_packing = plain
        .into_packing()
        .map_err(|e| Divergence::new(kind, format!("portfolio: plain drain: {e}")))?;
    if let Some(diff) = first_difference(&pf_packing, &plain_packing) {
        return Err(Divergence::new(kind, format!("portfolio: {diff}")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbp_core::Item;
    use dvbp_dimvec::DimVec;

    fn sample() -> Instance {
        Instance::new(
            DimVec::from_slice(&[10, 10]),
            vec![
                Item::new(DimVec::from_slice(&[7, 2]), 0, 10),
                Item::new(DimVec::from_slice(&[2, 7]), 2, 5),
                Item::new(DimVec::from_slice(&[3, 3]), 4, 6),
                Item::new(DimVec::from_slice(&[9, 9]), 6, 12),
                Item::new(DimVec::from_slice(&[1, 1]), 7, 9),
            ],
        )
        .unwrap()
    }

    #[test]
    fn layer_passes_for_the_servable_suite() {
        let inst = sample();
        for kind in crate::diff::kinds_for(&inst, 3) {
            check_policy(&inst, &kind).unwrap();
        }
    }

    #[test]
    fn clairvoyant_kinds_are_exempt() {
        let inst = sample();
        check_policy(&inst, &PolicyKind::DurationClassFirstFit).unwrap();
        check_policy(&inst, &PolicyKind::AlignedFit).unwrap();
    }
}

//! Deterministic conformance fuzzer.
//!
//! Three workload families feed the differential check of [`crate::diff`]:
//!
//! * **uniform** — small instances from the paper's §7 model
//!   ([`UniformParams`]) with randomized `(d, n, μ, T, B)`;
//! * **adversarial** — the §6 lower-bound constructions (Thm 5/6/8),
//!   which release many equal-tick items in a crafted order and so
//!   exercise the tie-breaking rules hardest;
//! * **extended** — Zipf sizes, geometric durations, and bursty arrivals
//!   ([`ExtendedParams`]), stressing skewed loads and arrival spikes;
//! * **high-churn** — phases of mostly *blocker* items (over half a small
//!   bin in some dimension) separated by idle gaps that drain every bin.
//!   Many bins stay concurrently open within a phase and **all** of them
//!   close between phases, hammering the engine fit index's open → close
//!   → never-reopen lifecycle and its growth-by-doubling, at
//!   `d ∈ {1, 2, 8, 9}` (both `DimVec` representations);
//! * **equal-tick** — dense waves of one-tick stays (the materialized
//!   image of live zero-duration items under `TimeMode::Clamp`, which
//!   become `[a, a+1)`) interleaved with longer residents, every wave
//!   landing exactly on the previous wave's departure tick. Almost every
//!   placement is decided by the equal-tick rules (departures first,
//!   then item order), the edge where the live clamp semantics and the
//!   batch simulator must agree;
//! * **wide-dim** — `d ∈ {3, 7, 8, 12, 16}` blocker waves whose
//!   steady-state open-bin count straddles a lane boundary of the
//!   vectorized block scan (`LANES ± 1`, `2·LANES − 1`), so the mask
//!   kernel's remainder lanes and padding sentinels decide placements;
//!   light items then have to land in whatever residual the masks
//!   report feasible;
//! * **repack-churn** — big anchors paired with small stragglers, the
//!   anchors departing first: bins go nearly empty while neighbours
//!   hold residual room, so the layer-10 repack audit sees real
//!   migrations (drain and defrag both fire) instead of vacuously
//!   passing on migration-free runs;
//! * **regime-shift** — the workload distribution flips mid-stream:
//!   phases of heavy blockers (over half the bin) alternate with phases
//!   of light uniform items, separated by full-drain gaps. Each regime
//!   boundary is a burst of bin closes — exactly the decision points
//!   where a portfolio meta-policy may switch the live policy — and no
//!   single Any-Fit policy is best across both regimes, so the layer-11
//!   shadow-fidelity checks run against genuinely diverging scoreboards.
//!
//! Every instance is derived deterministically from its `(family, seed)`
//! pair, so a reported failure is reproducible from its seed alone even
//! before the shrunk trace file is consulted. Instances are kept small
//! (tens of items): the reference simulator is quadratic by design, and
//! small failures shrink to readable reproducers.

use crate::diff::{self, Divergence};
use crate::shrink;
use dvbp_core::{Instance, Item, LANES};
use dvbp_dimvec::DimVec;
use dvbp_workloads::adversarial::{AnyFitLb, MtfLb, NextFitLb};
use dvbp_workloads::extended::{ArrivalDist, DurationDist, ExtendedParams, SizeDist};
use dvbp_workloads::predictions::announce_exact;
use dvbp_workloads::uniform::UniformParams;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A workload family the fuzzer draws from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// The paper's uniform model, small parameters.
    Uniform,
    /// The §6 adversarial lower-bound constructions.
    Adversarial,
    /// Extended marginals: Zipf / geometric / bursty.
    Extended,
    /// Blocker-heavy phases with full-drain gaps, `d ∈ {1, 2, 8, 9}`.
    HighChurn,
    /// One-tick stays colliding with departures at every tick.
    EqualTick,
    /// High-dimensional blocker waves straddling block-scan lane
    /// boundaries, `d ∈ {3, 7, 8, 12, 16}`.
    WideDim,
    /// Big-anchor/small-straggler pairs whose anchors depart early,
    /// leaving nearly-empty bins next to bins with residual room — the
    /// shape that makes every repack policy actually migrate.
    RepackChurn,
    /// Alternating heavy-blocker / light-uniform phases with full-drain
    /// gaps: every regime boundary is a burst of bin closes, the
    /// switch points of the portfolio meta-policies.
    RegimeShift,
}

impl Family {
    /// Stable name for reports and reproducer file names.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Family::Uniform => "uniform",
            Family::Adversarial => "adversarial",
            Family::Extended => "extended",
            Family::HighChurn => "highchurn",
            Family::EqualTick => "equaltick",
            Family::WideDim => "widedim",
            Family::RepackChurn => "repackchurn",
            Family::RegimeShift => "regimeshift",
        }
    }
}

/// All families, in fuzzing order.
pub const FAMILIES: [Family; 8] = [
    Family::Uniform,
    Family::Adversarial,
    Family::Extended,
    Family::HighChurn,
    Family::EqualTick,
    Family::WideDim,
    Family::RepackChurn,
    Family::RegimeShift,
];

/// Small randomized base parameters shared by the uniform and extended
/// families.
fn small_base(rng: &mut StdRng) -> UniformParams {
    let span = rng.random_range(20..=60u64);
    UniformParams {
        dims: rng.random_range(1..=3usize),
        items: rng.random_range(10..=50usize),
        mu: rng.random_range(1..=span.min(10)),
        span,
        bin_size: rng.random_range(4..=12u64),
    }
}

/// Generates the instance for `(family, seed)`, with exact duration
/// announcements attached so the clairvoyant policies join the suite.
#[must_use]
pub fn generate(family: Family, seed: u64) -> Instance {
    let inst = match family {
        Family::Uniform => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
            small_base(&mut rng).generate(seed)
        }
        Family::Adversarial => {
            let v = seed / 3;
            match seed % 3 {
                0 => AnyFitLb {
                    k: 1 + (v % 2) as usize,
                    d: 1 + (v / 2 % 2) as usize,
                    mu: 1 + v / 4 % 3,
                    m: 2 + v / 12 % 3,
                }
                .instance(),
                1 => NextFitLb {
                    k: 2 + 2 * (v % 2) as usize,
                    d: 1 + (v / 2 % 2) as usize,
                    mu: 1 + v / 4 % 4,
                }
                .instance(),
                _ => MtfLb {
                    n: 1 + (v % 4) as usize,
                    mu: 1 + v / 4 % 4,
                }
                .instance(),
            }
        }
        Family::Extended => {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xa24b_aed4_963e_e407));
            let base = small_base(&mut rng);
            let sizes = match rng.random_range(0..3u32) {
                0 => SizeDist::Uniform,
                1 => SizeDist::Zipf { exponent: 1.2 },
                _ => SizeDist::Correlated {
                    spread: rng.random_range(0..=3u64),
                },
            };
            let durations = if rng.random_bool(0.5) {
                DurationDist::Uniform
            } else {
                DurationDist::Geometric { p: 0.3 }
            };
            let arrivals = if rng.random_bool(0.5) {
                ArrivalDist::Uniform
            } else {
                ArrivalDist::Bursty {
                    waves: rng.random_range(1..=4usize),
                    width: rng.random_range(0..=5u64),
                }
            };
            ExtendedParams {
                base,
                sizes,
                durations,
                arrivals,
            }
            .generate(seed)
        }
        Family::HighChurn => {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xd6e8_feb8_6659_fd93));
            let dims = [1usize, 2, 8, 9][rng.random_range(0..4usize)];
            let cap = 10u64;
            let mut items = Vec::new();
            let mut t = 0u64;
            for _ in 0..rng.random_range(2..=3u32) {
                for _ in 0..rng.random_range(8..=20usize) {
                    let a = t + rng.random_range(0..=4u64);
                    let dur = rng.random_range(1..=6u64);
                    let size = DimVec::from_fn(dims, |_| {
                        if rng.random_bool(0.7) {
                            rng.random_range(6..=cap)
                        } else {
                            rng.random_range(1..=3)
                        }
                    });
                    items.push(Item::new(size, a, a + dur));
                }
                // Last arrival is t+4, last departure t+10; advancing by 12
                // leaves an idle gap, so every bin closes between phases.
                t += 12;
            }
            Instance::new(DimVec::splat(dims, cap), items).expect("high-churn instance valid")
        }
        Family::EqualTick => {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x2545_f491_4f6c_dd1d));
            let dims = rng.random_range(1..=2usize);
            let cap = 8u64;
            let mut items = Vec::new();
            // Consecutive-tick waves: each wave's one-tick stays depart
            // exactly when the next wave arrives, so every tick carries
            // departures and arrivals simultaneously.
            let waves = rng.random_range(6..=12u64);
            for t in 0..waves {
                for _ in 0..rng.random_range(2..=5usize) {
                    let size = DimVec::from_fn(dims, |_| rng.random_range(1..=cap.min(5)));
                    // Mostly one-tick stays (a clamped zero-duration
                    // item's shape); a few span several waves so bins
                    // stay populated across the collision ticks.
                    let dur = if rng.random_bool(0.7) {
                        1
                    } else {
                        rng.random_range(2..=4u64)
                    };
                    items.push(Item::new(size, t, t + dur));
                }
            }
            Instance::new(DimVec::splat(dims, cap), items).expect("equal-tick instance valid")
        }
        Family::WideDim => {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x94d0_49bb_1331_11eb));
            let dims = [3usize, 7, 8, 12, 16][rng.random_range(0..5usize)];
            let cap = 10u64;
            // Steady-state open-bin targets straddling the kernel's lane
            // boundaries: remainder lanes (below), exact blocks, and the
            // first lane of a second block.
            let target = [LANES - 1, LANES, LANES + 1, 2 * LANES - 1][rng.random_range(0..4usize)];
            let mut items = Vec::new();
            let mut t = 0u64;
            for _ in 0..2 {
                // One blocker per bin (over half the bin in every
                // dimension), arrivals staggered so the open count walks
                // through the lane boundary one bin at a time.
                for b in 0..target {
                    let a = t + (b as u64 % 3);
                    let dur = rng.random_range(4..=8u64);
                    let size = DimVec::from_fn(dims, |_| rng.random_range(6..=cap));
                    items.push(Item::new(size, a, a + dur));
                }
                // Light items that must land in whatever remainder the
                // mask kernel reports feasible (if any).
                for _ in 0..rng.random_range(2..=5usize) {
                    let a = t + rng.random_range(0..=4u64);
                    let dur = rng.random_range(1..=4u64);
                    let size = DimVec::from_fn(dims, |_| rng.random_range(1..=4u64));
                    items.push(Item::new(size, a, a + dur));
                }
                // Last arrival t+4, last departure t+12; the gap closes
                // every bin before the next wave.
                t += 14;
            }
            Instance::new(DimVec::splat(dims, cap), items).expect("wide-dim instance valid")
        }
        Family::RepackChurn => {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9fb2_1c65_1e98_df25));
            let dims = rng.random_range(1..=2usize);
            let cap = 10u64;
            let mut items = Vec::new();
            let mut t = 0u64;
            // Waves of anchor+straggler bins: the anchor (over half the
            // bin) departs well before its stragglers, so a drain or
            // defrag sweep finds a nearly-empty bin right next to bins
            // with residual room. A few long-lived light items keep
            // destination bins open across the migration window.
            for _ in 0..rng.random_range(2..=4u32) {
                for _ in 0..rng.random_range(2..=4usize) {
                    let anchor_dur = rng.random_range(2..=4u64);
                    let size = DimVec::from_fn(dims, |_| rng.random_range(6..=8u64));
                    items.push(Item::new(size, t, t + anchor_dur));
                    for _ in 0..rng.random_range(1..=2usize) {
                        let size = DimVec::from_fn(dims, |_| rng.random_range(1..=2u64));
                        let dur = anchor_dur + rng.random_range(2..=5u64);
                        items.push(Item::new(size, t + 1, t + 1 + dur));
                    }
                }
                for _ in 0..rng.random_range(1..=3usize) {
                    let size = DimVec::from_fn(dims, |_| rng.random_range(1..=3u64));
                    items.push(Item::new(size, t, t + rng.random_range(8..=12u64)));
                }
                t += rng.random_range(6..=10u64);
            }
            Instance::new(DimVec::splat(dims, cap), items).expect("repack-churn instance valid")
        }
        Family::RegimeShift => {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xbf58_476d_1ce4_e5b9));
            let dims = rng.random_range(1..=2usize);
            let cap = 10u64;
            let mut items = Vec::new();
            let mut t = 0u64;
            let regimes = rng.random_range(2..=3u32);
            for r in 0..regimes {
                // Alternate which distribution leads so both orders
                // (heavy→light, light→heavy) are drawn across seeds.
                let heavy = (u64::from(r) + seed).is_multiple_of(2);
                for _ in 0..rng.random_range(8..=16usize) {
                    let a = t + rng.random_range(0..=3u64);
                    let dur = rng.random_range(1..=5u64);
                    let size = if heavy {
                        DimVec::from_fn(dims, |_| rng.random_range(6..=cap))
                    } else {
                        DimVec::from_fn(dims, |_| rng.random_range(1..=3u64))
                    };
                    items.push(Item::new(size, a, a + dur));
                }
                // Last arrival t+3, last departure t+8; the gap drains
                // every bin, so each regime boundary is a burst of
                // close events — the meta-policy's switch points.
                t += 10;
            }
            Instance::new(DimVec::splat(dims, cap), items).expect("regime-shift instance valid")
        }
    };
    announce_exact(&inst)
}

/// One fuzzer-found conformance failure, already minimized.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Family the failing instance came from.
    pub family: Family,
    /// Generator seed of the failing instance.
    pub seed: u64,
    /// The divergence on the *shrunk* instance.
    pub divergence: Divergence,
    /// Delta-debugged minimal instance still exhibiting the divergence.
    pub shrunk: Instance,
}

/// Summary of one fuzzing campaign.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Seeds exercised per family.
    pub seeds: u64,
    /// Total `(instance, policy)` differential runs executed.
    pub runs: usize,
    /// Minimized failures, in discovery order.
    pub failures: Vec<FuzzFailure>,
}

/// Runs `seeds` seeds across every family, shrinking each failure.
///
/// `on_instance` is called once per generated instance (for progress
/// output); pass `|_, _| {}` to ignore.
#[must_use]
pub fn run(seeds: u64, mut on_instance: impl FnMut(Family, u64)) -> FuzzReport {
    let mut report = FuzzReport {
        seeds,
        runs: 0,
        failures: Vec::new(),
    };
    for seed in 0..seeds {
        for family in FAMILIES {
            on_instance(family, seed);
            let inst = generate(family, seed);
            report.runs += diff::kinds_for(&inst, seed).len();
            if let Err(_first) = diff::check_instance(&inst, seed) {
                let (shrunk, divergence) = shrink::shrink(&inst, seed);
                report.failures.push(FuzzFailure {
                    family,
                    seed,
                    divergence,
                    shrunk,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_family_and_seed() {
        for family in FAMILIES {
            let a = generate(family, 3);
            let b = generate(family, 3);
            assert_eq!(a, b, "{}", family.name());
        }
    }

    #[test]
    fn families_produce_distinct_instances() {
        let u = generate(Family::Uniform, 0);
        let a = generate(Family::Adversarial, 0);
        let e = generate(Family::Extended, 0);
        assert_ne!(u, a);
        assert_ne!(u, e);
    }

    #[test]
    fn high_churn_spans_both_dimvec_representations() {
        let mut dims_seen = std::collections::HashSet::new();
        for seed in 0..40 {
            dims_seen.insert(generate(Family::HighChurn, seed).dim());
        }
        assert!(
            dims_seen.iter().any(|&d| d >= 8),
            "no heap-DimVec dimensionality drawn: {dims_seen:?}"
        );
        assert!(
            dims_seen.iter().any(|&d| d <= 2),
            "no inline dimensionality drawn: {dims_seen:?}"
        );
    }

    #[test]
    fn equal_tick_family_collides_departures_with_arrivals() {
        for seed in 0..10 {
            let inst = generate(Family::EqualTick, seed);
            let one_tick = inst.items.iter().filter(|i| i.duration() == 1).count();
            assert!(
                one_tick * 2 >= inst.len(),
                "seed {seed}: only {one_tick}/{} one-tick stays",
                inst.len()
            );
            let arrivals: std::collections::HashSet<_> =
                inst.items.iter().map(|i| i.arrival).collect();
            assert!(
                inst.items.iter().any(|i| arrivals.contains(&i.departure)),
                "seed {seed}: no departure lands on an arrival tick"
            );
        }
    }

    #[test]
    fn repack_churn_family_actually_migrates() {
        // The family exists to exercise the layer-10 audit on real
        // migration plans; if no seed ever migrates, it is vacuous.
        let mut migrating_seeds = 0u32;
        for seed in 0..12 {
            let inst = generate(Family::RepackChurn, seed);
            let mut live = dvbp_core::LiveRequest::new(dvbp_core::PolicyKind::FirstFit)
                .capacity(inst.capacity.clone())
                .repack(dvbp_core::RepackPolicy::DrainOnDepart { k: 2 })
                .build()
                .unwrap();
            let mut source = dvbp_core::InstanceSource::new(&inst).unwrap();
            live.drive_source(&mut source).unwrap();
            if live.migrations() > 0 {
                migrating_seeds += 1;
            }
        }
        assert!(
            migrating_seeds >= 6,
            "only {migrating_seeds}/12 repack-churn seeds migrate"
        );
    }

    #[test]
    fn regime_shift_family_actually_flips_the_meta_policy() {
        // The family exists to hand the meta-policies genuinely
        // diverging scoreboards; if no seed ever makes a best-of
        // portfolio switch its live policy, it is vacuous.
        let mut switching_seeds = 0u32;
        for seed in 0..12 {
            let inst = generate(Family::RegimeShift, seed);
            let live = dvbp_core::LiveRequest::new(dvbp_core::PolicyKind::NextFit)
                .capacity(inst.capacity.clone())
                .trace_mode(dvbp_core::TraceMode::CostOnly)
                .shadow_policies([
                    dvbp_core::PolicyKind::FirstFit,
                    dvbp_core::PolicyKind::NextFit,
                ])
                .items_hint(inst.items.len())
                .build()
                .unwrap();
            let mut pf = dvbp_portfolio::PortfolioEngine::new(
                live,
                dvbp_portfolio::MetaPolicy::BestOf { window: 1 },
                inst.items.len(),
            )
            .unwrap();
            let mut ids = vec![usize::MAX; inst.items.len()];
            for op in dvbp_core::live_ops(&inst) {
                match op {
                    dvbp_core::LiveOp::Arrive { item, size, time } => {
                        ids[item] = pf.arrive(size, time).unwrap().item;
                    }
                    dvbp_core::LiveOp::Depart { item, time } => {
                        pf.depart(ids[item], time).unwrap();
                    }
                }
            }
            if !pf.switches().is_empty() {
                switching_seeds += 1;
            }
        }
        assert!(
            switching_seeds >= 6,
            "only {switching_seeds}/12 regime-shift seeds switch"
        );
    }

    #[test]
    fn instances_are_announced_for_clairvoyant_kinds() {
        for family in FAMILIES {
            let inst = generate(family, 1);
            assert!(
                inst.items.iter().all(|i| i.announced_duration.is_some()),
                "{}",
                family.name()
            );
        }
    }
}

//! The curated seed corpus: regression instances committed under the
//! repository's `tests/corpus/` and replayed by a tier-1 test.
//!
//! Two kinds of entries live in the corpus:
//!
//! * **seed entries** (this module) — hand-built and generator-derived
//!   instances targeting the engine's sharpest edges: segment-tree growth
//!   and closure in `IndexedFirstFit`, equal-tick departure/arrival
//!   races, and the §6 adversarial tie-breaking sequences. Regenerate
//!   the files with `dvbp-conformance --write-seed-corpus`;
//! * **shrunk reproducers** — written automatically by the fuzzer when a
//!   divergence is found (`div-<family>-seed<N>-<policy>.json`). None
//!   exist while the engine conforms; any that appear must be committed
//!   and kept green forever.

use dvbp_core::{Instance, Item};
use dvbp_dimvec::DimVec;
use dvbp_workloads::adversarial::{AnyFitLb, MtfLb, NextFitLb};
use dvbp_workloads::extended::{ArrivalDist, DurationDist, ExtendedParams, SizeDist};
use dvbp_workloads::predictions::announce_exact;
use dvbp_workloads::uniform::UniformParams;

fn item(size: &[u64], a: u64, e: u64) -> Item {
    Item::new(DimVec::from_slice(size), a, e)
}

/// Forces the `IndexedFirstFit` residual tree through two capacity
/// doublings (1 → 2 → 4 → 8 leaves) while bins fill, drain, and close,
/// then packs into the survivors — the exact paths a stale tree node
/// would corrupt.
fn residual_tree_growth() -> Instance {
    let mut items = Vec::new();
    // Five 6-unit blockers open five bins (6 + 6 > 10): the tree must
    // grow past the 4-leaf boundary, preserving earlier residuals.
    for t in 0..5u64 {
        items.push(item(&[6], t, 20));
    }
    // Fillers that first-fit into the earliest bins with room.
    items.push(item(&[4], 5, 12)); // bin 0 -> full
    items.push(item(&[4], 6, 12)); // bin 1 -> full
    items.push(item(&[3], 7, 20)); // bin 2 -> residual 1
                                   // After the fillers depart at 12, bins 0 and 1 have room again.
    items.push(item(&[2], 13, 18));
    items.push(item(&[2], 14, 18));
    // Everything is gone by 20; these must open fresh bins, not match
    // the closed ones through a stale tree entry.
    items.push(item(&[5], 21, 25));
    items.push(item(&[5], 22, 25));
    Instance::new(DimVec::scalar(10), items).expect("hand-built instance is valid")
}

/// A bin closing at the exact tick another item arrives: the departing
/// item's capacity must not be offered to the arrival (closed bins are
/// dead), and the residual tree must be zeroed before the query.
fn residual_tree_close_race() -> Instance {
    let items = vec![
        item(&[10], 0, 5), // fills bin 0, departs at 5
        item(&[2], 4, 6),  // bin 0 is full -> opens bin 1
        item(&[10], 5, 9), // arrives as bin 0 closes; must open bin 2
        item(&[8], 5, 6),  // fits bin 1 (2 + 8 = 10)
        item(&[1], 9, 12), // everything closed or full history; fresh bin
    ];
    Instance::new(DimVec::scalar(10), items).expect("hand-built instance is valid")
}

/// A burst of equal-tick arrivals followed by equal-tick departures
/// interleaved with arrivals at the same tick — the tie-breaking rules
/// (departures first, then item order) decide every placement.
fn equal_tick_burst() -> Instance {
    let items = vec![
        item(&[5], 0, 3),
        item(&[4], 0, 3),
        item(&[3], 0, 3),
        item(&[2], 0, 6),
        item(&[5], 0, 6),
        item(&[4], 0, 3),
        // Arrive exactly as the t = 3 departures free capacity.
        item(&[6], 3, 6),
        item(&[6], 3, 6),
        item(&[2], 3, 6),
    ];
    Instance::new(DimVec::scalar(8), items).expect("hand-built instance is valid")
}

/// Linf ties in two dimensions: loads (6,0) and (0,6) measure equal, so
/// Best/Worst Fit must fall back to the earliest-bin rule.
fn multidim_tiebreak() -> Instance {
    let items = vec![
        item(&[6, 1], 0, 10),
        item(&[1, 6], 0, 10),
        item(&[3, 3], 1, 5),
        item(&[3, 3], 2, 5),
        item(&[4, 4], 3, 8),
    ];
    Instance::new(DimVec::from_slice(&[10, 10]), items).expect("hand-built instance is valid")
}

/// Two-dimensional fit-index growth with closes interleaved: bins open
/// past the 4-leaf boundary while earlier bins close, so the doubling
/// rebuild must copy live residuals and keep closed leaves pinned at 0.
fn fitindex_growth_close_2d() -> Instance {
    let items = vec![
        // Wave 1: three mutually exclusive blockers -> bins 0..2.
        item(&[7, 2], 0, 6),
        item(&[2, 7], 0, 9),
        item(&[6, 6], 1, 12),
        // Bin 0 drains at 6 and closes; growth continues past it.
        item(&[7, 7], 7, 14),  // fits no survivor -> bin 3
        item(&[9, 1], 8, 14),  // bin 4: crosses the 4-leaf boundary
        item(&[1, 9], 9, 14),  // only bin 4 has room ([10, 10])
        item(&[3, 3], 10, 13), // first fit lands in bin 1
        // Everything drains by 14; these must not resurrect closed leaves.
        item(&[5, 5], 15, 18),
        item(&[5, 5], 16, 18),
    ];
    Instance::new(DimVec::from_slice(&[10, 10]), items).expect("hand-built instance is valid")
}

/// Nine-dimensional open → drain → idle-gap → fresh-arrival cycles: after
/// each gap every bin is closed, so the fit index must never surface the
/// old bins even though their leaves once held near-full residuals.
fn reopen_gap_d9() -> Instance {
    let d = 9;
    let blocker = |t: u64, hot: usize, e: u64| {
        Item::new(DimVec::from_fn(d, |j| if j == hot { 6 } else { 1 }), t, e)
    };
    let mut items = Vec::new();
    for cycle in 0..3u64 {
        let t = cycle * 20;
        // Two blockers hot in dimension 0 cannot share a bin; the third,
        // hot in dimension 1, fits alongside either.
        items.push(blocker(t, 0, t + 8));
        items.push(blocker(t + 1, 0, t + 8));
        items.push(blocker(t + 2, 1, t + 6));
        items.push(Item::new(DimVec::splat(d, 1), t + 3, t + 7));
        // Idle until the next cycle: every bin closes.
    }
    Instance::new(DimVec::splat(d, 10), items).expect("hand-built instance is valid")
}

/// An anchor departure that strands two small stragglers in a
/// two-dimensional bin while a long-lived neighbor has room for both:
/// `DrainOnDepart{k: 2}` must migrate the pair (all-or-nothing, in
/// index order) and close the drained bin, so the committed replay
/// pins layer 10's audit on a real multi-item vector-capacity plan —
/// and pins `NoRepack` to the batch packing on the same trace.
fn repack_drain_stragglers() -> Instance {
    let items = vec![
        item(&[7, 5], 0, 4),  // bin 0 anchor; its departure triggers the drain
        item(&[2, 2], 1, 9),  // bin 0 straggler (migrates first)
        item(&[1, 2], 2, 8),  // bin 0 straggler (fits only after the first move)
        item(&[6, 6], 1, 10), // bin 1: the destination, (6,6)+(2,2)+(1,2) = (9,10)
    ];
    Instance::new(DimVec::from_slice(&[10, 10]), items).expect("hand-built instance is valid")
}

/// Natural closes pace a `BudgetedDefrag{period: 2}` sweep: the second
/// close (at t = 5) finds a one-item bin whose resident fits a later
/// bin, so the sweep drains it at L1 cost — while `DrainOnDepart`
/// migrates the same item one tick earlier from the departure boundary.
/// One committed trace exercises both trigger paths of layer 10.
fn repack_defrag_sweep() -> Instance {
    let items = vec![
        item(&[9], 0, 2),  // bin 0, sole item; closes at 2 (first natural close)
        item(&[8], 0, 4),  // bin 1 anchor
        item(&[2], 1, 9),  // bin 1 straggler (8 + 2 = 10)
        item(&[9], 1, 5),  // bin 2, sole item; closing at 5 fires the sweep
        item(&[3], 3, 10), // bin 3: the only destination with room
    ];
    Instance::new(DimVec::scalar(10), items).expect("hand-built instance is valid")
}

/// The minimal switch-on-close shape: a full-bin blocker forces NextFit
/// to strand a tail item in a fresh bin while FirstFit would reuse the
/// earliest bin, so the blocker's close (the first close of the run)
/// hands a `best-of:1` portfolio a strictly better FirstFit shadow and
/// the live policy flips exactly there — never between placements. The
/// post-switch arrival then lands where only FirstFit would put it.
fn portfolio_switch_on_close() -> Instance {
    let items = vec![
        item(&[3], 0, 8),  // bin 0 resident
        item(&[10], 1, 3), // bin 1 blocker; its close at 3 is the switch point
        item(&[3], 2, 8),  // NextFit: bin 1 full -> bin 2; FirstFit: bin 0
        item(&[4], 4, 8),  // post-switch probe: FirstFit packs bin 0 (3+3+4)
    ];
    Instance::new(DimVec::scalar(10), items).expect("hand-built instance is valid")
}

/// The hysteresis guard earning its keep: NextFit falls more than 10%
/// behind FirstFit at the second bin close — inside the
/// `SWITCH_COOLDOWN_CLOSES` guard, so `switch:10` must hold — and by the
/// time the cooldown expires the long-lived base bins have diluted the
/// constant absolute gap below the threshold, so the run ends with the
/// transient regret recorded on the scoreboard and zero switches.
fn portfolio_no_switch_hysteresis() -> Instance {
    let items = vec![
        item(&[9], 0, 40),   // base bins: three long residents whose
        item(&[9], 0, 40),   // growing cost dilutes the NextFit gap
        item(&[4], 0, 40),   // NextFit's current bin (residual 6)
        item(&[10], 1, 3),   // bin 3 blocker; close #1
        item(&[5], 2, 6),    // NextFit: bin 3 full -> bin 4; FirstFit: bin 2
        item(&[10], 8, 10),  // close #3 (bin 4 closed at 6: close #2)
        item(&[10], 12, 14), // close #4: cooldown over, gap already < 10%
    ];
    Instance::new(DimVec::scalar(10), items).expect("hand-built instance is valid")
}

/// Staggered lone departures from a shared bin: most depart groups in
/// the serve WAL are single `Depart` lines whose bin stays open, so
/// crash cuts land on the trailing-lone-`Depart` ambiguity the recovery
/// replay has to resolve (and the final departures *do* close bins,
/// exercising the closed-flag rollback).
fn crash_wal_lone_depart() -> Instance {
    let items = vec![
        item(&[3], 0, 20), // bin 0 anchor; its departure closes the bin
        item(&[3], 1, 5),  // lone depart at 5
        item(&[3], 2, 6),  // lone depart at 6
        item(&[8], 3, 12), // bin 1 blocker; sole item -> closing depart
        item(&[6], 7, 9),  // rejoins bin 0 after the drains; lone depart
    ];
    Instance::new(DimVec::scalar(10), items).expect("hand-built instance is valid")
}

/// Blocker waves that open and close whole bins each phase: the WAL is
/// dense with 4-line arrival groups (`BinOpen` present) and `BinClose`
/// commits, including two closings at the same tick — mid-group crash
/// cuts must roll back exactly one unacknowledged operation.
fn crash_wal_openclose_churn() -> Instance {
    let items = vec![
        item(&[7], 0, 4),   // bin 0, closes at 4
        item(&[7], 1, 4),   // bin 1, closes at 4 (same tick as bin 0)
        item(&[7], 5, 8),   // bin 2
        item(&[4], 5, 8),   // does not fit 7 -> bin 3; both close at 8
        item(&[10], 9, 11), // bin 4, full then gone
    ];
    Instance::new(DimVec::scalar(10), items).expect("hand-built instance is valid")
}

/// An equal-tick burst where departures close a bin at the very tick new
/// items arrive: crash cuts inside the tick-3 batch force the resumed
/// service to re-drive departures before arrivals at the same tick.
fn crash_wal_equal_tick_resume() -> Instance {
    let items = vec![
        item(&[5], 0, 3), // bin 0
        item(&[4], 0, 3), // opens bin 1; its departure closes it at 3
        item(&[2], 0, 6), // bin 0 survivor
        item(&[5], 3, 6), // arrives as bins drain at 3
        item(&[6], 3, 6),
        item(&[2], 3, 6),
    ];
    Instance::new(DimVec::scalar(8), items).expect("hand-built instance is valid")
}

/// The committed image of live zero-duration churn: under
/// `TimeMode::Clamp` a zero-duration live item becomes the one-tick stay
/// `[a, a+1)`, so every tick here carries simultaneous departures and
/// arrivals and the equal-tick rules (departures first, then item order)
/// decide each placement — including a full-bin one-tick blocker whose
/// departure must free its capacity for the very next tick's arrivals.
fn clamp_zero_duration() -> Instance {
    let items = vec![
        item(&[8], 0, 1), // full-bin blocker, gone at 1
        item(&[3], 0, 4), // long resident alongside (opens bin 1)
        item(&[5], 1, 2), // arrives as the blocker departs: bin 0 is
        item(&[5], 1, 2), // closed, bin 1 has room for one of these
        item(&[4], 2, 3), // chases the tick-2 departures
        item(&[4], 2, 3),
        item(&[8], 3, 4), // full-bin again at the drain tick
        item(&[1], 4, 5), // everything else gone; fresh bin
    ];
    Instance::new(DimVec::scalar(8), items).expect("hand-built instance is valid")
}

/// A committed high-churn draw at the requested dimensionality (the
/// family randomizes `d ∈ {1, 2, 8, 9}`; scanning seeds keeps the corpus
/// file deterministic).
fn high_churn_with_dim(d: usize) -> Instance {
    (0..256u64)
        .map(|s| crate::fuzz::generate(crate::fuzz::Family::HighChurn, s))
        .find(|i| i.dim() == d)
        .expect("some seed in 0..256 draws each dimensionality")
}

/// A committed wide-dim draw at `d = 16`: blocker waves whose open-bin
/// count straddles the block scan's lane boundaries, so the remainder
/// lanes and padding sentinels of the vectorized kernel decide the
/// light items' placements.
fn widedim_remainder_d16() -> Instance {
    (0..256u64)
        .map(|s| crate::fuzz::generate(crate::fuzz::Family::WideDim, s))
        .find(|i| i.dim() == 16)
        .expect("some wide-dim seed in 0..256 draws d = 16")
}

/// Ramps ~260 concurrent 12-dimensional blockers — through every block
/// of the SoA mirror's doubling growth and across the hybrid's d ≥ 10
/// scan-vs-index crossover (256 open bins) — then packs light items via
/// the indexed path and drains everything. Placements before and after
/// the crossover must agree bit for bit with the scalar reference.
fn widedim_crossover_d12() -> Instance {
    let d = 12;
    let blockers = 260u64;
    let mut items = Vec::new();
    // Each blocker is over half the bin in every dimension, so no two
    // share: open-bin count climbs 1, 2, ..., 260 and holds.
    for i in 0..blockers {
        items.push(Item::new(DimVec::splat(d, 6), i, blockers + 40));
    }
    // Light items arriving above the crossover: the fit index (latched
    // live mid-run) and the residual mirror must agree on the earliest
    // feasible bin.
    for i in 0..12u64 {
        items.push(Item::new(
            DimVec::splat(d, 2),
            blockers + 1 + i,
            blockers + 30,
        ));
    }
    Instance::new(DimVec::splat(d, 10), items).expect("crossover instance valid")
}

/// Every committed seed entry as `(file_stem, instance)`, with exact
/// duration announcements so the clairvoyant policies join the replay.
#[must_use]
pub fn seed_corpus() -> Vec<(&'static str, Instance)> {
    let zipf_bursty = ExtendedParams {
        base: UniformParams {
            dims: 2,
            items: 40,
            mu: 8,
            span: 40,
            bin_size: 10,
        },
        sizes: SizeDist::Zipf { exponent: 1.2 },
        durations: DurationDist::Geometric { p: 0.3 },
        arrivals: ArrivalDist::Bursty { waves: 3, width: 2 },
    }
    .generate(0);
    let entries = vec![
        ("residual-tree-growth", residual_tree_growth()),
        ("residual-tree-close-race", residual_tree_close_race()),
        ("equal-tick-burst", equal_tick_burst()),
        ("clamp-zero-duration", clamp_zero_duration()),
        ("multidim-tiebreak", multidim_tiebreak()),
        (
            "thm5-anyfit-lb",
            AnyFitLb {
                k: 1,
                d: 2,
                mu: 2,
                m: 2,
            }
            .instance(),
        ),
        (
            "thm6-nextfit-lb",
            NextFitLb { k: 2, d: 1, mu: 2 }.instance(),
        ),
        ("thm8-mtf-lb", MtfLb { n: 2, mu: 3 }.instance()),
        ("zipf-bursty", zipf_bursty),
        ("fitindex-growth-close-2d", fitindex_growth_close_2d()),
        ("reopen-gap-d9", reopen_gap_d9()),
        ("highchurn-blockers-d8", high_churn_with_dim(8)),
        ("widedim-remainder-d16", widedim_remainder_d16()),
        ("widedim-crossover-d12", widedim_crossover_d12()),
        ("repack-drain-stragglers", repack_drain_stragglers()),
        ("repack-defrag-sweep", repack_defrag_sweep()),
        ("crash-wal-lone-depart", crash_wal_lone_depart()),
        ("crash-wal-openclose-churn", crash_wal_openclose_churn()),
        ("crash-wal-equal-tick-resume", crash_wal_equal_tick_resume()),
        ("portfolio-switch-on-close", portfolio_switch_on_close()),
        (
            "portfolio-no-switch-hysteresis",
            portfolio_no_switch_hysteresis(),
        ),
    ];
    entries
        .into_iter()
        .map(|(name, inst)| (name, announce_exact(&inst)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff;
    use dvbp_core::PackRequest;

    #[test]
    fn seed_corpus_is_valid_and_conformant() {
        for (name, inst) in seed_corpus() {
            inst.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            diff::check_instance(&inst, 0xC0FFEE).unwrap_or_else(|d| panic!("{name}: {d}"));
        }
    }

    #[test]
    fn seed_corpus_names_are_unique() {
        let mut names: Vec<_> = seed_corpus().into_iter().map(|(n, _)| n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), seed_corpus().len());
    }

    #[test]
    fn growth_case_really_opens_five_concurrent_bins() {
        let inst = residual_tree_growth();
        let p = PackRequest::new(dvbp_core::PolicyKind::IndexedFirstFit)
            .run(&inst)
            .unwrap();
        assert!(p.max_concurrent_bins() >= 5, "{}", p.max_concurrent_bins());
    }

    #[test]
    fn growth_close_2d_crosses_the_four_leaf_boundary() {
        let inst = fitindex_growth_close_2d();
        let p = PackRequest::new(dvbp_core::PolicyKind::FirstFit)
            .run(&inst)
            .unwrap();
        assert!(p.num_bins() >= 5, "{}", p.num_bins());
    }

    #[test]
    fn reopen_gap_d9_opens_fresh_bins_each_cycle() {
        let inst = reopen_gap_d9();
        assert_eq!(inst.dim(), 9);
        let p = PackRequest::new(dvbp_core::PolicyKind::FirstFit)
            .run(&inst)
            .unwrap();
        // Each of the three cycles needs at least two bins, and bins are
        // never reused across the idle gaps.
        assert!(p.num_bins() >= 6, "{}", p.num_bins());
    }

    /// Drives `inst` under FirstFit with `repack` attached and returns
    /// `(migrations, migration_cost)`.
    fn drive_repack(inst: &Instance, repack: dvbp_core::RepackPolicy) -> (u64, u64) {
        let mut live = dvbp_core::LiveRequest::new(dvbp_core::PolicyKind::FirstFit)
            .capacity(inst.capacity.clone())
            .repack(repack)
            .build()
            .unwrap();
        let mut source = dvbp_core::InstanceSource::new(inst).unwrap();
        live.drive_source(&mut source).unwrap();
        (live.migrations(), live.migration_cost())
    }

    #[test]
    fn drain_stragglers_really_migrates_the_pair() {
        let inst = repack_drain_stragglers();
        let (moves, cost) = drive_repack(&inst, dvbp_core::RepackPolicy::DrainOnDepart { k: 2 });
        assert_eq!((moves, cost), (2, 2), "unit-cost pair drain");
    }

    #[test]
    fn defrag_sweep_entry_migrates_under_both_trigger_paths() {
        let inst = repack_defrag_sweep();
        let (moves, cost) = drive_repack(&inst, dvbp_core::RepackPolicy::DrainOnDepart { k: 2 });
        assert_eq!((moves, cost), (1, 1), "departure-boundary drain");
        let (moves, cost) = drive_repack(
            &inst,
            dvbp_core::RepackPolicy::BudgetedDefrag {
                budget: 8,
                period: 2,
            },
        );
        assert_eq!((moves, cost), (1, 2), "close-boundary sweep at L1 cost");
    }

    /// Drives `inst` through a portfolio (NextFit live, FirstFit and
    /// NextFit shadows) under `meta`; returns the engine and the shadow
    /// costs captured right after the last operation at tick `snap_at`
    /// (candidate order), for asserting on mid-run scoreboards that the
    /// finished run's closed bins would otherwise absorb.
    fn drive_portfolio(
        inst: &Instance,
        meta: dvbp_portfolio::MetaPolicy,
        snap_at: u64,
    ) -> (dvbp_portfolio::PortfolioEngine, Vec<dvbp_sim::Cost>) {
        let live = dvbp_core::LiveRequest::new(dvbp_core::PolicyKind::NextFit)
            .capacity(inst.capacity.clone())
            .trace_mode(dvbp_core::TraceMode::CostOnly)
            .shadow_policies([
                dvbp_core::PolicyKind::FirstFit,
                dvbp_core::PolicyKind::NextFit,
            ])
            .items_hint(inst.items.len())
            .build()
            .unwrap();
        let mut pf = dvbp_portfolio::PortfolioEngine::new(live, meta, inst.items.len()).unwrap();
        let mut ids = vec![usize::MAX; inst.items.len()];
        let mut snap = Vec::new();
        for op in dvbp_core::live_ops(inst) {
            let time = match op {
                dvbp_core::LiveOp::Arrive { item, size, time } => {
                    ids[item] = pf.arrive(size, time).unwrap().item;
                    time
                }
                dvbp_core::LiveOp::Depart { item, time } => {
                    pf.depart(ids[item], time).unwrap();
                    time
                }
            };
            if time == snap_at {
                snap = pf.scoreboard(time).iter().map(|row| row.cost).collect();
            }
        }
        (pf, snap)
    }

    #[test]
    fn switch_on_close_entry_really_switches_at_the_close() {
        let inst = portfolio_switch_on_close();
        let (pf, _) = drive_portfolio(&inst, dvbp_portfolio::MetaPolicy::BestOf { window: 1 }, 3);
        let switches = pf.switches();
        assert_eq!(switches.len(), 1, "{switches:?}");
        assert_eq!(switches[0].time, 3, "switch rides the blocker's close");
        assert_eq!(switches[0].from, "NextFit");
        assert_eq!(switches[0].to, "FirstFit");
        assert_eq!(pf.live().kind(), &dvbp_core::PolicyKind::FirstFit);
    }

    #[test]
    fn hysteresis_entry_suppresses_a_transiently_winning_shadow() {
        let inst = portfolio_no_switch_hysteresis();
        let (pf, costs_at_6) = drive_portfolio(
            &inst,
            dvbp_portfolio::MetaPolicy::SwitchThreshold { threshold_pct: 10 },
            6,
        );
        assert!(pf.switches().is_empty(), "{:?}", pf.switches());
        assert_eq!(pf.live().kind(), &dvbp_core::PolicyKind::NextFit);
        // The guard did real work: at the second close (t = 6) the
        // FirstFit shadow led by more than the threshold — only the
        // cooldown kept the live policy in place.
        let unguarded = dvbp_portfolio::MetaPolicy::SwitchThreshold { threshold_pct: 10 }.decide(
            1,
            &costs_at_6,
            2,
            dvbp_portfolio::SWITCH_COOLDOWN_CLOSES,
        );
        assert_eq!(unguarded, Some(0), "shadow costs at t = 6: {costs_at_6:?}");
    }

    #[test]
    fn committed_high_churn_draw_is_really_d8() {
        assert_eq!(high_churn_with_dim(8).dim(), 8);
    }

    #[test]
    fn committed_widedim_draw_is_really_d16() {
        assert_eq!(widedim_remainder_d16().dim(), 16);
    }

    #[test]
    fn widedim_crossover_really_crosses_the_hybrid_latch() {
        let inst = widedim_crossover_d12();
        assert_eq!(inst.dim(), 12);
        let p = PackRequest::new(dvbp_core::PolicyKind::FirstFit)
            .run(&inst)
            .unwrap();
        // 260 mutually exclusive blockers: the open-bin count must pass
        // the d ≥ 10 scan-vs-index crossover (256) while they overlap.
        assert!(
            p.max_concurrent_bins() >= 260,
            "{}",
            p.max_concurrent_bins()
        );
    }
}

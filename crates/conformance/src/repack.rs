//! Layer 10: repacking conformance.
//!
//! A [`RepackPolicy`] is allowed to move items between open bins — an
//! entirely new way for the engine to corrupt state if the bookkeeping
//! is wrong. This layer drives every instance through live engines
//! under the standard repack suite ([`SUITE`]) and audits the recorded
//! observer stream with an independent reference checker:
//!
//! * **slice-wise capacity** — after every `Place` and `Migrate`, each
//!   bin's per-dimension load must fit the capacity;
//! * **liveness** — a migration never references a departed item, an
//!   unknown item, or a closed bin, and the source bin actually holds
//!   the item being moved;
//! * **closure** — `BinClose` only fires on empty bins, and a closed
//!   bin never receives another placement or migration;
//! * **provenance** — the `Migrate` events in the observer stream must
//!   equal, move for move, the [`LiveMigration`]s the engine reported
//!   from [`LiveEngine::depart`](dvbp_core::LiveEngine::depart);
//! * **accounting** — `migrations()` / `migration_cost()` totals match
//!   the reported moves, and each move's charge follows the policy's
//!   cost model (`1` per drained item, L1 size for defrag);
//! * **`NoRepack` identity** — with migration disabled the live run
//!   must still be bit-identical to the batch engine (the repack layer
//!   costs nothing when it is off).

use crate::diff::{first_difference, Divergence};
use dvbp_core::{
    live_ops, Instance, LiveMigration, LiveOp, LiveRequest, PackRequest, PolicyKind, RepackPolicy,
};
use dvbp_obs::{ObsEvent, Recorder};
use dvbp_sim::Time;
use std::collections::HashMap;

/// The repack suite every instance is checked under: migration off
/// (the bit-identity baseline), a per-departure drain, and a periodic
/// budgeted defrag sweep.
pub const SUITE: [RepackPolicy; 3] = [
    RepackPolicy::NoRepack,
    RepackPolicy::DrainOnDepart { k: 2 },
    RepackPolicy::BudgetedDefrag {
        budget: 8,
        period: 2,
    },
];

/// One bin's audited state.
#[derive(Debug, Default)]
struct BinState {
    /// Per-dimension load of the items currently inside.
    load: Vec<u64>,
    /// Items currently inside, with their sizes.
    contents: HashMap<usize, Vec<u64>>,
    /// Whether the bin's usage period has ended.
    closed: bool,
}

/// Replays one recorded observer stream from scratch, enforcing the
/// capacity / liveness / closure invariants at every event. Returns the
/// `Migrate` events seen, in stream order.
fn audit_stream(events: &[ObsEvent]) -> Result<Vec<(Time, usize, usize, usize)>, String> {
    let mut capacity: Vec<u64> = Vec::new();
    let mut sizes: HashMap<usize, Vec<u64>> = HashMap::new();
    let mut bins: HashMap<usize, BinState> = HashMap::new();
    let mut departed: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut migrations = Vec::new();

    let place = |bins: &mut HashMap<usize, BinState>,
                 capacity: &[u64],
                 bin: usize,
                 item: usize,
                 size: &[u64],
                 what: &str|
     -> Result<(), String> {
        let state = bins
            .get_mut(&bin)
            .ok_or(format!("{what}: bin {bin} was never opened"))?;
        if state.closed {
            return Err(format!("{what}: bin {bin} is closed"));
        }
        state.load.resize(size.len().max(state.load.len()), 0);
        for (d, &s) in size.iter().enumerate() {
            state.load[d] += s;
            if state.load[d] > capacity[d] {
                return Err(format!(
                    "{what}: bin {bin} overflows dim {d}: {} > {}",
                    state.load[d], capacity[d]
                ));
            }
        }
        state.contents.insert(item, size.to_vec());
        Ok(())
    };
    let remove = |bins: &mut HashMap<usize, BinState>,
                  bin: usize,
                  item: usize,
                  what: &str|
     -> Result<Vec<u64>, String> {
        let state = bins
            .get_mut(&bin)
            .ok_or(format!("{what}: bin {bin} was never opened"))?;
        let size = state
            .contents
            .remove(&item)
            .ok_or(format!("{what}: bin {bin} does not hold item {item}"))?;
        for (d, &s) in size.iter().enumerate() {
            state.load[d] -= s;
        }
        Ok(size)
    };

    for ev in events {
        match ev {
            ObsEvent::RunStart { capacity: cap, .. } => capacity.clone_from(cap),
            ObsEvent::Arrival { item, size, .. } => {
                sizes.insert(*item, size.clone());
            }
            ObsEvent::BinOpen { bin, .. } => {
                if bins.contains_key(bin) {
                    return Err(format!("BinOpen: bin {bin} opened twice"));
                }
                bins.insert(*bin, BinState::default());
            }
            ObsEvent::Place { item, bin, .. } => {
                let size = sizes
                    .get(item)
                    .ok_or(format!("Place: item {item} never arrived"))?
                    .clone();
                place(&mut bins, &capacity, *bin, *item, &size, "Place")?;
            }
            ObsEvent::Depart { item, bin, .. } => {
                remove(&mut bins, *bin, *item, "Depart")?;
                departed.insert(*item);
            }
            ObsEvent::Migrate {
                time,
                item,
                from,
                to,
            } => {
                if departed.contains(item) {
                    return Err(format!("Migrate: item {item} already departed"));
                }
                if from == to {
                    return Err(format!(
                        "Migrate: item {item} moved onto itself (bin {from})"
                    ));
                }
                let size = remove(&mut bins, *from, *item, "Migrate")?;
                place(&mut bins, &capacity, *to, *item, &size, "Migrate")?;
                migrations.push((*time, *item, *from, *to));
            }
            ObsEvent::BinClose { bin, .. } => {
                let state = bins
                    .get_mut(bin)
                    .ok_or(format!("BinClose: bin {bin} was never opened"))?;
                if state.closed {
                    return Err(format!("BinClose: bin {bin} closed twice"));
                }
                if !state.contents.is_empty() {
                    return Err(format!(
                        "BinClose: bin {bin} still holds {} item(s)",
                        state.contents.len()
                    ));
                }
                state.closed = true;
            }
            _ => {}
        }
    }
    Ok(migrations)
}

/// Expected charge of one migration under `repack`'s cost model.
fn model_cost(repack: RepackPolicy, size: &[u64]) -> u64 {
    match repack {
        RepackPolicy::NoRepack => 0,
        RepackPolicy::DrainOnDepart { .. } => 1,
        RepackPolicy::BudgetedDefrag { .. } => size.iter().sum(),
    }
}

/// Runs the layer-10 checks for one `(instance, kind, repack)` triple.
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
///
/// # Panics
///
/// Panics if `kind` is clairvoyant (live engines reject it); callers
/// gate on the non-clairvoyant suite.
pub fn check_policy(
    instance: &Instance,
    kind: &PolicyKind,
    repack: RepackPolicy,
) -> Result<(), Divergence> {
    let name = repack.name();
    let fail = |detail: String| Divergence::new(kind, format!("repack[{name}]: {detail}"));

    let mut live = LiveRequest::new(kind.clone())
        .capacity(instance.capacity.clone())
        .repack(repack)
        .observer(Recorder::new())
        .build()
        .expect("layer 10 runs non-clairvoyant kinds only");

    let mut local: HashMap<usize, usize> = HashMap::new();
    // back[engine index] = instance index (live engines index items in
    // arrival order; the batch packing indexes them in instance order).
    let mut back: Vec<usize> = Vec::new();
    let mut sizes: HashMap<usize, Vec<u64>> = HashMap::new();
    let mut reported: Vec<(Time, LiveMigration)> = Vec::new();
    for op in live_ops(instance) {
        match op {
            LiveOp::Arrive { item, size, time } => {
                let placed = live
                    .arrive(size.clone(), time)
                    .map_err(|e| fail(format!("arrive {item}: {e}")))?;
                sizes.insert(placed.item, size.as_slice().to_vec());
                local.insert(item, placed.item);
                debug_assert_eq!(placed.item, back.len());
                back.push(item);
            }
            LiveOp::Depart { item, time } => {
                let idx = local.remove(&item).expect("instance items arrive once");
                let dep = live
                    .depart(idx, time)
                    .map_err(|e| fail(format!("depart {item}: {e}")))?;
                for m in &dep.migrations {
                    reported.push((dep.time, *m));
                }
            }
        }
    }

    let migrations_total = live.migrations();
    let migration_cost_total = live.migration_cost();
    let (packing, recorder) = live
        .into_parts()
        .map_err(|e| fail(format!("into_parts: {e}")))?;

    // Independent stream audit: capacity, liveness, closure.
    let streamed = audit_stream(&recorder.events).map_err(&fail)?;

    // Provenance: the stream's Migrate events are exactly the engine's
    // reported moves, in order.
    let reported_tuples: Vec<(Time, usize, usize, usize)> = reported
        .iter()
        .map(|(t, m)| (*t, m.item, m.from.0, m.to.0))
        .collect();
    if streamed != reported_tuples {
        return Err(fail(format!(
            "observer stream migrations {streamed:?} != reported {reported_tuples:?}"
        )));
    }

    // Accounting: totals and the per-move cost model.
    if migrations_total != reported.len() as u64 {
        return Err(fail(format!(
            "migrations() reports {migrations_total} but {} moves were returned",
            reported.len()
        )));
    }
    let cost_sum: u64 = reported.iter().map(|(_, m)| m.cost).sum();
    if migration_cost_total != cost_sum {
        return Err(fail(format!(
            "migration_cost() reports {migration_cost_total} but moves sum to {cost_sum}"
        )));
    }
    for (t, m) in &reported {
        let size = &sizes[&m.item];
        let expected = model_cost(repack, size);
        if m.cost != expected {
            return Err(fail(format!(
                "move of item {} at t={t} charged {} (cost model says {expected})",
                m.item, m.cost
            )));
        }
    }

    // NoRepack is the bit-identity baseline: no moves, and the live
    // packing equals the batch engine's.
    if repack == RepackPolicy::NoRepack {
        if !reported.is_empty() {
            return Err(fail(format!(
                "NoRepack executed {} migration(s)",
                reported.len()
            )));
        }
        let batch = PackRequest::new(kind.clone()).run(instance).unwrap();
        let remapped = crate::serve::remap(&packing, &back, instance.len());
        if let Some(diff) = first_difference(&remapped, &batch) {
            return Err(fail(format!("NoRepack vs batch: {diff}")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbp_core::Item;
    use dvbp_dimvec::DimVec;

    fn migrating_instance() -> Instance {
        // cap [10]: 7 (t0..3), 7 (t1..5), 2 (t2..5). Item 0's departure
        // at t3 leaves bin 0 holding only the 2-item, which drains into
        // bin 1's residual 3.
        let item = |size: u64, a: u64, e: u64| Item::new(DimVec::scalar(size), a, e);
        Instance::new(
            DimVec::scalar(10),
            vec![item(7, 0, 3), item(7, 1, 5), item(2, 2, 5)],
        )
        .unwrap()
    }

    #[test]
    fn suite_passes_on_a_migrating_instance() {
        for repack in SUITE {
            check_policy(&migrating_instance(), &PolicyKind::FirstFit, repack).unwrap();
        }
    }

    #[test]
    fn audit_rejects_capacity_overflow() {
        let events = vec![
            ObsEvent::RunStart {
                capacity: vec![10],
                items: 2,
            },
            ObsEvent::Arrival {
                time: 0,
                item: 0,
                size: vec![7],
            },
            ObsEvent::Arrival {
                time: 0,
                item: 1,
                size: vec![7],
            },
            ObsEvent::BinOpen { time: 0, bin: 0 },
            ObsEvent::Place {
                time: 0,
                item: 0,
                bin: 0,
                opened_new: true,
                scanned: 0,
            },
            ObsEvent::BinOpen { time: 0, bin: 1 },
            ObsEvent::Place {
                time: 0,
                item: 1,
                bin: 1,
                opened_new: true,
                scanned: 1,
            },
            // 7 + 7 > 10: an illegal move the audit must catch.
            ObsEvent::Migrate {
                time: 1,
                item: 1,
                from: 1,
                to: 0,
            },
        ];
        let err = audit_stream(&events).unwrap_err();
        assert!(err.contains("overflows"), "{err}");
    }

    #[test]
    fn audit_rejects_resurrecting_a_departed_item() {
        let events = vec![
            ObsEvent::RunStart {
                capacity: vec![10],
                items: 1,
            },
            ObsEvent::Arrival {
                time: 0,
                item: 0,
                size: vec![2],
            },
            ObsEvent::BinOpen { time: 0, bin: 0 },
            ObsEvent::Place {
                time: 0,
                item: 0,
                bin: 0,
                opened_new: true,
                scanned: 0,
            },
            ObsEvent::Depart {
                time: 1,
                item: 0,
                bin: 0,
            },
            ObsEvent::Migrate {
                time: 1,
                item: 0,
                from: 0,
                to: 1,
            },
        ];
        let err = audit_stream(&events).unwrap_err();
        assert!(err.contains("already departed"), "{err}");
    }

    #[test]
    fn audit_rejects_closing_a_nonempty_bin() {
        let events = vec![
            ObsEvent::RunStart {
                capacity: vec![10],
                items: 1,
            },
            ObsEvent::Arrival {
                time: 0,
                item: 0,
                size: vec![2],
            },
            ObsEvent::BinOpen { time: 0, bin: 0 },
            ObsEvent::Place {
                time: 0,
                item: 0,
                bin: 0,
                opened_new: true,
                scanned: 0,
            },
            ObsEvent::BinClose { time: 1, bin: 0 },
        ];
        let err = audit_stream(&events).unwrap_err();
        assert!(err.contains("still holds"), "{err}");
    }

    #[test]
    fn no_repack_is_bit_identical_to_batch_for_the_whole_suite() {
        let inst = migrating_instance();
        for kind in [
            PolicyKind::FirstFit,
            PolicyKind::MoveToFront,
            PolicyKind::NextFit,
        ] {
            check_policy(&inst, &kind, RepackPolicy::NoRepack).unwrap();
        }
    }
}

//! `dvbp-conformance`: run the differential fuzzer from the command line.
//!
//! ```text
//! dvbp-conformance [--seeds N] [--corpus DIR]
//! ```
//!
//! Replays every applicable [`dvbp_core::PolicyKind`] over `N` seeds of
//! each workload family (uniform, adversarial, extended) through both the
//! optimized engine and the reference simulator. Any divergence is
//! delta-debugged to a minimal instance and written to `DIR` (default
//! `tests/corpus/`) as a JSON trace file; the process exits non-zero.

use dvbp_conformance::corpus;
use dvbp_conformance::fuzz::{self, Family};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: dvbp-conformance [--seeds N] [--corpus DIR] [--write-seed-corpus]\n\
     \n\
     --seeds N            seeds per workload family (default 50)\n\
     --corpus DIR         where to write reproducers (default tests/corpus)\n\
     --write-seed-corpus  (re)generate the curated regression corpus and exit"
}

/// A policy name like `BestFit[Linf]` as a safe file-name fragment.
fn slug(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Writes the curated seed corpus into `dir`.
fn write_seed_corpus(dir: &PathBuf) -> ExitCode {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create corpus dir {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    for (name, inst) in corpus::seed_corpus() {
        let path = dir.join(format!("{name}.json"));
        match dvbp::tracefile::save_instance(&path, &inst) {
            Ok(()) => println!("wrote {} ({} items)", path.display(), inst.items.len()),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut seeds: u64 = 50;
    let mut corpus = PathBuf::from("tests/corpus");
    let mut seed_corpus_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--write-seed-corpus" => seed_corpus_only = true,
            "--seeds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => seeds = n,
                None => {
                    eprintln!("--seeds needs a number\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--corpus" => match args.next() {
                Some(dir) => corpus = PathBuf::from(dir),
                None => {
                    eprintln!("--corpus needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    if seed_corpus_only {
        return write_seed_corpus(&corpus);
    }

    let report = fuzz::run(seeds, |family, seed| {
        if family == Family::Uniform && seed % 25 == 0 && seed > 0 {
            eprintln!("  ... seed {seed}/{seeds}");
        }
    });

    if report.failures.is_empty() {
        println!(
            "conformance: {} differential runs over {} seeds × {} families: zero divergence",
            report.runs,
            report.seeds,
            fuzz::FAMILIES.len()
        );
        return ExitCode::SUCCESS;
    }

    eprintln!("conformance: {} divergence(s) found", report.failures.len());
    if let Err(e) = std::fs::create_dir_all(&corpus) {
        eprintln!("cannot create corpus dir {}: {e}", corpus.display());
        return ExitCode::FAILURE;
    }
    for failure in &report.failures {
        let name = format!(
            "div-{}-seed{}-{}.json",
            failure.family.name(),
            failure.seed,
            slug(&failure.divergence.policy)
        );
        let path = corpus.join(&name);
        eprintln!(
            "  {} seed {}: {} ({} items after shrinking) -> {}",
            failure.family.name(),
            failure.seed,
            failure.divergence,
            failure.shrunk.items.len(),
            path.display()
        );
        if let Err(e) = dvbp::tracefile::save_instance(&path, &failure.shrunk) {
            eprintln!("  failed to write reproducer: {e}");
        }
    }
    ExitCode::FAILURE
}

//! Layer 8: serving-path conformance — `dvbp-serve` against the batch
//! engine, with crash recovery at arbitrary write-ahead-log cuts.
//!
//! For one `(instance, policy)` pair the serving checks are:
//!
//! * **one-shard identity** — driving the canonical operation feed
//!   ([`dvbp_core::live_ops`]) through a one-shard in-memory
//!   [`ServeState`] and snapshotting the shard must reproduce the batch
//!   [`PackRequest`] run **bit for bit**: assignment, per-bin usage
//!   records, decision trace, and cost (after mapping the shard's
//!   arrival-order item indices back to instance indices);
//! * **crash recovery** — the shard's WAL, cut at event boundaries *and*
//!   mid-line (torn final write), must recover without error; resuming
//!   the service from the recovered state and idempotently re-driving
//!   the full feed (duplicate-id / already-departed rejections are the
//!   resume path, not failures) must land in the *same* bit-identical
//!   final state as the uninterrupted run — for every cut;
//! * **sharded invariants** — with 2 and 3 hash-routed shards, each
//!   shard's packing must pass [`Packing::verify`] (and
//!   `verify_any_fit` for full-candidate policies) against its own
//!   sub-instance, totals must add up (`arrivals = n`, everything
//!   drained), and the reported service cost must equal the sum of the
//!   per-shard packing costs.
//!
//! The clairvoyant kinds (`DurationClassFirstFit`, `AlignedFit`) are
//! skipped: the serving layer rejects them by design, since a live
//! dispatch service has no announced durations.

use crate::diff::{first_difference, kinds_for, Divergence};
use dvbp_core::{
    live_ops, BinId, BinUsage, Instance, LiveOp, PackRequest, Packing, PolicyKind, RepackPolicy,
    TimeMode, TraceEvent, TraceMode,
};
use dvbp_obs::{scan_wal, JsonlEmitter, SyncPolicy};
use dvbp_serve::client::item_id;
use dvbp_serve::protocol::{Request, Response, ServeStatus};
use dvbp_serve::recovery::recover;
use dvbp_serve::router::RouterKind;
use dvbp_serve::server::ServeState;
use dvbp_serve::shard::{Shard, ShardError};

/// Which crash points of the WAL to exercise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPlan {
    /// Every event boundary plus a mid-line (torn) cut inside every
    /// line — the corpus-replay setting.
    Exhaustive,
    /// A deterministic sample of boundary and torn cuts (always
    /// including the empty log, one torn cut, and the full log) — the
    /// fuzzing setting.
    Sampled {
        /// Picks which cuts survive the subsampling.
        seed: u64,
    },
    /// No crash cuts; serving equivalence and shard invariants only.
    Skip,
}

/// Whether the serving layer accepts `kind` (it rejects the clairvoyant
/// policies, which need announced durations no live service has).
#[must_use]
pub fn servable(kind: &PolicyKind) -> bool {
    !matches!(
        kind,
        PolicyKind::DurationClassFirstFit | PolicyKind::AlignedFit
    )
}

/// One completed in-memory serving run.
struct ServeRun {
    shards: Vec<Shard<Vec<u8>>>,
    status: ServeStatus,
}

/// Drives the canonical feed through a fresh in-memory service; every
/// operation must be acknowledged.
fn drive(
    instance: &Instance,
    kind: &PolicyKind,
    ops: &[LiveOp],
    shards: usize,
) -> Result<ServeRun, Divergence> {
    let state = ServeState::in_memory(
        &instance.capacity,
        kind,
        RepackPolicy::NoRepack,
        shards,
        RouterKind::Hash,
        TraceMode::Full,
        TimeMode::Strict,
        SyncPolicy::PerEvent,
        None,
    )
    .map_err(|e| Divergence::new(kind, format!("serve[shards={shards}]: boot: {e}")))?;
    for op in ops {
        let req = match op {
            LiveOp::Arrive { item, size, time } => Request::Arrive {
                id: item_id(*item),
                size: size.as_slice().to_vec(),
                time: *time,
            },
            LiveOp::Depart { item, time } => Request::Depart {
                id: item_id(*item),
                time: *time,
            },
        };
        match (op, state.handle(&req)) {
            (LiveOp::Arrive { .. }, Response::Placed { .. })
            | (LiveOp::Depart { .. }, Response::Departed { .. }) => {}
            (_, other) => {
                return Err(Divergence::new(
                    kind,
                    format!("serve[shards={shards}]: {op:?} answered {other:?}"),
                ));
            }
        }
    }
    let status = state.status();
    Ok(ServeRun {
        shards: state.into_shards(),
        status,
    })
}

/// Recovers each shard-local index's instance index from the id table
/// (`item-{i}`, assigned by [`item_id`]).
fn back_map(kind: &PolicyKind, names: &[String]) -> Result<Vec<usize>, Divergence> {
    names
        .iter()
        .map(|name| {
            name.strip_prefix("item-")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| {
                    Divergence::new(kind, format!("serve: unparseable shard id {name:?}"))
                })
        })
        .collect()
}

/// Re-indexes a shard-local packing by instance item (`back[local] =
/// instance index`), against an instance of `n` items. Also used by the
/// layer-10 repack audit, whose live engines index items in arrival
/// order.
pub(crate) fn remap(packing: &Packing, back: &[usize], n: usize) -> Packing {
    let mut assignment = vec![BinId(usize::MAX); n];
    for (local, &bin) in packing.assignment.iter().enumerate() {
        assignment[back[local]] = bin;
    }
    let bins = packing
        .bins
        .iter()
        .map(|b| BinUsage {
            opened: b.opened,
            closed: b.closed,
            items: b.items.iter().map(|&i| back[i]).collect(),
        })
        .collect();
    let trace = packing
        .trace
        .iter()
        .map(|ev| match *ev {
            TraceEvent::Packed {
                time,
                item,
                bin,
                opened_new,
            } => TraceEvent::Packed {
                time,
                item: back[item],
                bin,
                opened_new,
            },
            closed => closed,
        })
        .collect();
    Packing {
        assignment,
        bins,
        trace,
    }
}

/// Consumes a drained shard into its instance-indexed packing and WAL
/// bytes.
fn snapshot(
    kind: &PolicyKind,
    shard: Shard<Vec<u8>>,
    n: usize,
    context: &str,
) -> Result<(Packing, Vec<u8>), Divergence> {
    let back = back_map(kind, shard.names())?;
    let (live, wal) = shard.into_parts();
    let packing = live
        .into_packing()
        .map_err(|e| Divergence::new(kind, format!("serve{context}: snapshot: {e}")))?;
    Ok((remap(&packing, &back, n), wal))
}

/// The crash points for `wal` under `plan`: event boundaries (a crash
/// between complete writes) interleaved with mid-line cuts (a torn
/// final write), 0 (nothing persisted), and the full log.
fn crash_cuts(wal: &[u8], plan: CrashPlan) -> Vec<usize> {
    let scan = scan_wal(wal).expect("an uninterrupted serve WAL must scan cleanly");
    let mut cuts = vec![0usize];
    let mut prev = 0usize;
    for &off in &scan.offsets {
        let off = usize::try_from(off).expect("WAL offsets fit usize");
        if off > prev + 1 {
            cuts.push(prev + (off - prev) / 2);
        }
        cuts.push(off);
        prev = off;
    }
    match plan {
        CrashPlan::Exhaustive => cuts,
        CrashPlan::Skip => Vec::new(),
        CrashPlan::Sampled { seed } => {
            let stride = (cuts.len() / 8).max(1);
            let phase = usize::try_from(seed % stride as u64).unwrap_or(0);
            let mut sample: Vec<usize> = cuts
                .iter()
                .copied()
                .enumerate()
                .filter(|&(i, _)| i % stride == phase)
                .map(|(_, c)| c)
                .collect();
            sample.push(0);
            sample.push(*cuts.last().expect("cuts always holds 0"));
            sample.sort_unstable();
            sample.dedup();
            sample
        }
    }
}

/// Crashes a one-shard service at `cut` bytes of `wal`, recovers,
/// re-drives the full feed idempotently, and compares the final state
/// to the uninterrupted `batch` packing.
fn check_crash_cut(
    instance: &Instance,
    kind: &PolicyKind,
    ops: &[LiveOp],
    batch: &Packing,
    wal: &[u8],
    cut: usize,
) -> Result<(), Divergence> {
    let rec = recover(
        &wal[..cut],
        &instance.capacity,
        kind,
        RepackPolicy::NoRepack,
        TraceMode::Full,
        TimeMode::Strict,
        None,
    )
    .map_err(|e| Divergence::new(kind, format!("serve[crash@{cut}]: recovery: {e}")))?;
    let mut shard = Shard::resume(
        rec.live,
        rec.ids,
        rec.names,
        rec.events_applied,
        JsonlEmitter::new(Vec::new()).with_sync(SyncPolicy::PerEvent),
        rec.portfolio,
    );
    for op in ops {
        let outcome = match op {
            LiveOp::Arrive { item, size, time } => {
                match shard.arrive(&item_id(*item), size.clone(), *time) {
                    Ok(_) | Err(ShardError::DuplicateId { .. }) => Ok(()),
                    Err(e) => Err(e),
                }
            }
            LiveOp::Depart { item, time } => match shard.depart(&item_id(*item), *time) {
                Ok(_) | Err(ShardError::AlreadyDeparted { .. }) => Ok(()),
                Err(e) => Err(e),
            },
        };
        if let Err(e) = outcome {
            return Err(Divergence::new(
                kind,
                format!("serve[crash@{cut}]: resume rejected {op:?}: {e}"),
            ));
        }
    }
    let (served, _) = snapshot(kind, shard, instance.len(), &format!("[crash@{cut}]"))?;
    if let Some(diff) = first_difference(&served, batch) {
        return Err(Divergence::new(
            kind,
            format!("serve[crash@{cut} of {} WAL bytes]: {diff}", wal.len()),
        ));
    }
    Ok(())
}

/// Per-shard invariants for a 2- and 3-shard hash-routed run: every
/// shard verifies against its sub-instance, and the service cost is the
/// sum of the shard costs.
fn check_sharded(
    instance: &Instance,
    kind: &PolicyKind,
    ops: &[LiveOp],
    shards: usize,
) -> Result<(), Divergence> {
    let run = drive(instance, kind, ops, shards)?;
    let n = instance.len() as u64;
    if run.status.arrivals != n || run.status.departures != n {
        return Err(Divergence::new(
            kind,
            format!(
                "serve[shards={shards}]: {} arrivals / {} departures for {n} items",
                run.status.arrivals, run.status.departures
            ),
        ));
    }
    if run.status.active_items != 0 || run.status.open_bins != 0 {
        return Err(Divergence::new(
            kind,
            format!(
                "serve[shards={shards}]: {} items / {} bins left after a drained feed",
                run.status.active_items, run.status.open_bins
            ),
        ));
    }
    let mut total_cost: u128 = 0;
    for (s, shard) in run.shards.into_iter().enumerate() {
        let back = back_map(kind, shard.names())?;
        let (live, _) = shard.into_parts();
        let packing = live
            .into_packing()
            .map_err(|e| Divergence::new(kind, format!("serve[shards={shards}] shard {s}: {e}")))?;
        total_cost += packing.cost();
        if back.is_empty() {
            continue;
        }
        let items = back.iter().map(|&i| instance.items[i].clone()).collect();
        let sub = Instance::new(instance.capacity.clone(), items).map_err(|e| {
            Divergence::new(
                kind,
                format!("serve[shards={shards}] shard {s}: invalid sub-instance: {e}"),
            )
        })?;
        if let Err(e) = packing.verify(&sub) {
            return Err(Divergence::new(
                kind,
                format!("serve[shards={shards}] shard {s}: verify: {e}"),
            ));
        }
        if kind.is_full_candidate_any_fit() {
            if let Err(e) = packing.verify_any_fit(&sub) {
                return Err(Divergence::new(
                    kind,
                    format!("serve[shards={shards}] shard {s}: any-fit: {e}"),
                ));
            }
        }
    }
    if run.status.usage_time != total_cost.to_string() {
        return Err(Divergence::new(
            kind,
            format!(
                "serve[shards={shards}]: service cost {} vs shard cost sum {total_cost}",
                run.status.usage_time
            ),
        ));
    }
    Ok(())
}

/// Runs every serving check for one `(instance, kind)` pair. Clairvoyant
/// kinds pass vacuously (see [`servable`]).
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
pub fn check_policy(
    instance: &Instance,
    kind: &PolicyKind,
    plan: CrashPlan,
) -> Result<(), Divergence> {
    if !servable(kind) {
        return Ok(());
    }
    let batch = PackRequest::new(kind.clone())
        .run(instance)
        .expect("batch run of a valid instance succeeds");
    let ops = live_ops(instance);

    // One shard: the service is the batch engine, bit for bit.
    let run = drive(instance, kind, &ops, 1)?;
    if run.status.usage_time != batch.cost().to_string() {
        return Err(Divergence::new(
            kind,
            format!(
                "serve[shards=1]: status cost {} vs batch cost {}",
                run.status.usage_time,
                batch.cost()
            ),
        ));
    }
    let shard = run
        .shards
        .into_iter()
        .next()
        .expect("a one-shard service has one shard");
    let (served, wal) = snapshot(kind, shard, instance.len(), "[shards=1]")?;
    if let Some(diff) = first_difference(&served, &batch) {
        return Err(Divergence::new(kind, format!("serve[shards=1]: {diff}")));
    }

    // Crash the one-shard service at each planned WAL cut.
    for cut in crash_cuts(&wal, plan) {
        check_crash_cut(instance, kind, &ops, &batch, &wal, cut)?;
    }

    // Multi-shard routing invariants and cost additivity.
    for shards in [2usize, 3] {
        check_sharded(instance, kind, &ops, shards)?;
    }
    Ok(())
}

/// Runs the serving checks over the applicable policy suite.
///
/// # Errors
///
/// Returns the first [`Divergence`] across the suite.
pub fn check_instance(
    instance: &Instance,
    random_fit_seed: u64,
    plan: CrashPlan,
) -> Result<(), Divergence> {
    for kind in kinds_for(instance, random_fit_seed) {
        check_policy(instance, &kind, plan)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbp_core::Item;
    use dvbp_dimvec::DimVec;

    fn sample() -> Instance {
        Instance::new(
            DimVec::from_slice(&[10, 10]),
            vec![
                Item::new(DimVec::from_slice(&[7, 2]), 0, 10),
                Item::new(DimVec::from_slice(&[2, 7]), 2, 5),
                Item::new(DimVec::from_slice(&[3, 3]), 4, 6),
                Item::new(DimVec::from_slice(&[9, 9]), 5, 12),
                Item::new(DimVec::from_slice(&[1, 1]), 5, 7),
                Item::new(DimVec::from_slice(&[5, 5]), 10, 14),
            ],
        )
        .unwrap()
    }

    #[test]
    fn sample_instance_passes_every_cut_for_firstfit() {
        check_policy(&sample(), &PolicyKind::FirstFit, CrashPlan::Exhaustive).unwrap();
    }

    #[test]
    fn full_suite_passes_with_sampled_cuts() {
        check_instance(&sample(), 7, CrashPlan::Sampled { seed: 7 }).unwrap();
    }

    #[test]
    fn clairvoyant_kinds_pass_vacuously() {
        let announced = dvbp_workloads::predictions::announce_exact(&sample());
        check_policy(
            &announced,
            &PolicyKind::DurationClassFirstFit,
            CrashPlan::Exhaustive,
        )
        .unwrap();
        assert!(!servable(&PolicyKind::AlignedFit));
    }

    #[test]
    fn crash_cuts_cover_boundaries_and_torn_lines() {
        let ops = live_ops(&sample());
        let run = drive(&sample(), &PolicyKind::FirstFit, &ops, 1).unwrap();
        let shard = run.shards.into_iter().next().unwrap();
        let (_, wal) = shard.into_parts();
        let scan = scan_wal(&wal).unwrap();
        let cuts = crash_cuts(&wal, CrashPlan::Exhaustive);
        // Every event boundary is a cut, and between any two boundaries
        // there is a torn mid-line cut.
        for &off in &scan.offsets {
            assert!(cuts.contains(&(off as usize)));
        }
        assert!(cuts.len() > scan.offsets.len());
        let sampled = crash_cuts(&wal, CrashPlan::Sampled { seed: 3 });
        assert!(sampled.first() == Some(&0));
        assert!(sampled.last() == Some(&wal.len()));
        assert!(sampled.len() <= cuts.len());
        assert!(crash_cuts(&wal, CrashPlan::Skip).is_empty());
    }
}

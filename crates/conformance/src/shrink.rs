//! Delta-debugging shrinker for conformance failures.
//!
//! Given an instance on which [`crate::diff::check_instance`] fails, the
//! shrinker greedily minimizes it while the failure persists (possibly
//! morphing into a different failing policy or layer — any surviving
//! divergence is worth keeping):
//!
//! 1. **drop items** — classic ddmin: remove chunks, halving the chunk
//!    size down to single items;
//! 2. **shrink sizes** — halve each size component toward 1, then step
//!    down by 1;
//! 3. **shrink durations** — pull each departure toward `arrival + 1`
//!    (halving the duration, then decrementing), with the announced
//!    duration clamped to stay positive;
//! 4. **shrink spans** — halve each arrival toward 0 (preserving the
//!    duration), compressing the time axis.
//!
//! Passes repeat until a fixpoint, under a global budget of predicate
//! evaluations so a pathological failure cannot stall the fuzzer.

use crate::diff::{self, Divergence};
use dvbp_core::{Instance, Item};

/// Hard cap on predicate evaluations per shrink call.
const MAX_CHECKS: usize = 4000;

struct Shrinker {
    capacity: dvbp_dimvec::DimVec,
    random_fit_seed: u64,
    checks: usize,
}

impl Shrinker {
    /// Whether `items` still forms a valid instance that fails the
    /// conformance check; returns the divergence when it does.
    fn fails(&mut self, items: &[Item]) -> Option<Divergence> {
        if items.is_empty() || self.checks >= MAX_CHECKS {
            return None;
        }
        self.checks += 1;
        let inst = Instance::new(self.capacity.clone(), items.to_vec()).ok()?;
        diff::check_instance(&inst, self.random_fit_seed).err()
    }
}

/// Minimizes `instance` while it keeps failing the conformance check.
///
/// Returns the shrunk instance and the divergence it exhibits.
///
/// # Panics
///
/// Panics if `instance` does not actually fail the check — the shrinker
/// must only be invoked on a confirmed failure.
#[must_use]
pub fn shrink(instance: &Instance, random_fit_seed: u64) -> (Instance, Divergence) {
    let mut sh = Shrinker {
        capacity: instance.capacity.clone(),
        random_fit_seed,
        checks: 0,
    };
    let mut items = instance.items.clone();
    let mut divergence = sh
        .fails(&items)
        .expect("shrink called on a passing instance");

    loop {
        let snapshot = items.clone();

        // Pass 1: ddmin over items.
        let mut chunk = (items.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i < items.len() && items.len() > 1 {
                let mut candidate = items.clone();
                let end = (i + chunk).min(candidate.len());
                candidate.drain(i..end);
                if let Some(d) = sh.fails(&candidate) {
                    items = candidate;
                    divergence = d;
                } else {
                    i = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Passes 2–4: per-item component shrinking.
        for idx in 0..items.len() {
            divergence = shrink_item(&mut sh, &mut items, idx, divergence);
        }

        // Fixpoint: no pass accepted any change this round.
        if items == snapshot || sh.checks >= MAX_CHECKS {
            break;
        }
    }

    let shrunk = Instance::new(sh.capacity.clone(), items).expect("shrinker preserves validity");
    (shrunk, divergence)
}

/// Tries a transformed copy of `items[idx]`; accepts it if the failure
/// persists.
fn try_mutation(
    sh: &mut Shrinker,
    items: &mut Vec<Item>,
    idx: usize,
    divergence: &mut Divergence,
    mutate: impl Fn(&mut Item),
) -> bool {
    let mut candidate = items.clone();
    mutate(&mut candidate[idx]);
    if candidate[idx] == items[idx] {
        return false;
    }
    if let Some(d) = sh.fails(&candidate) {
        *items = candidate;
        *divergence = d;
        true
    } else {
        false
    }
}

fn shrink_item(
    sh: &mut Shrinker,
    items: &mut Vec<Item>,
    idx: usize,
    mut divergence: Divergence,
) -> Divergence {
    // Sizes: halve toward 1, then decrement.
    let dims = items[idx].size.dim();
    for d in 0..dims {
        while items[idx].size[d] > 1
            && try_mutation(sh, items, idx, &mut divergence, |it| {
                let v = it.size[d];
                it.size.as_mut_slice()[d] = v.div_ceil(2);
            })
        {}
        while items[idx].size[d] > 1
            && try_mutation(sh, items, idx, &mut divergence, |it| {
                it.size.as_mut_slice()[d] -= 1;
            })
        {}
    }
    // Durations: halve toward 1 tick, then decrement.
    while items[idx].duration() > 1
        && try_mutation(sh, items, idx, &mut divergence, |it| {
            let dur = it.duration().div_ceil(2);
            it.departure = it.arrival + dur;
            if let Some(a) = it.announced_duration {
                it.announced_duration = Some(a.min(dur).max(1));
            }
        })
    {}
    while items[idx].duration() > 1
        && try_mutation(sh, items, idx, &mut divergence, |it| {
            it.departure -= 1;
            if let Some(a) = it.announced_duration {
                it.announced_duration = Some(a.min(it.departure - it.arrival).max(1));
            }
        })
    {}
    // Spans: halve the arrival toward 0, duration preserved.
    while items[idx].arrival > 0
        && try_mutation(sh, items, idx, &mut divergence, |it| {
            let dur = it.duration();
            it.arrival /= 2;
            it.departure = it.arrival + dur;
        })
    {}
    divergence
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbp_core::PolicyKind;
    use dvbp_dimvec::DimVec;

    /// A stand-in "always failing" predicate is not available without a
    /// real engine bug, so exercise the machinery through a synthetic
    /// `Shrinker` whose predicate is monkey-patched via the public entry
    /// point: shrink must panic on a passing instance.
    #[test]
    #[should_panic(expected = "passing instance")]
    fn rejects_passing_instances() {
        let inst =
            Instance::new(DimVec::scalar(10), vec![Item::new(DimVec::scalar(5), 0, 4)]).unwrap();
        let _ = shrink(&inst, 0);
    }

    /// The mutation helper only accepts changes that keep the failure
    /// alive; with a never-failing check it must leave items untouched.
    #[test]
    fn mutations_without_failure_are_rejected() {
        let mut sh = Shrinker {
            capacity: DimVec::scalar(10),
            random_fit_seed: 0,
            checks: 0,
        };
        let mut items = vec![Item::new(DimVec::scalar(5), 3, 9)];
        let mut div = Divergence {
            policy: "test".into(),
            kind: PolicyKind::FirstFit,
            detail: "synthetic".into(),
        };
        let accepted = try_mutation(&mut sh, &mut items, 0, &mut div, |it| {
            it.size.as_mut_slice()[0] = 1;
        });
        assert!(!accepted);
        assert_eq!(items[0].size[0], 5);
    }
}

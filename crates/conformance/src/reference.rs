//! Slow-but-obviously-correct reference simulator.
//!
//! The optimized engine in `dvbp-core` keeps incremental state: cached
//! per-bin load vectors, a sorted open-bin list maintained by binary
//! search, and (for [`PolicyKind::IndexedFirstFit`]) a segment tree over
//! residual capacities. This module re-derives every answer from first
//! principles instead, so that the two implementations can be compared
//! event by event:
//!
//! * the event order is rebuilt independently from the items' intervals
//!   (departures before arrivals at equal ticks, item order within each);
//! * a bin's **load** is recomputed at every query by summing the sizes
//!   of its still-active items — nothing is cached between events;
//! * a bin is **open** iff it currently holds at least one active item,
//!   which is re-derived per query the same way;
//! * every [`PolicyKind`] selection rule is re-implemented here directly
//!   from its §2.2/§7 definition, over those from-scratch answers, with
//!   no shared code with `dvbp-core`'s policy objects beyond the pure
//!   [`LoadMeasure`] comparison.
//!
//! The output is a full [`Packing`] (assignment, per-bin usage records,
//! decision trace), so the differential runner can require *exact*
//! equality with the optimized engine, not just equal costs.

use dvbp_core::{BinId, BinUsage, Instance, Item, LoadMeasure, Packing, PolicyKind, TraceEvent};
use dvbp_dimvec::DimVec;
use dvbp_sim::Time;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Ordering;

/// From-scratch world state: who is where, and who has departed.
struct World<'a> {
    instance: &'a Instance,
    /// `bin_items[b]` = items packed into bin `b`, in packing order.
    bin_items: Vec<Vec<usize>>,
    /// Set once the item's departure event has been processed.
    departed: Vec<bool>,
}

impl World<'_> {
    /// Recomputes the load of bin `b` by summing its active items' sizes.
    fn load(&self, b: usize) -> DimVec {
        let mut load = DimVec::zeros(self.instance.dim());
        for &i in &self.bin_items[b] {
            if !self.departed[i] {
                load.add_assign(&self.instance.items[i].size);
            }
        }
        load
    }

    /// A bin is open iff it still holds an active item (closed bins are
    /// never reused, so "ever opened and now empty" means closed).
    fn is_open(&self, b: usize) -> bool {
        self.bin_items[b].iter().any(|&i| !self.departed[i])
    }

    /// Open bins in opening (= id) order, recomputed from scratch.
    fn open_bins(&self) -> Vec<usize> {
        (0..self.bin_items.len())
            .filter(|&b| self.is_open(b))
            .collect()
    }

    /// Whether `size` fits into bin `b` alongside its active items.
    fn fits(&self, b: usize, size: &DimVec) -> bool {
        self.load(b).fits_with(size, &self.instance.capacity)
    }
}

/// Announced departure tick, as the clairvoyant policies define it.
fn announced_departure(item: &Item) -> Time {
    let dur = item
        .announced_duration
        .expect("clairvoyant reference requires announced durations");
    item.arrival.saturating_add(dur.max(1))
}

/// Geometric duration class `⌊log₂ d⌋` of an announced duration.
fn duration_class(item: &Item) -> u32 {
    let announced = item
        .announced_duration
        .expect("clairvoyant reference requires announced durations")
        .max(1);
    63 - announced.leading_zeros()
}

/// Re-implementation of each policy's selection rule and its (minimal,
/// inherently sequential) decision state. All loads and feasibility
/// checks go through [`World`]'s from-scratch recomputation.
enum RefPolicy {
    /// MRU order, front first; receiving bin moves to the front.
    MoveToFront { order: Vec<usize> },
    /// Earliest-opened open bin that fits. Also the reference for
    /// `IndexedFirstFit`, which must be placement-identical to First Fit.
    FirstFit,
    /// Single current bin; a new bin releases the old one forever.
    NextFit { current: Option<usize> },
    /// Most-loaded open bin that fits (ties keep the earliest bin).
    BestFit { measure: LoadMeasure },
    /// Least-loaded open bin that fits (ties keep the earliest bin).
    WorstFit { measure: LoadMeasure },
    /// Latest-opened open bin that fits.
    LastFit,
    /// Uniformly random feasible open bin; the RNG stream must match the
    /// optimized policy exactly (a draw happens only with ≥ 2 candidates).
    RandomFit { rng: StdRng },
    /// First Fit restricted to bins of the item's duration class.
    DurationClassFirstFit { class_of: Vec<u32> },
    /// Bin whose latest announced departure is nearest the item's own;
    /// ties prefer the fuller (L∞) bin, then the earlier bin.
    AlignedFit { latest_dep: Vec<Time> },
}

impl RefPolicy {
    fn new(kind: &PolicyKind) -> Self {
        match *kind {
            PolicyKind::MoveToFront => RefPolicy::MoveToFront { order: Vec::new() },
            PolicyKind::FirstFit | PolicyKind::IndexedFirstFit => RefPolicy::FirstFit,
            PolicyKind::NextFit => RefPolicy::NextFit { current: None },
            PolicyKind::BestFit(measure) => RefPolicy::BestFit { measure },
            PolicyKind::WorstFit(measure) => RefPolicy::WorstFit { measure },
            PolicyKind::LastFit => RefPolicy::LastFit,
            PolicyKind::RandomFit { seed } => RefPolicy::RandomFit {
                rng: StdRng::seed_from_u64(seed),
            },
            PolicyKind::DurationClassFirstFit => RefPolicy::DurationClassFirstFit {
                class_of: Vec::new(),
            },
            PolicyKind::AlignedFit => RefPolicy::AlignedFit {
                latest_dep: Vec::new(),
            },
        }
    }

    /// The bin for `item`, or `None` to open a new one.
    fn choose(&mut self, world: &World<'_>, item: &Item) -> Option<usize> {
        let open = world.open_bins();
        match self {
            RefPolicy::MoveToFront { order } => {
                debug_assert_eq!(order.len(), open.len());
                order.iter().find(|&&b| world.fits(b, &item.size)).copied()
            }
            RefPolicy::FirstFit => open.iter().find(|&&b| world.fits(b, &item.size)).copied(),
            RefPolicy::NextFit { current } => match *current {
                Some(b) if world.fits(b, &item.size) => Some(b),
                _ => None,
            },
            RefPolicy::BestFit { measure } => {
                pick_by_load(world, &open, item, *measure, Ordering::Greater)
            }
            RefPolicy::WorstFit { measure } => {
                pick_by_load(world, &open, item, *measure, Ordering::Less)
            }
            RefPolicy::LastFit => open
                .iter()
                .rev()
                .find(|&&b| world.fits(b, &item.size))
                .copied(),
            RefPolicy::RandomFit { rng } => {
                let candidates: Vec<usize> = open
                    .iter()
                    .copied()
                    .filter(|&b| world.fits(b, &item.size))
                    .collect();
                match candidates.len() {
                    0 => None,
                    1 => Some(candidates[0]),
                    n => Some(candidates[rng.random_range(0..n)]),
                }
            }
            RefPolicy::DurationClassFirstFit { class_of } => {
                let class = duration_class(item);
                open.iter()
                    .find(|&&b| class_of[b] == class && world.fits(b, &item.size))
                    .copied()
            }
            RefPolicy::AlignedFit { latest_dep } => {
                let target = announced_departure(item);
                let mut best: Option<(usize, u64)> = None;
                for &b in &open {
                    if !world.fits(b, &item.size) {
                        continue;
                    }
                    let gap = latest_dep[b].abs_diff(target);
                    best = Some(match best {
                        None => (b, gap),
                        Some((cur, cur_gap)) => match gap.cmp(&cur_gap) {
                            Ordering::Less => (b, gap),
                            Ordering::Equal => {
                                match LoadMeasure::Linf.cmp_loads(
                                    world.load(b).as_slice(),
                                    world.load(cur).as_slice(),
                                    world.instance.capacity.as_slice(),
                                ) {
                                    Ordering::Greater => (b, gap),
                                    _ => (cur, cur_gap),
                                }
                            }
                            Ordering::Greater => (cur, cur_gap),
                        },
                    });
                }
                best.map(|(b, _)| b)
            }
        }
    }

    fn after_pack(&mut self, item: &Item, bin: usize, newly_opened: bool) {
        match self {
            RefPolicy::MoveToFront { order } => {
                if let Some(pos) = order.iter().position(|&b| b == bin) {
                    order.remove(pos);
                }
                order.insert(0, bin);
            }
            RefPolicy::NextFit { current } => *current = Some(bin),
            RefPolicy::DurationClassFirstFit { class_of } if newly_opened => {
                debug_assert_eq!(bin, class_of.len());
                class_of.push(duration_class(item));
            }
            RefPolicy::AlignedFit { latest_dep } => {
                let dep = announced_departure(item);
                if newly_opened {
                    debug_assert_eq!(bin, latest_dep.len());
                    latest_dep.push(dep);
                } else {
                    latest_dep[bin] = latest_dep[bin].max(dep);
                }
            }
            _ => {}
        }
    }

    fn on_close(&mut self, bin: usize) {
        match self {
            RefPolicy::MoveToFront { order } => order.retain(|&b| b != bin),
            RefPolicy::NextFit { current } if *current == Some(bin) => *current = None,
            _ => {}
        }
    }
}

/// Extremal-load pick shared by Best Fit (`want = Greater`) and Worst Fit
/// (`want = Less`); ties keep the earliest-opened bin.
fn pick_by_load(
    world: &World<'_>,
    open: &[usize],
    item: &Item,
    measure: LoadMeasure,
    want: Ordering,
) -> Option<usize> {
    let mut best: Option<usize> = None;
    for &b in open {
        if !world.fits(b, &item.size) {
            continue;
        }
        best = Some(match best {
            None => b,
            Some(cur) => {
                let ord = measure.cmp_loads(
                    world.load(b).as_slice(),
                    world.load(cur).as_slice(),
                    world.instance.capacity.as_slice(),
                );
                if ord == want {
                    b
                } else {
                    cur
                }
            }
        });
    }
    best
}

/// Runs `kind` over `instance` through the reference simulator.
///
/// The returned [`Packing`] has the same shape as the optimized engine's
/// (assignment, per-bin usage records, full trace) and must be *equal* to
/// it — that is the conformance property the differential runner checks.
///
/// # Panics
///
/// Panics if the policy names an infeasible bin (a reference bug) or if a
/// clairvoyant kind is run on an instance without announced durations.
#[must_use]
pub fn simulate(instance: &Instance, kind: &PolicyKind) -> Packing {
    // Event order, rebuilt independently of `dvbp_sim::timeline`:
    // (tick, departure-before-arrival, item index).
    let mut events: Vec<(Time, u8, usize)> = Vec::with_capacity(2 * instance.items.len());
    for (i, item) in instance.items.iter().enumerate() {
        assert!(item.departure > item.arrival, "item {i}: empty interval");
        events.push((item.arrival, 1, i));
        events.push((item.departure, 0, i));
    }
    events.sort_unstable();

    let n = instance.items.len();
    let mut world = World {
        instance,
        bin_items: Vec::new(),
        departed: vec![false; n],
    };
    let mut policy = RefPolicy::new(kind);
    let mut assignment: Vec<Option<usize>> = vec![None; n];
    let mut trace: Vec<TraceEvent> = Vec::new();

    for (time, is_arrival, i) in events {
        let item = &instance.items[i];
        if is_arrival == 1 {
            let (bin, opened_new) = match policy.choose(&world, item) {
                Some(b) => {
                    assert!(world.is_open(b), "reference chose closed bin {b}");
                    assert!(
                        world.fits(b, &item.size),
                        "reference chose infeasible bin {b}"
                    );
                    (b, false)
                }
                None => {
                    world.bin_items.push(Vec::new());
                    (world.bin_items.len() - 1, true)
                }
            };
            world.bin_items[bin].push(i);
            assignment[i] = Some(bin);
            trace.push(TraceEvent::Packed {
                time,
                item: i,
                bin: BinId(bin),
                opened_new,
            });
            policy.after_pack(item, bin, opened_new);
        } else {
            world.departed[i] = true;
            let bin = assignment[i].expect("departure before arrival");
            if !world.is_open(bin) {
                trace.push(TraceEvent::Closed {
                    time,
                    bin: BinId(bin),
                });
                policy.on_close(bin);
            }
        }
    }

    let bins: Vec<BinUsage> = world
        .bin_items
        .iter()
        .map(|items| BinUsage {
            opened: instance.items[items[0]].arrival,
            closed: items
                .iter()
                .map(|&i| instance.items[i].departure)
                .max()
                .expect("bins are opened by an item"),
            items: items.clone(),
        })
        .collect();

    Packing {
        assignment: assignment
            .into_iter()
            .map(|b| BinId(b.expect("every item is packed")))
            .collect(),
        bins,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(size: &[u64], a: u64, e: u64) -> Item {
        Item::new(DimVec::from_slice(size), a, e)
    }

    fn inst(cap: u64, items: Vec<Item>) -> Instance {
        Instance::new(DimVec::scalar(cap), items).unwrap()
    }

    #[test]
    fn first_fit_packs_like_the_textbook() {
        let i = inst(
            10,
            vec![item(&[6], 0, 9), item(&[6], 1, 9), item(&[4], 2, 5)],
        );
        let p = simulate(&i, &PolicyKind::FirstFit);
        assert_eq!(p.assignment, vec![BinId(0), BinId(1), BinId(0)]);
        p.verify(&i).unwrap();
    }

    #[test]
    fn closed_bins_are_never_reused() {
        // Item 0 departs at 2; the bin closes and item 1 (arriving at 2)
        // must open a fresh bin even though the old one would fit it.
        let i = inst(10, vec![item(&[5], 0, 2), item(&[5], 2, 4)]);
        let p = simulate(&i, &PolicyKind::FirstFit);
        assert_eq!(p.assignment, vec![BinId(0), BinId(1)]);
        assert_eq!(p.bins.len(), 2);
        assert_eq!(p.cost(), 4);
    }

    #[test]
    fn trace_orders_departures_before_arrivals() {
        let i = inst(10, vec![item(&[5], 0, 2), item(&[5], 2, 4)]);
        let p = simulate(&i, &PolicyKind::FirstFit);
        assert_eq!(
            p.trace,
            vec![
                TraceEvent::Packed {
                    time: 0,
                    item: 0,
                    bin: BinId(0),
                    opened_new: true
                },
                TraceEvent::Closed {
                    time: 2,
                    bin: BinId(0)
                },
                TraceEvent::Packed {
                    time: 2,
                    item: 1,
                    bin: BinId(1),
                    opened_new: true
                },
                TraceEvent::Closed {
                    time: 4,
                    bin: BinId(1)
                },
            ]
        );
    }

    #[test]
    fn move_to_front_prefers_recent_bin() {
        let i = inst(
            10,
            vec![item(&[6], 0, 9), item(&[6], 1, 9), item(&[4], 2, 5)],
        );
        let p = simulate(&i, &PolicyKind::MoveToFront);
        assert_eq!(p.assignment[2], BinId(1));
    }

    #[test]
    fn next_fit_sticks_to_current_bin() {
        let i = inst(
            10,
            vec![item(&[6], 0, 9), item(&[6], 1, 9), item(&[4], 2, 5)],
        );
        let p = simulate(&i, &PolicyKind::NextFit);
        // Bin 0 was released when bin 1 opened; the 4-unit item joins
        // bin 1 (current) even though bin 0 also fits.
        assert_eq!(p.assignment[2], BinId(1));
    }
}

//! Differential conformance harness for the DVBP engine.
//!
//! The optimized engine (`dvbp-core`) earns its speed from incremental
//! state — cached loads, a maintained open-bin list, a segment tree for
//! `IndexedFirstFit`. This crate checks that none of that machinery ever
//! changes an answer:
//!
//! * [`mod@reference`] — a slow simulator that recomputes feasibility, loads,
//!   and openness from scratch at every event and re-implements each
//!   policy's selection rule from its paper definition;
//! * [`diff`] — the differential runner: engine vs. reference must agree
//!   on the full [`dvbp_core::Packing`] (assignment, usage records,
//!   trace, cost), layered with the invariant suite (feasibility, the
//!   Any Fit property, `IndexedFirstFit ≡ FirstFit`, and the Lemma 1
//!   bound chain `lb_span ≤ lb_load ≤ cost`);
//! * [`mod@serve`] — layer 8, the serving path: a one-shard `dvbp-serve`
//!   service must be bit-identical to the batch engine, crash recovery
//!   from any WAL cut (event boundary or torn line) must land in the
//!   same final state, and multi-shard runs must verify per shard with
//!   additive cost;
//! * [`mod@repack`] — layer 10, repacking: live runs under every
//!   [`RepackPolicy`](dvbp_core::RepackPolicy) in the standard suite are
//!   audited by an independent event-stream checker (slice-wise
//!   capacity, no resurrected items, empty-close discipline, Migrate
//!   provenance ≡ reported moves, cost-model accounting), and
//!   `NoRepack` must stay bit-identical to the batch engine;
//! * [`mod@portfolio`] — layer 11, shadow-policy portfolio dispatch:
//!   every candidate's shadow cost must equal a standalone
//!   `CostOnly` run of that candidate bit for bit, and a
//!   `static`-meta portfolio engine must be indistinguishable from the
//!   plain single-policy path (placements, departures, drained
//!   packing);
//! * [`fuzz`] — a deterministic fuzzer feeding uniform, adversarial, and
//!   extended workloads into the differential check;
//! * [`shrink`] — a delta-debugging shrinker that minimizes any failure
//!   (drop items, shrink sizes/durations/spans) into a reproducer small
//!   enough to read.
//!
//! Shrunk failures are written as ordinary JSON trace files (the format
//! of `dvbp::tracefile`) into the repository's `tests/corpus/`, which a
//! tier-1 test replays on every `cargo test`.

pub mod corpus;
pub mod diff;
pub mod fuzz;
pub mod portfolio;
pub mod reference;
pub mod repack;
pub mod serve;
pub mod shrink;

//! Offline quantities for DVBP: lower bounds on OPT (Lemma 1), an exact
//! vector bin packing solver, the First-Fit-Decreasing heuristic, and the
//! optimal offline cost `OPT(R)` via the time-slice integral of eq. (2).
//!
//! The paper's competitive-ratio analyses compare online costs against
//! `OPT(R)`, the cost of an optimal offline algorithm **that may repack
//! items at any time** (§2.2). Repacking decouples time slices: between
//! two consecutive arrival/departure events the active set is constant,
//! and the optimal number of open bins in that slice is exactly the static
//! vector-bin-packing optimum of the active items. Hence
//!
//! ```text
//! OPT(R) = Σ_slices  VBP_opt(active items in slice) · slice length     (eq. 2)
//! ```
//!
//! Static VBP is NP-hard, so the exact solver ([`exact::pack_count`])
//! targets the small-to-moderate active sets that arise in tests and in
//! the adversarial constructions; large instances fall back to the
//! [LB, FFD] sandwich of [`opt::opt_bounds`]. The paper's own experiments
//! (§7) sidestep OPT the same way, normalizing by the Lemma 1(i) lower
//! bound — reproduce that with [`lower_bounds::lb_load`].

pub mod exact;
pub mod ffd;
pub mod lower_bounds;
pub mod opt;
pub mod witness;

#[cfg(test)]
mod proptests;

pub use exact::{pack_assignment, pack_count, ExactPacking};
pub use ffd::ffd_count;
pub use lower_bounds::{lb_load, lb_span, lb_utilization, opt_lower_bound};
pub use opt::{opt_bounds, opt_exact, OptBounds};

//! Property tests: Lemma 1 sandwich and the paper's CR upper bounds
//! (Theorems 2, 3, 4) checked against the *exact* offline optimum on
//! randomly generated, exhaustively solvable instances.

use crate::{lb_load, lb_span, lb_utilization, opt_bounds, opt_exact};
use dvbp_core::{Instance, Item, PackRequest, PolicyKind};
use dvbp_dimvec::DimVec;
use dvbp_sim::Cost;
use proptest::prelude::*;

fn small_instances() -> impl Strategy<Value = Instance> {
    (1usize..=3, 1usize..=12).prop_flat_map(|(d, n)| {
        let cap = 10u64;
        let item = (prop::collection::vec(1u64..=cap, d), 0u64..12, 1u64..=6)
            .prop_map(move |(size, a, dur)| Item::new(DimVec::from_slice(&size), a, a + dur));
        prop::collection::vec(item, n).prop_map(move |items| {
            Instance::new(DimVec::splat(d, cap), items).expect("valid instance")
        })
    })
}

/// Checks `cost · min_dur ≤ OPT · bound_numerator` where the CR bound is
/// `bound_numerator / min_dur` — exact integer arithmetic, no floats.
fn check_bound(cost: Cost, opt: Cost, bound_numerator: u128, min_dur: u64, label: &str) {
    assert!(
        cost * Cost::from(min_dur) <= opt * bound_numerator,
        "{label}: cost {cost} > bound·OPT ({bound_numerator}/{min_dur} · {opt})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 1: every lower bound is below the exact OPT, which is below
    /// every online policy's cost.
    #[test]
    fn lemma1_sandwich(inst in small_instances()) {
        let opt = opt_exact(&inst, 28).expect("instances are small");
        prop_assert!(lb_load(&inst) <= opt);
        prop_assert!(lb_span(&inst) <= opt);
        prop_assert!(lb_utilization(&inst) <= opt as f64 + 1e-9);
        let b = opt_bounds(&inst, 28);
        prop_assert_eq!(b.lower, opt);
        prop_assert_eq!(b.upper, opt);
        for kind in PolicyKind::paper_suite(3) {
            prop_assert!(PackRequest::new(kind.clone()).run(&inst).unwrap().cost() >= opt, "{}", kind.name());
        }
    }

    /// Theorem 2: cost(MTF) ≤ ((2μ+1)d + 1) · OPT.
    #[test]
    fn theorem2_mtf_upper_bound(inst in small_instances()) {
        let opt = opt_exact(&inst, 28).unwrap();
        let (max_d, min_d) = inst.mu().unwrap();
        let d = inst.dim() as u128;
        let cost = PackRequest::new(PolicyKind::MoveToFront).run(&inst).unwrap().cost();
        // ((2μ+1)d+1) = ((2·max + min)·d + min) / min
        let numer = (2 * u128::from(max_d) + u128::from(min_d)) * d + u128::from(min_d);
        check_bound(cost, opt, numer, min_d, "MTF/Thm2");
    }

    /// Theorem 3: cost(FF) ≤ ((μ+2)d + 1) · OPT.
    #[test]
    fn theorem3_ff_upper_bound(inst in small_instances()) {
        let opt = opt_exact(&inst, 28).unwrap();
        let (max_d, min_d) = inst.mu().unwrap();
        let d = inst.dim() as u128;
        let cost = PackRequest::new(PolicyKind::FirstFit).run(&inst).unwrap().cost();
        let numer = (u128::from(max_d) + 2 * u128::from(min_d)) * d + u128::from(min_d);
        check_bound(cost, opt, numer, min_d, "FF/Thm3");
    }

    /// Theorem 4: cost(NF) ≤ (2μd + 1) · OPT.
    #[test]
    fn theorem4_nf_upper_bound(inst in small_instances()) {
        let opt = opt_exact(&inst, 28).unwrap();
        let (max_d, min_d) = inst.mu().unwrap();
        let d = inst.dim() as u128;
        let cost = PackRequest::new(PolicyKind::NextFit).run(&inst).unwrap().cost();
        let numer = 2 * u128::from(max_d) * d + u128::from(min_d);
        check_bound(cost, opt, numer, min_d, "NF/Thm4");
    }

    /// The exact per-slice solver agrees with brute force (tiny slices).
    #[test]
    fn exact_matches_brute_force(
        sizes in prop::collection::vec(prop::collection::vec(1u64..=10, 2), 1..7)
    ) {
        let cap = DimVec::splat(2, 10);
        let sizes: Vec<DimVec> = sizes.iter().map(|s| DimVec::from_slice(s)).collect();
        let exact = crate::exact::pack_count(&sizes, &cap, 28).unwrap();
        let brute = crate::exact::brute_force_count(&sizes, &cap);
        prop_assert_eq!(exact, brute);
    }
}

//! Verification of explicit offline assignments ("witnesses").
//!
//! The adversarial constructions of §6 come with closed-form `OPT ≤ …`
//! claims. Rather than trust the arithmetic, each construction exposes a
//! witness `item → bin` assignment; [`assignment_cost`] checks that the
//! witness never overloads a bin in any elementary time slice and returns
//! its exact MinUsageTime cost — a certified upper bound on `OPT(R)`.
//!
//! Unlike online packings, an offline bin may be reused after going idle;
//! its cost is the *span* of its items' intervals (idle time inside a
//! bin's span is still paid, matching eq. (1) — the constructions' bins
//! have contiguous usage anyway).

use dvbp_core::Instance;
use dvbp_dimvec::DimVec;
use dvbp_sim::{span_of, sweep, Cost, Interval};

/// Validates an offline assignment and returns its total usage-time cost.
///
/// # Errors
///
/// Returns a description of the first capacity violation or malformed
/// entry.
pub fn assignment_cost(instance: &Instance, assignment: &[usize]) -> Result<Cost, String> {
    if assignment.len() != instance.len() {
        return Err(format!(
            "assignment covers {} items, instance has {}",
            assignment.len(),
            instance.len()
        ));
    }
    let bins = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let mut per_bin: Vec<Vec<usize>> = vec![Vec::new(); bins];
    for (item, &bin) in assignment.iter().enumerate() {
        per_bin[bin].push(item);
    }
    let mut total: Cost = 0;
    for (b, items) in per_bin.iter().enumerate() {
        if items.is_empty() {
            continue;
        }
        let intervals: Vec<Interval> = items
            .iter()
            .map(|&i| instance.items[i].interval())
            .collect();
        let mut violation: Option<String> = None;
        sweep::sweep(&intervals, |slice| {
            if violation.is_some() {
                return;
            }
            let mut load = DimVec::zeros(instance.dim());
            for &k in slice.active {
                load.add_assign(&instance.items[items[k]].size);
            }
            if !load.fits_within(&instance.capacity) {
                violation = Some(format!(
                    "bin {b} overloaded during {}: {load:?} > {:?}",
                    slice.interval, instance.capacity
                ));
            }
        });
        if let Some(v) = violation {
            return Err(v);
        }
        total += span_of(&intervals);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbp_core::Item;

    fn item(size: &[u64], a: u64, e: u64) -> Item {
        Item::new(DimVec::from_slice(size), a, e)
    }

    #[test]
    fn valid_witness_cost() {
        let inst = Instance::new(
            DimVec::scalar(10),
            vec![item(&[6], 0, 4), item(&[6], 0, 4), item(&[4], 2, 6)],
        )
        .unwrap();
        // Items 0 and 2 share bin 0 (6+4 = 10), item 1 alone in bin 1.
        let cost = assignment_cost(&inst, &[0, 1, 0]).unwrap();
        assert_eq!(cost, 6 + 4);
    }

    #[test]
    fn overload_detected() {
        let inst =
            Instance::new(DimVec::scalar(10), vec![item(&[6], 0, 4), item(&[6], 0, 4)]).unwrap();
        assert!(assignment_cost(&inst, &[0, 0]).is_err());
    }

    #[test]
    fn reuse_after_idle_counts_span() {
        // Two disjoint items in the same bin: span is 2 + 2 (gap free? no
        // — span of union = both intervals, gap excluded by span_of).
        let inst =
            Instance::new(DimVec::scalar(10), vec![item(&[6], 0, 2), item(&[6], 5, 7)]).unwrap();
        assert_eq!(assignment_cost(&inst, &[0, 0]).unwrap(), 4);
    }

    #[test]
    fn length_mismatch_rejected() {
        let inst = Instance::new(DimVec::scalar(10), vec![item(&[1], 0, 1)]).unwrap();
        assert!(assignment_cost(&inst, &[]).is_err());
    }

    #[test]
    fn theorem5_witness_certifies_opt_upper() {
        use dvbp_workloads::adversarial::AnyFitLb;
        for d in 1..=3 {
            for k in [1usize, 2, 5] {
                let c = AnyFitLb { k, d, mu: 6, m: 16 };
                let inst = c.instance();
                let cost = assignment_cost(&inst, &c.witness())
                    .unwrap_or_else(|e| panic!("d={d} k={k}: {e}"));
                assert!(
                    cost <= c.opt_upper(),
                    "d={d} k={k}: witness {cost} > claimed {}",
                    c.opt_upper()
                );
            }
        }
    }

    #[test]
    fn theorem6_witness_certifies_opt_upper() {
        use dvbp_workloads::adversarial::NextFitLb;
        for d in 1..=3 {
            for k in [2usize, 4, 10] {
                let c = NextFitLb { k, d, mu: 5 };
                let inst = c.instance();
                let cost = assignment_cost(&inst, &c.witness())
                    .unwrap_or_else(|e| panic!("d={d} k={k}: {e}"));
                assert!(cost <= c.opt_upper());
            }
        }
    }

    #[test]
    fn theorem8_witness_certifies_opt_upper() {
        use dvbp_workloads::adversarial::MtfLb;
        for n in [1usize, 3, 10] {
            let c = MtfLb { n, mu: 9 };
            let inst = c.instance();
            let cost = assignment_cost(&inst, &c.witness()).unwrap();
            assert!(cost <= c.opt_upper());
            assert_eq!(cost, c.opt_upper(), "the Thm 8 witness is tight");
        }
    }
}

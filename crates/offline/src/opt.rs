//! The optimal offline cost `OPT(R)` via the time-slice integral (eq. 2).
//!
//! Because the offline optimum may repack items at any instant (§2.2),
//! `OPT(R) = ∫ OPT(R, t) dt`, and `OPT(R, t)` is the static vector bin
//! packing optimum of the items active at `t` — constant between
//! consecutive events. We therefore sweep the elementary slices and solve
//! (or sandwich) each slice's static problem.

use crate::exact::pack_count;
use crate::ffd::ffd_count;
use dvbp_core::Instance;
use dvbp_dimvec::DimVec;
use dvbp_sim::{sweep, Cost};

/// A two-sided estimate of `OPT(R)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptBounds {
    /// Certified lower bound on `OPT(R)`.
    pub lower: Cost,
    /// Certified upper bound on `OPT(R)` (achieved by per-slice FFD
    /// repacking, which is an admissible offline strategy).
    pub upper: Cost,
}

impl OptBounds {
    /// `true` iff the bounds coincide, i.e. `OPT(R)` is known exactly.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }
}

/// Exact `OPT(R)`, provided every elementary slice has at most
/// `item_limit` active items; `None` otherwise.
///
/// `item_limit` trades time for reach — see
/// [`DEFAULT_ITEM_LIMIT`](crate::exact::DEFAULT_ITEM_LIMIT).
#[must_use]
pub fn opt_exact(instance: &Instance, item_limit: usize) -> Option<Cost> {
    let intervals = instance.intervals();
    let mut total: Cost = 0;
    let mut feasible = true;
    sweep::sweep(&intervals, |slice| {
        if !feasible {
            return;
        }
        let sizes: Vec<DimVec> = slice
            .active
            .iter()
            .map(|&id| instance.items[id].size.clone())
            .collect();
        match pack_count(&sizes, &instance.capacity, item_limit) {
            Some(bins) => {
                total += Cost::from(bins as u64) * Cost::from(slice.interval.len());
            }
            None => feasible = false,
        }
    });
    feasible.then_some(total)
}

/// A `[lower, upper]` sandwich around `OPT(R)` that always succeeds.
///
/// Per slice: lower = `max_j ⌈Σ load_j / cap_j⌉` (Lemma 1(i)); upper =
/// FFD bin count. Slices small enough for the exact solver contribute
/// their exact value to both sides.
#[must_use]
pub fn opt_bounds(instance: &Instance, item_limit: usize) -> OptBounds {
    let intervals = instance.intervals();
    let mut lower: Cost = 0;
    let mut upper: Cost = 0;
    sweep::sweep(&intervals, |slice| {
        let sizes: Vec<DimVec> = slice
            .active
            .iter()
            .map(|&id| instance.items[id].size.clone())
            .collect();
        let len = Cost::from(slice.interval.len());
        if let Some(exact) = pack_count(&sizes, &instance.capacity, item_limit) {
            lower += Cost::from(exact as u64) * len;
            upper += Cost::from(exact as u64) * len;
        } else {
            let mut total = DimVec::zeros(instance.dim());
            for s in &sizes {
                total.add_assign(s);
            }
            let lb: u64 = total
                .iter()
                .zip(instance.capacity.iter())
                .map(|(t, c)| t.div_ceil(c))
                .max()
                .unwrap_or(0);
            lower += Cost::from(lb) * len;
            upper += Cost::from(ffd_count(&sizes, &instance.capacity) as u64) * len;
        }
    });
    OptBounds { lower, upper }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bounds::{lb_load, lb_span};
    use dvbp_core::{Item, PackRequest, PolicyKind};

    fn item(size: &[u64], a: u64, e: u64) -> Item {
        Item::new(DimVec::from_slice(size), a, e)
    }

    fn inst(cap: &[u64], items: Vec<Item>) -> Instance {
        Instance::new(DimVec::from_slice(cap), items).unwrap()
    }

    #[test]
    fn single_item() {
        let i = inst(&[10], vec![item(&[5], 0, 4)]);
        assert_eq!(opt_exact(&i, 28), Some(4));
        let b = opt_bounds(&i, 28);
        assert!(b.is_exact());
        assert_eq!(b.lower, 4);
    }

    #[test]
    fn opt_uses_repacking() {
        // Two size-6 items overlap briefly; a third size-6 item overlaps
        // only the first. Online FF needs two bins for a long time; OPT
        // pays 2 bins only where two items truly overlap.
        let i = inst(
            &[10],
            vec![item(&[6], 0, 10), item(&[6], 4, 6), item(&[6], 8, 9)],
        );
        // Slices: [0,4): {0} ->1; [4,6): {0,1} ->2; [6,8): {0} ->1;
        // [8,9): {0,2} ->2; [9,10): {0} ->1.
        assert_eq!(opt_exact(&i, 28), Some(4 + 4 + 2 + 2 + 1));
    }

    #[test]
    fn exact_opt_between_lb_and_online_cost() {
        let i = inst(
            &[10, 10],
            vec![
                item(&[3, 7], 0, 5),
                item(&[8, 2], 1, 9),
                item(&[5, 5], 3, 4),
                item(&[2, 2], 7, 20),
                item(&[6, 1], 2, 12),
            ],
        );
        let opt = opt_exact(&i, 28).unwrap();
        assert!(opt >= lb_load(&i));
        assert!(opt >= lb_span(&i));
        for kind in PolicyKind::paper_suite(5) {
            let cost = PackRequest::new(kind.clone()).run(&i).unwrap().cost();
            assert!(cost >= opt, "{}: {} < {}", kind.name(), cost, opt);
        }
    }

    #[test]
    fn item_limit_fallback() {
        let items: Vec<Item> = (0..40).map(|k| item(&[1], 0, 10 + k)).collect();
        let i = inst(&[100], items);
        assert_eq!(opt_exact(&i, 8), None);
        let b = opt_bounds(&i, 8);
        // All 40 unit items fit one bin: lower == upper == span.
        assert_eq!(b.lower, b.upper);
        assert_eq!(b.lower, i.span());
    }

    #[test]
    fn bounds_bracket_exact() {
        let i = inst(
            &[10],
            vec![
                item(&[6], 0, 10),
                item(&[6], 0, 10),
                item(&[5], 2, 8),
                item(&[3], 4, 6),
            ],
        );
        let exact = opt_exact(&i, 28).unwrap();
        let b = opt_bounds(&i, 28);
        assert!(b.lower <= exact && exact <= b.upper);
        assert!(b.is_exact());
    }

    #[test]
    fn empty_instance() {
        let i = Instance::new(DimVec::scalar(10), vec![]).unwrap();
        assert_eq!(opt_exact(&i, 28), Some(0));
        assert_eq!(opt_bounds(&i, 28), OptBounds { lower: 0, upper: 0 });
    }
}

//! Lower bounds on the optimum cost — Lemma 1 of the paper.

use dvbp_core::Instance;
use dvbp_dimvec::DimVec;
use dvbp_sim::{sweep, Cost};

/// Lemma 1(i): `OPT(R) ≥ ∫ ⌈‖s(R,t)‖∞⌉ dt`.
///
/// In integer units, the number of bins needed at time `t` for the load in
/// dimension `j` is `⌈load_j(t)/cap_j⌉`, and `max_j ⌈x_j⌉ = ⌈max_j x_j⌉`.
/// This is the tightest of the three bounds and the comparator used by
/// the paper's experiments (§7).
#[must_use]
pub fn lb_load(instance: &Instance) -> Cost {
    let intervals = instance.intervals();
    let mut total: Cost = 0;
    let mut load = DimVec::zeros(instance.dim());
    sweep::sweep(&intervals, |slice| {
        // Recompute the slice load from scratch: `sweep` hands us the
        // active set, and n is small enough that incremental maintenance
        // is not worth the bookkeeping here.
        load.as_mut_slice().fill(0);
        for &id in slice.active {
            load.add_assign(&instance.items[id].size);
        }
        let bins_needed: u64 = load
            .iter()
            .zip(instance.capacity.iter())
            .map(|(l, c)| l.div_ceil(c))
            .max()
            .unwrap_or(0);
        total += Cost::from(bins_needed) * Cost::from(slice.interval.len());
    });
    total
}

/// Lemma 1(ii): `OPT(R) ≥ (1/d) Σ_r ‖s(r)‖∞ · ℓ(I(r))`.
///
/// The *time–space utilization* bound. Returned as `f64` (the normalized
/// `L∞` sizes are rationals); it is used for analysis and cross-checks,
/// while the integer-valued [`lb_load`] is the operational comparator.
#[must_use]
pub fn lb_utilization(instance: &Instance) -> f64 {
    let d = instance.dim() as f64;
    instance
        .items
        .iter()
        .map(|r| dvbp_dimvec::linf(&r.size, &instance.capacity) * r.duration() as f64)
        .sum::<f64>()
        / d
}

/// Lemma 1(iii): `OPT(R) ≥ span(R)`.
#[must_use]
pub fn lb_span(instance: &Instance) -> Cost {
    instance.span()
}

/// The best integer lower bound available: `max(lb_load, lb_span)`.
///
/// (`lb_load ≥ lb_span` always — every active instant needs ≥ 1 bin — so
/// this equals [`lb_load`]; the max is kept for clarity and as a guard
/// should the bounds ever be computed over different models.)
#[must_use]
pub fn opt_lower_bound(instance: &Instance) -> Cost {
    lb_load(instance).max(lb_span(instance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbp_core::Item;

    fn item(size: &[u64], a: u64, e: u64) -> Item {
        Item::new(DimVec::from_slice(size), a, e)
    }

    fn inst(cap: &[u64], items: Vec<Item>) -> Instance {
        Instance::new(DimVec::from_slice(cap), items).unwrap()
    }

    #[test]
    fn single_item_bounds() {
        let i = inst(&[10], vec![item(&[5], 0, 4)]);
        assert_eq!(lb_load(&i), 4); // one bin needed over [0,4)
        assert_eq!(lb_span(&i), 4);
        let u = lb_utilization(&i);
        assert!((u - 2.0).abs() < 1e-12); // 0.5 * 4
        assert_eq!(opt_lower_bound(&i), 4);
    }

    #[test]
    fn parallel_items_force_bins() {
        // Three items of size 6/10 over [0,2): load 18 -> ceil(18/10) = 2 bins.
        let i = inst(
            &[10],
            vec![item(&[6], 0, 2), item(&[6], 0, 2), item(&[6], 0, 2)],
        );
        assert_eq!(lb_load(&i), 4); // 2 bins * 2 ticks
        assert_eq!(lb_span(&i), 2);
    }

    #[test]
    fn lb_load_uses_worst_dimension() {
        // Dim 0 lightly loaded, dim 1 forces 3 bins.
        let i = inst(
            &[10, 10],
            vec![
                item(&[1, 9], 0, 5),
                item(&[1, 9], 0, 5),
                item(&[1, 9], 0, 5),
            ],
        );
        assert_eq!(lb_load(&i), 15); // ceil(27/10)=3 bins * 5 ticks
    }

    #[test]
    fn lb_load_piecewise() {
        // Load 12 over [0,2) (2 bins), load 6 over [2,4) (1 bin).
        let i = inst(&[10], vec![item(&[6], 0, 2), item(&[6], 0, 4)]);
        assert_eq!(lb_load(&i), 2 * 2 + 2);
    }

    #[test]
    fn utilization_divides_by_d() {
        // Two dims, item with Linf = 0.9, duration 10 -> sum 9 / d=2 -> 4.5.
        let i = inst(&[10, 10], vec![item(&[9, 3], 0, 10)]);
        assert!((lb_utilization(&i) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn bound_ordering_lemma_1() {
        // On any instance: lb_utilization ≤ lb_load and lb_span ≤ lb_load.
        let i = inst(
            &[10, 10],
            vec![
                item(&[3, 7], 0, 5),
                item(&[8, 2], 1, 9),
                item(&[5, 5], 3, 4),
                item(&[2, 2], 7, 20),
            ],
        );
        let load = lb_load(&i) as f64;
        assert!(lb_utilization(&i) <= load + 1e-9);
        assert!(lb_span(&i) <= lb_load(&i));
    }

    #[test]
    fn disjoint_bursts() {
        let i = inst(&[10], vec![item(&[10], 0, 3), item(&[10], 10, 13)]);
        assert_eq!(lb_span(&i), 6);
        assert_eq!(lb_load(&i), 6);
    }

    #[test]
    fn empty_instance() {
        let i = Instance::new(DimVec::scalar(10), vec![]).unwrap();
        assert_eq!(lb_load(&i), 0);
        assert_eq!(lb_span(&i), 0);
        assert_eq!(lb_utilization(&i), 0.0);
    }
}

//! First Fit Decreasing for static vector bin packing.
//!
//! Used as the upper half of the `[LB, FFD]` sandwich around the per-slice
//! VBP optimum when the active set is too large for the exact solver, and
//! as the initial incumbent that seeds the exact solver's branch & bound.
//!
//! Items are sorted by decreasing `L∞` normalized size (the standard
//! generalization of FFD to vectors; cf. Panigrahy et al., "Heuristics for
//! vector bin packing") and then packed first-fit.

use dvbp_dimvec::DimVec;

/// Number of bins used by First Fit Decreasing to pack `sizes` into bins
/// of capacity `cap`.
///
/// # Panics
///
/// Panics if any size does not fit an empty bin.
#[must_use]
pub fn ffd_count(sizes: &[DimVec], cap: &DimVec) -> usize {
    ffd_assignment(sizes, cap)
        .iter()
        .max()
        .map_or(0, |&m| m + 1)
}

/// The FFD assignment: `result[i]` is the bin index of `sizes[i]`.
///
/// # Panics
///
/// Panics if any size does not fit an empty bin.
#[must_use]
pub fn ffd_assignment(sizes: &[DimVec], cap: &DimVec) -> Vec<usize> {
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    // Sort by decreasing exact Linf ratio; tie-break on the full vector
    // (descending) then index for determinism.
    order.sort_by(|&a, &b| {
        let (_, na, da) = dvbp_dimvec::ratio_linf(&sizes[a], cap);
        let (_, nb, db) = dvbp_dimvec::ratio_linf(&sizes[b], cap);
        (u128::from(nb) * u128::from(da))
            .cmp(&(u128::from(na) * u128::from(db)))
            .then_with(|| sizes[b].cmp(&sizes[a]))
            .then_with(|| a.cmp(&b))
    });

    let mut loads: Vec<DimVec> = Vec::new();
    let mut assignment = vec![usize::MAX; sizes.len()];
    for &i in &order {
        let size = &sizes[i];
        assert!(size.fits_within(cap), "item {i} larger than a bin");
        let bin = loads
            .iter()
            .position(|load| load.fits_with(size, cap))
            .unwrap_or_else(|| {
                loads.push(DimVec::zeros(cap.dim()));
                loads.len() - 1
            });
        loads[bin].add_assign(size);
        assignment[i] = bin;
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &[u64]) -> DimVec {
        DimVec::from_slice(s)
    }

    #[test]
    fn empty_input() {
        assert_eq!(ffd_count(&[], &v(&[10])), 0);
    }

    #[test]
    fn classic_ffd_beats_ff_ordering() {
        // Sizes 3,3,4,4,6,6 into capacity 10. FF (arrival order) opens 3
        // bins ({3,3,4},{4,6},{6}); FFD opens 3 as well here, but packs
        // perfectly: {6,4},{6,4},{3,3}.
        let sizes: Vec<DimVec> = [3u64, 3, 4, 4, 6, 6].iter().map(|&s| v(&[s])).collect();
        let cap = v(&[10]);
        assert_eq!(ffd_count(&sizes, &cap), 3);
        let assign = ffd_assignment(&sizes, &cap);
        // The two 6s are in different bins, each paired with a 4.
        assert_ne!(assign[4], assign[5]);
        assert_eq!(assign[0], assign[1], "the two 3s share a bin");
    }

    #[test]
    fn vector_sizes_respect_all_dims() {
        let sizes = vec![v(&[6, 1]), v(&[1, 6]), v(&[5, 5])];
        let cap = v(&[10, 10]);
        let n = ffd_count(&sizes, &cap);
        // (6,1)+(1,6) = (7,7) fits; adding (5,5) would exceed. So 2 bins.
        assert_eq!(n, 2);
    }

    #[test]
    fn perfect_fit_single_bin() {
        let sizes = vec![v(&[4]), v(&[3]), v(&[3])];
        assert_eq!(ffd_count(&sizes, &v(&[10])), 1);
    }

    #[test]
    fn each_oversize_pair_split() {
        let sizes = vec![v(&[6]), v(&[6]), v(&[6])];
        assert_eq!(ffd_count(&sizes, &v(&[10])), 3);
    }

    #[test]
    #[should_panic(expected = "larger than a bin")]
    fn oversized_item_panics() {
        let _ = ffd_count(&[v(&[11])], &v(&[10]));
    }

    #[test]
    fn assignment_is_feasible() {
        let sizes: Vec<DimVec> = (1..=9u64).map(|s| v(&[s, 10 - s])).collect();
        let cap = v(&[10, 10]);
        let assign = ffd_assignment(&sizes, &cap);
        let bins = assign.iter().max().unwrap() + 1;
        let mut loads = vec![DimVec::zeros(2); bins];
        for (i, &b) in assign.iter().enumerate() {
            loads[b].add_assign(&sizes[i]);
        }
        for load in loads {
            assert!(load.fits_within(&cap));
        }
    }
}

//! Exact static vector bin packing by branch & bound.
//!
//! Computes the minimum number of unit bins needed to pack a set of
//! `d`-dimensional sizes — the quantity `OPT(R, t)` of §2.3, evaluated on
//! the items active at time `t`. NP-hard, but the slices arising in tests,
//! in the adversarial constructions, and in small random instances have at
//! most a few dozen items, which this solver handles comfortably:
//!
//! * items are pre-sorted by decreasing exact `L∞` size (big rocks first);
//! * the incumbent is seeded with the FFD solution, so the search only
//!   explores assignments that would strictly improve on FFD;
//! * the per-dimension volume bound `max_j ⌈Σ load_j / cap_j⌉` prunes
//!   subtrees (applied to the remaining items against remaining free
//!   space, plus bins already committed);
//! * symmetric branches are skipped: an item is never tried in two bins
//!   with identical load vectors, and opening "the" new bin is a single
//!   branch.

use dvbp_dimvec::DimVec;

/// Hard cap on items per exact solve; beyond this, callers should use the
/// `[lb, ffd]` sandwich instead (see [`crate::opt::opt_bounds`]).
pub const DEFAULT_ITEM_LIMIT: usize = 28;

/// Minimum number of bins of capacity `cap` needed to pack all `sizes`.
///
/// Returns `None` if `sizes.len()` exceeds `item_limit` (the caller asked
/// for a bounded-effort solve). `Some(0)` for an empty input.
///
/// # Panics
///
/// Panics if any size does not fit an empty bin.
#[must_use]
pub fn pack_count(sizes: &[DimVec], cap: &DimVec, item_limit: usize) -> Option<usize> {
    pack_assignment(sizes, cap, item_limit).map(|a| a.bins)
}

/// An optimal packing: the number of bins and an `item → bin` map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExactPacking {
    /// Optimal bin count.
    pub bins: usize,
    /// `assignment[i]` is the bin index of `sizes[i]` in an optimal
    /// packing (bin indices `0..bins`).
    pub assignment: Vec<usize>,
}

/// Like [`pack_count`], but also returns a witness assignment realizing
/// the optimum.
///
/// Returns `None` if `sizes.len()` exceeds `item_limit`. `Some` with an
/// empty assignment for an empty input.
///
/// # Panics
///
/// Panics if any size does not fit an empty bin.
#[must_use]
pub fn pack_assignment(sizes: &[DimVec], cap: &DimVec, item_limit: usize) -> Option<ExactPacking> {
    if sizes.len() > item_limit {
        return None;
    }
    if sizes.is_empty() {
        return Some(ExactPacking {
            bins: 0,
            assignment: Vec::new(),
        });
    }
    for (i, s) in sizes.iter().enumerate() {
        assert!(s.fits_within(cap), "item {i} larger than a bin");
    }

    // Sort descending by exact Linf ratio; larger items branch earlier,
    // which tightens pruning dramatically.
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by(|&a, &b| {
        let (_, na, da) = dvbp_dimvec::ratio_linf(&sizes[a], cap);
        let (_, nb, db) = dvbp_dimvec::ratio_linf(&sizes[b], cap);
        (u128::from(nb) * u128::from(da))
            .cmp(&(u128::from(na) * u128::from(db)))
            .then_with(|| sizes[b].cmp(&sizes[a]))
    });
    let sorted: Vec<&DimVec> = order.iter().map(|&i| &sizes[i]).collect();

    // Suffix totals for the volume lower bound.
    let dim = cap.dim();
    let mut suffix_total: Vec<DimVec> = vec![DimVec::zeros(dim); sorted.len() + 1];
    for i in (0..sorted.len()).rev() {
        let mut t = suffix_total[i + 1].clone();
        t.add_assign(sorted[i]);
        suffix_total[i] = t;
    }

    // Seed the incumbent with FFD (both count and assignment).
    let ffd = crate::ffd::ffd_assignment(sizes, cap);
    let mut best = ffd.iter().max().map_or(0, |&m| m + 1);
    // best_assign lives in *sorted* index space during the search.
    let mut best_assign: Vec<usize> = order.iter().map(|&i| ffd[i]).collect();

    let lb = volume_lb(&suffix_total[0], cap);
    if lb < best {
        let mut bins: Vec<DimVec> = Vec::new();
        let mut cur: Vec<usize> = vec![usize::MAX; sorted.len()];
        branch(
            &sorted,
            cap,
            &suffix_total,
            &mut bins,
            &mut cur,
            &mut best,
            &mut best_assign,
            0,
        );
    }

    // Translate back to input index space.
    let mut assignment = vec![usize::MAX; sizes.len()];
    for (sorted_idx, &orig_idx) in order.iter().enumerate() {
        assignment[orig_idx] = best_assign[sorted_idx];
    }
    Some(ExactPacking {
        bins: best,
        assignment,
    })
}

/// `max_j ⌈total_j / cap_j⌉` — bins needed for this aggregate load.
fn volume_lb(total: &DimVec, cap: &DimVec) -> usize {
    total
        .iter()
        .zip(cap.iter())
        .map(|(t, c)| t.div_ceil(c) as usize)
        .max()
        .unwrap_or(0)
}

#[allow(clippy::too_many_arguments)]
fn branch(
    sorted: &[&DimVec],
    cap: &DimVec,
    suffix_total: &[DimVec],
    bins: &mut Vec<DimVec>,
    cur: &mut Vec<usize>,
    best: &mut usize,
    best_assign: &mut Vec<usize>,
    next: usize,
) {
    if next == sorted.len() {
        if bins.len() < *best {
            *best = bins.len();
            best_assign.clone_from(cur);
        }
        return;
    }
    if bins.len() >= *best {
        return; // can't improve
    }
    // Free-space-aware volume bound: remaining demand beyond current free
    // space needs fresh bins.
    let remaining = &suffix_total[next];
    let mut deficit_bins = 0usize;
    for j in 0..cap.dim() {
        let free: u64 = bins.iter().map(|b| cap[j] - b[j]).sum();
        let rem = remaining[j];
        if rem > free {
            deficit_bins = deficit_bins.max((rem - free).div_ceil(cap[j]) as usize);
        }
    }
    if bins.len() + deficit_bins >= *best {
        return;
    }

    let size = sorted[next];
    // Try existing bins, skipping duplicates of identical load vectors.
    for i in 0..bins.len() {
        if !bins[i].fits_with(size, cap) {
            continue;
        }
        if bins[..i].iter().any(|b| b == &bins[i]) {
            continue; // symmetric to an earlier branch
        }
        bins[i].add_assign(size);
        cur[next] = i;
        branch(
            sorted,
            cap,
            suffix_total,
            bins,
            cur,
            best,
            best_assign,
            next + 1,
        );
        bins[i].sub_assign(size);
        if bins.len() >= *best {
            return;
        }
    }
    // Open a new bin — only when doing so can still beat the incumbent.
    if bins.len() + 1 < *best {
        cur[next] = bins.len();
        bins.push((*size).clone());
        branch(
            sorted,
            cap,
            suffix_total,
            bins,
            cur,
            best,
            best_assign,
            next + 1,
        );
        bins.pop();
    }
}

/// Brute-force optimum by enumerating set partitions — exponential, for
/// cross-validating [`pack_count`] on tiny inputs in tests.
///
/// # Panics
///
/// Panics if `sizes.len() > 10`.
#[must_use]
pub fn brute_force_count(sizes: &[DimVec], cap: &DimVec) -> usize {
    assert!(sizes.len() <= 10, "brute force limited to 10 items");
    if sizes.is_empty() {
        return 0;
    }
    let mut best = sizes.len();
    let mut bins: Vec<DimVec> = Vec::new();
    fn rec(sizes: &[DimVec], cap: &DimVec, bins: &mut Vec<DimVec>, best: &mut usize, next: usize) {
        if next == sizes.len() {
            *best = (*best).min(bins.len());
            return;
        }
        if bins.len() >= *best {
            return;
        }
        for i in 0..bins.len() {
            if bins[i].fits_with(&sizes[next], cap) {
                bins[i].add_assign(&sizes[next]);
                rec(sizes, cap, bins, best, next + 1);
                bins[i].sub_assign(&sizes[next]);
            }
        }
        bins.push(sizes[next].clone());
        rec(sizes, cap, bins, best, next + 1);
        bins.pop();
    }
    rec(sizes, cap, &mut bins, &mut best, 0);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ffd::ffd_count;

    fn v(s: &[u64]) -> DimVec {
        DimVec::from_slice(s)
    }

    fn scalars(s: &[u64]) -> Vec<DimVec> {
        s.iter().map(|&x| v(&[x])).collect()
    }

    #[test]
    fn empty_and_single() {
        let cap = v(&[10]);
        assert_eq!(pack_count(&[], &cap, 28), Some(0));
        assert_eq!(pack_count(&scalars(&[10]), &cap, 28), Some(1));
    }

    #[test]
    fn where_ffd_is_suboptimal() {
        // Capacity 10, sizes 5,5,4,4,3,3,3,3: FFD packs {5,5},{4,4},
        // {3,3,3},{3} = 4 bins; the optimum is 3: {5,5},{4,3,3},{4,3,3}.
        let sizes = scalars(&[5, 5, 4, 4, 3, 3, 3, 3]);
        let cap = v(&[10]);
        assert_eq!(ffd_count(&sizes, &cap), 4);
        assert_eq!(pack_count(&sizes, &cap, 28), Some(3));
    }

    #[test]
    fn matches_brute_force_on_grid() {
        // Deterministic pseudo-random small instances, 1-D and 2-D.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for d in 1..=2usize {
            for n in 1..=7usize {
                for _case in 0..10 {
                    let cap = DimVec::splat(d, 12);
                    let sizes: Vec<DimVec> = (0..n)
                        .map(|_| DimVec::from_fn(d, |_| 1 + next() % 12))
                        .collect();
                    let exact = pack_count(&sizes, &cap, 28).unwrap();
                    let brute = brute_force_count(&sizes, &cap);
                    assert_eq!(exact, brute, "d={d} n={n} sizes={sizes:?}");
                }
            }
        }
    }

    #[test]
    fn two_dim_complementary_shapes() {
        // (9,1) and (1,9) pair perfectly; 4 items -> 2 bins.
        let sizes = vec![v(&[9, 1]), v(&[9, 1]), v(&[1, 9]), v(&[1, 9])];
        assert_eq!(pack_count(&sizes, &v(&[10, 10]), 28), Some(2));
    }

    #[test]
    fn item_limit_respected() {
        let sizes = scalars(&[1, 1, 1]);
        assert_eq!(pack_count(&sizes, &v(&[10]), 2), None);
        assert_eq!(pack_count(&sizes, &v(&[10]), 3), Some(1));
    }

    #[test]
    fn volume_bound_short_circuits() {
        // 20 unit items into capacity 10: exactly 2 bins; the volume LB
        // equals FFD so no branching happens (fast even at the limit).
        let sizes = scalars(&[1; 20]);
        assert_eq!(pack_count(&sizes, &v(&[10]), 28), Some(2));
    }

    #[test]
    fn moderately_hard_instance() {
        // 15 items with awkward sizes; exact must not blow up.
        let sizes = scalars(&[7, 7, 6, 6, 5, 5, 5, 4, 4, 4, 3, 3, 2, 2, 2]);
        let cap = v(&[10]);
        let exact = pack_count(&sizes, &cap, 28).unwrap();
        // Total volume = 65 -> ≥ 7 bins; a 7-bin packing exists:
        // {7,3},{7,3},{6,4},{6,4},{5,5},{5,4}... 5+4=9 plus 2: {5,4,...}
        assert_eq!(exact, 7);
    }

    #[test]
    fn assignment_is_feasible_and_optimal() {
        let sizes = scalars(&[5, 5, 4, 4, 3, 3, 3, 3]);
        let cap = v(&[10]);
        let packing = pack_assignment(&sizes, &cap, 28).unwrap();
        assert_eq!(packing.bins, 3);
        assert_eq!(packing.assignment.len(), sizes.len());
        let mut loads = vec![0u64; packing.bins];
        for (i, &b) in packing.assignment.iter().enumerate() {
            assert!(b < packing.bins, "bin index within range");
            loads[b] += sizes[i][0];
        }
        for load in loads {
            assert!(load <= 10);
        }
    }

    #[test]
    fn assignment_agrees_with_count_on_random_cases() {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..20 {
            let n = 1 + (next() % 10) as usize;
            let d = 1 + (next() % 2) as usize;
            let cap = DimVec::splat(d, 12);
            let sizes: Vec<DimVec> = (0..n)
                .map(|_| DimVec::from_fn(d, |_| 1 + next() % 12))
                .collect();
            let packing = pack_assignment(&sizes, &cap, 28).unwrap();
            assert_eq!(Some(packing.bins), pack_count(&sizes, &cap, 28));
            // Validate feasibility dimension-wise.
            let mut loads = vec![DimVec::zeros(d); packing.bins];
            for (i, &b) in packing.assignment.iter().enumerate() {
                loads[b].add_assign(&sizes[i]);
            }
            for load in &loads {
                assert!(load.fits_within(&cap));
            }
            // Every bin index 0..bins is used (no gaps).
            let mut used = vec![false; packing.bins];
            for &b in &packing.assignment {
                used[b] = true;
            }
            assert!(used.iter().all(|&u| u));
        }
    }

    #[test]
    fn assignment_empty_input() {
        let p = pack_assignment(&[], &v(&[10]), 28).unwrap();
        assert_eq!(p.bins, 0);
        assert!(p.assignment.is_empty());
    }

    #[test]
    #[should_panic(expected = "larger than a bin")]
    fn oversized_panics() {
        let _ = pack_count(&scalars(&[11]), &v(&[10]), 28);
    }
}

//! **X9 — the price of irrevocability.** The paper's model forbids
//! repacking ("due to overheads involved in migrating jobs... the
//! placement of an item to a bin is irrevocable", §1), while the offline
//! comparator may repack freely. This experiment measures what migration
//! is actually worth on random workloads: the best online policy vs a
//! migrating scheduler that re-runs FFD at every event (a feasible
//! strategy if migration were free — exactly `opt_bounds(..).upper`) vs
//! the certified OPT lower bound.
//!
//! ```text
//! cargo run --release -p dvbp-experiments --bin xp_migration
//!     [--trials 100] [--json PATH]
//! ```

use dvbp_analysis::report::{mean_pm_std, TextTable};
use dvbp_analysis::stats::{Accumulator, Summary};
use dvbp_core::{PackRequest, PolicyKind};
use dvbp_experiments::cli::Args;
use dvbp_experiments::fig4::trial_seed;
use dvbp_offline::opt_bounds;
use dvbp_parallel::run_trials;
use dvbp_workloads::UniformParams;
use serde::Serialize;
use std::path::Path;

#[derive(Serialize)]
struct Row {
    d: usize,
    mu: u64,
    /// Best non-clairvoyant online policy cost / OPT lower bound.
    online: Summary,
    /// Per-event FFD repacking (free migration) cost / OPT lower bound.
    migrating: Summary,
    /// Online cost / migrating cost — the irrevocability premium.
    premium: Summary,
}

fn main() {
    let args = Args::from_env();
    let trials: usize = args.get("trials", 100);

    let mut rows = Vec::new();
    for d in [1usize, 2] {
        for mu in [10u64, 100] {
            // Keep instances moderate: opt_bounds re-packs every slice.
            let params = UniformParams {
                dims: d,
                items: 400,
                mu,
                span: 400,
                bin_size: 100,
            };
            let per_trial = run_trials(trials, |t| {
                let seed = trial_seed(0x316A, d, mu, t);
                let inst = params.generate(seed);
                let bounds = opt_bounds(&inst, 12);
                let online = PolicyKind::paper_suite(seed)
                    .iter()
                    .map(|k| PackRequest::new(k.clone()).cost(&inst).unwrap())
                    .min()
                    .expect("non-empty suite");
                (
                    online as f64 / bounds.lower as f64,
                    bounds.upper as f64 / bounds.lower as f64,
                    online as f64 / bounds.upper as f64,
                )
            });
            let mut acc = [Accumulator::new(); 3];
            for &(o, m, p) in &per_trial {
                acc[0].push(o);
                acc[1].push(m);
                acc[2].push(p);
            }
            rows.push(Row {
                d,
                mu,
                online: Summary::from(&acc[0]),
                migrating: Summary::from(&acc[1]),
                premium: Summary::from(&acc[2]),
            });
        }
    }

    let mut t = TextTable::new([
        "d",
        "mu",
        "best online /OPT_lb",
        "migrating FFD /OPT_lb",
        "irrevocability premium",
    ]);
    for r in &rows {
        t.row([
            r.d.to_string(),
            r.mu.to_string(),
            mean_pm_std(r.online.mean, r.online.std_dev),
            mean_pm_std(r.migrating.mean, r.migrating.std_dev),
            mean_pm_std(r.premium.mean, r.premium.std_dev),
        ]);
    }
    println!(
        "X9: what would free migration buy? (n=400, {trials} trials/point)\n\
         'migrating FFD' re-packs all active items at every event.\n\n{t}"
    );

    if let Some(path) = args.get_str("json") {
        dvbp_experiments::write_json(Path::new(path), &rows).expect("write json");
        eprintln!("wrote {path}");
    }
}

//! Regenerates **Table 1**: empirical certification of the paper's
//! competitive-ratio bounds.
//!
//! Lower bounds: each §6 construction is run at growing scale; the
//! targeted algorithm's measured cost over the *witness-certified* OPT
//! upper bound converges to the theorem's asymptote from below. Upper
//! bounds (Thms 2–4): the worst `cost/OPT_exact` over a batch of random,
//! exactly-solvable instances is reported next to the formula value.
//!
//! ```text
//! cargo run --release -p dvbp-experiments --bin table1_bounds
//!     [--mu 8] [--trials 200] [--json PATH]
//! ```

use dvbp_analysis::report::TextTable;
use dvbp_experiments::cli::Args;
use dvbp_experiments::table1::{thm5_rows, thm6_rows, thm8_rows, upper_bound_rows, LowerBoundRow};
use serde::Serialize;
use std::path::Path;

#[derive(Serialize)]
struct Output {
    lower: Vec<LowerBoundRow>,
    upper: Vec<dvbp_experiments::table1::UpperBoundRow>,
}

fn main() {
    let args = Args::from_env();
    let mu: u64 = args.get("mu", 8);
    let trials: usize = args.get("trials", 200);

    eprintln!("Table 1: lower-bound families (mu = {mu}) ...");
    let mut lower = Vec::new();
    lower.extend(thm5_rows(&[1, 2, 5], mu, &[2, 8, 32], 64));
    lower.extend(thm6_rows(&[1, 2, 5], mu, &[4, 16, 64]));
    lower.extend(thm8_rows(mu, &[2, 8, 32, 128]));

    let mut t = TextTable::new([
        "Family",
        "Algorithm",
        "d",
        "mu",
        "scale",
        "cost",
        "OPT_ub",
        "ratio",
        "target",
    ]);
    for r in &lower {
        t.row([
            r.family.clone(),
            r.algorithm.clone(),
            r.d.to_string(),
            r.mu.to_string(),
            r.scale.to_string(),
            r.online_cost.to_string(),
            r.opt_upper.to_string(),
            format!("{:.3}", r.ratio),
            format!("{:.1}", r.asymptote),
        ]);
    }
    println!("Lower-bound constructions (ratio is a certified CR lower bound)\n\n{t}");

    eprintln!("Table 1: upper-bound verification ({trials} random instances/dim) ...");
    let upper = upper_bound_rows(&[1, 2, 3], trials, 0xB0B);
    let mut tu = TextTable::new([
        "Algorithm",
        "d",
        "worst cost/OPT",
        "bound @ max mu",
        "holds",
    ]);
    for r in &upper {
        tu.row([
            r.algorithm.clone(),
            r.d.to_string(),
            format!("{:.3}", r.worst_ratio),
            format!("{:.3}", r.bound_at_max_mu),
            r.holds.to_string(),
        ]);
    }
    println!("Upper-bound verification (Thms 2-4 against exact OPT)\n\n{tu}");

    if let Some(path) = args.get_str("json") {
        dvbp_experiments::write_json(Path::new(path), &Output { lower, upper })
            .expect("write json");
        eprintln!("wrote {path}");
    }
}

//! **X8 — packing & alignment decomposition.** §7 explains the Figure 4
//! ranking via two mechanisms: *packing* (space efficiency) and
//! *alignment* (co-located items departing together). This experiment
//! measures both for every algorithm — utilization of rented volume and
//! usage-weighted departure alignment — and checks the paper's causal
//! story: Worst Fit loses on packing, Next Fit on neither-metric-alone
//! (it opens too many bins), Move To Front does well on both.
//!
//! ```text
//! cargo run --release -p dvbp-experiments --bin xp_metrics
//!     [--trials 200] [--json PATH] [--metrics PATH.jsonl]
//! ```
//!
//! `--metrics` streams trial 0's labeled engine event feed per algorithm
//! as JSONL (ingestable by `dvbp_analysis::obs_ingest`).

use dvbp_analysis::metrics::packing_metrics;
use dvbp_analysis::report::TextTable;
use dvbp_analysis::stats::{Accumulator, Summary};
use dvbp_core::{PackRequest, PolicyKind};
use dvbp_experiments::cli::Args;
use dvbp_experiments::fig4::trial_seed;
use dvbp_offline::lb_load;
use dvbp_parallel::run_trials;
use dvbp_workloads::UniformParams;
use serde::Serialize;
use std::path::Path;

#[derive(Serialize)]
struct Row {
    algorithm: String,
    ratio: Summary,
    utilization: Summary,
    alignment: Summary,
    avg_open_bins: Summary,
}

fn main() {
    let args = Args::from_env();
    let trials: usize = args.get("trials", 200);
    let params = UniformParams::table2(2, 100);
    let suite = PolicyKind::paper_suite(0);

    let per_trial = run_trials(trials, |t| {
        let seed = trial_seed(0x3E71, 2, 100, t);
        let inst = params.generate(seed);
        let lb = lb_load(&inst) as f64;
        PolicyKind::paper_suite(seed ^ 0xD1CE)
            .iter()
            .map(|kind| {
                let p = PackRequest::new(kind.clone()).run(&inst).unwrap();
                let m = packing_metrics(&inst, &p);
                (
                    m.cost as f64 / lb,
                    m.utilization,
                    m.alignment,
                    m.avg_open_bins,
                )
            })
            .collect::<Vec<(f64, f64, f64, f64)>>()
    });

    let mut rows = Vec::new();
    for (ki, kind) in suite.iter().enumerate() {
        let mut acc = [Accumulator::new(); 4];
        for tr in &per_trial {
            let (r, u, a, o) = tr[ki];
            acc[0].push(r);
            acc[1].push(u);
            acc[2].push(a);
            acc[3].push(o);
        }
        rows.push(Row {
            algorithm: kind.name(),
            ratio: Summary::from(&acc[0]),
            utilization: Summary::from(&acc[1]),
            alignment: Summary::from(&acc[2]),
            avg_open_bins: Summary::from(&acc[3]),
        });
    }

    let mut t = TextTable::new([
        "algorithm",
        "cost/LB",
        "utilization",
        "alignment",
        "avg open bins",
    ]);
    for r in &rows {
        t.row([
            r.algorithm.clone(),
            format!("{:.3}", r.ratio.mean),
            format!("{:.3}", r.utilization.mean),
            format!("{:.3}", r.alignment.mean),
            format!("{:.1}", r.avg_open_bins.mean),
        ]);
    }
    println!(
        "X8: packing (utilization) and alignment behind the Figure 4 ranking\n\
         (d=2, mu=100, {trials} trials; cf. the paper's §7 discussion)\n\n{t}"
    );

    if let Some(path) = args.get_str("json") {
        dvbp_experiments::write_json(Path::new(path), &rows).expect("write json");
        eprintln!("wrote {path}");
    }

    if let Some(path) = args.get_str("metrics") {
        use dvbp_experiments::obs_emit::{emit_metrics_jsonl, MetricsRun};
        let seed = trial_seed(0x3E71, 2, 100, 0);
        let inst = params.generate(seed);
        let runs: Vec<MetricsRun<'_>> = PolicyKind::paper_suite(seed ^ 0xD1CE)
            .into_iter()
            .map(|kind| MetricsRun {
                kind,
                d: 2,
                mu: 100,
                seed,
                instance: &inst,
            })
            .collect();
        let lines = emit_metrics_jsonl(Path::new(path), &runs).expect("write metrics jsonl");
        eprintln!("wrote {path} ({lines} events, {} runs)", runs.len());
    }
}

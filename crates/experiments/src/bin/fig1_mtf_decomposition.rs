//! Regenerates **Figure 1**: the leading/non-leading decomposition of the
//! usage periods of Move To Front's bins, rendered as an ASCII timeline
//! (`█` leading, `░` non-leading) and machine-verified against the
//! structural claims of §3.
//!
//! ```text
//! cargo run --release -p dvbp-experiments --bin fig1_mtf_decomposition
//!     [--seed 7] [--items 14] [--span 24]
//! ```

use dvbp_analysis::decomposition::mtf::MtfDecomposition;
use dvbp_core::{Instance, Item, PackRequest, PolicyKind};
use dvbp_dimvec::DimVec;
use dvbp_experiments::cli::Args;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let args = Args::from_env();
    let seed: u64 = args.get("seed", 7);
    let n: usize = args.get("items", 14);
    let span: u64 = args.get("span", 24);

    let mut rng = StdRng::seed_from_u64(seed);
    let items: Vec<Item> = (0..n)
        .map(|_| {
            let a = rng.random_range(0..span * 3 / 4);
            let dur = rng.random_range(1..=span / 3);
            Item::new(DimVec::scalar(rng.random_range(3..=7)), a, a + dur)
        })
        .collect();
    let instance = Instance::new(DimVec::scalar(10), items).expect("valid");
    let packing = PackRequest::new(PolicyKind::MoveToFront)
        .run(&instance)
        .unwrap();
    let decomp = MtfDecomposition::from_packing(&packing);
    decomp
        .verify(&instance, &packing)
        .expect("Figure 1 structural claims must hold");

    let end = packing.bins.iter().map(|b| b.closed).max().unwrap_or(0);
    println!(
        "Figure 1: Move To Front usage periods decomposed into leading (█) and\n\
         non-leading (░) intervals. seed={seed}, n={n}, span(R)={}\n",
        instance.span()
    );
    for (b, segs) in decomp.per_bin.iter().enumerate() {
        let mut line = vec![' '; end as usize];
        for seg in segs {
            let ch = if seg.leading { '█' } else { '░' };
            for t in seg.interval.start..seg.interval.end {
                line[t as usize] = ch;
            }
        }
        println!("B{b:<3} {}", line.iter().collect::<String>());
    }
    println!("\ntime 0..{end} ->");

    let lead_total: u128 = decomp
        .leading_intervals()
        .iter()
        .map(|i| u128::from(i.len()))
        .sum();
    println!(
        "\nClaim 1 check: sum of leading intervals = {lead_total} = span(R) = {}",
        instance.span()
    );
    println!(
        "Claim 2 check: longest non-leading interval = {} <= max duration = {}",
        decomp
            .per_bin
            .iter()
            .flatten()
            .filter(|s| !s.leading)
            .map(|s| s.interval.len())
            .max()
            .unwrap_or(0),
        instance.items.iter().map(Item::duration).max().unwrap_or(0)
    );
    println!("cost(MF) = {}", packing.cost());
}

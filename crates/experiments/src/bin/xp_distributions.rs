//! **X4 — distribution sensitivity.** §7's "Theory vs Practice"
//! discussion calls for average-case study under other input
//! distributions. This experiment re-runs the algorithm suite under
//! Zipf sizes, geometric durations, bursty arrivals and correlated
//! dimensions, and reports whether the paper's ranking (MTF best, Worst
//! Fit worst) survives each change.
//!
//! ```text
//! cargo run --release -p dvbp-experiments --bin xp_distributions
//!     [--trials 200] [--json PATH]
//! ```

use dvbp_analysis::report::{mean_pm_std, TextTable};
use dvbp_analysis::stats::{Accumulator, Summary};
use dvbp_core::{PackRequest, PolicyKind};
use dvbp_experiments::cli::Args;
use dvbp_experiments::fig4::trial_seed;
use dvbp_offline::lb_load;
use dvbp_parallel::run_trials;
use dvbp_workloads::extended::{ArrivalDist, DurationDist, ExtendedParams, SizeDist};
use dvbp_workloads::UniformParams;
use serde::Serialize;
use std::path::Path;

#[derive(Serialize)]
struct Row {
    scenario: String,
    algorithm: String,
    ratio: Summary,
}

fn main() {
    let args = Args::from_env();
    let trials: usize = args.get("trials", 200);
    let base = UniformParams::table2(2, 100);

    let scenarios: Vec<(String, ExtendedParams)> = vec![
        ("uniform (paper)".into(), ExtendedParams::paper(base)),
        (
            "zipf sizes (s=1.5)".into(),
            ExtendedParams {
                sizes: SizeDist::Zipf { exponent: 1.5 },
                ..ExtendedParams::paper(base)
            },
        ),
        (
            "geometric durations (p=0.1)".into(),
            ExtendedParams {
                durations: DurationDist::Geometric { p: 0.1 },
                ..ExtendedParams::paper(base)
            },
        ),
        (
            "bursty arrivals (5 waves)".into(),
            ExtendedParams {
                arrivals: ArrivalDist::Bursty {
                    waves: 5,
                    width: 40,
                },
                ..ExtendedParams::paper(base)
            },
        ),
        (
            "correlated dims (spread 10)".into(),
            ExtendedParams {
                sizes: SizeDist::Correlated { spread: 10 },
                ..ExtendedParams::paper(base)
            },
        ),
    ];

    let suite = PolicyKind::paper_suite(0);
    let mut rows = Vec::new();
    for (si, (name, params)) in scenarios.iter().enumerate() {
        let per_trial = run_trials(trials, |t| {
            let seed = trial_seed(0xD157 + si as u64, 2, 100, t);
            let inst = params.generate(seed);
            let lb = lb_load(&inst);
            PolicyKind::paper_suite(seed ^ 0xD1CE)
                .iter()
                .map(|k| dvbp_analysis::ratio(PackRequest::new(k.clone()).cost(&inst).unwrap(), lb))
                .collect::<Vec<f64>>()
        });
        for (ki, kind) in suite.iter().enumerate() {
            let mut acc = Accumulator::new();
            for tr in &per_trial {
                acc.push(tr[ki]);
            }
            rows.push(Row {
                scenario: name.clone(),
                algorithm: kind.name(),
                ratio: Summary::from(&acc),
            });
        }
    }

    let mut t = TextTable::new(["scenario", "algorithm", "cost/LB (mean ± std)"]);
    for r in &rows {
        t.row([
            r.scenario.clone(),
            r.algorithm.clone(),
            mean_pm_std(r.ratio.mean, r.ratio.std_dev),
        ]);
    }
    println!(
        "X4: distribution sensitivity of the Any Fit suite\n\
         (base: d=2, mu=100, n=1000; {trials} trials/scenario)\n\n{t}"
    );

    if let Some(path) = args.get_str("json") {
        dvbp_experiments::write_json(Path::new(path), &rows).expect("write json");
        eprintln!("wrote {path}");
    }
}

//! Regenerates **Figure 3**: the phase-by-phase bin loads of an Any Fit
//! algorithm on the Theorem 5 construction — (a) after the first wave,
//! (b) when the second wave lands, (c) after the first wave departs —
//! and checks the forced-cost arithmetic.
//!
//! ```text
//! cargo run --release -p dvbp-experiments --bin fig3_anyfit_lb_trace
//!     [--k 3] [--d 2] [--mu 4] [--algorithm FirstFit]
//! ```

use dvbp_analysis::report::TextTable;
use dvbp_core::{PackRequest, PolicyKind, TraceEvent};
use dvbp_dimvec::DimVec;
use dvbp_experiments::cli::Args;
use dvbp_offline::witness::assignment_cost;
use dvbp_workloads::adversarial::AnyFitLb;

fn main() {
    let args = Args::from_env();
    let k: usize = args.get("k", 3);
    let d: usize = args.get("d", 2);
    let mu: u64 = args.get("mu", 4);
    let m: u64 = args.get("m", 8);
    let kind = match args.get_str("algorithm").unwrap_or("FirstFit") {
        "FirstFit" => PolicyKind::FirstFit,
        "MoveToFront" => PolicyKind::MoveToFront,
        "BestFit" => PolicyKind::BestFit(dvbp_core::LoadMeasure::Linf),
        "WorstFit" => PolicyKind::WorstFit(dvbp_core::LoadMeasure::Linf),
        "LastFit" => PolicyKind::LastFit,
        other => panic!("unknown full-candidate Any Fit algorithm: {other}"),
    };

    let fam = AnyFitLb { k, d, mu, m };
    let inst = fam.instance();
    let cap = fam.capacity();
    let packing = PackRequest::new(kind.clone()).run(&inst).unwrap();
    packing.verify(&inst).expect("valid packing");

    println!(
        "Figure 3: {} on the Theorem 5 family (k={k}, d={d}, mu={mu}, m={m});\n\
         capacity C = {cap} units/dim, {} items.\n",
        kind.name(),
        inst.len()
    );

    // Reconstruct loads at the three phase boundaries from the trace.
    let wave1 = 2 * d * k; // first-wave item count
    let phases: [(&str, u64); 3] = [
        ("(a) end of first wave, t in [0, m-1)", 0),
        ("(b) second wave packed, t = m-1", m - 1),
        ("(c) first wave departed, t in [m, m-1+m*mu)", m),
    ];
    for (label, at) in phases {
        let mut loads = vec![DimVec::zeros(d); packing.num_bins()];
        let mut open = vec![false; packing.num_bins()];
        // Replay items active at tick `at`.
        for (i, item) in inst.items.iter().enumerate() {
            if item.interval().contains(at) {
                let b = packing.assignment[i].0;
                loads[b].add_assign(&item.size);
                open[b] = true;
            }
        }
        let mut t = TextTable::new(["bin", "load (units/dim)", "Linf/C"]);
        for (b, load) in loads.iter().enumerate() {
            if open[b] {
                t.row([
                    format!("B{b}"),
                    format!("{load}"),
                    format!("{:.3}", dvbp_dimvec::linf(load, &inst.capacity)),
                ]);
            }
        }
        println!("{label}\n{t}");
    }

    let opened = packing
        .trace
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::Packed {
                    opened_new: true,
                    ..
                }
            )
        })
        .count();
    let opt_ub = assignment_cost(&inst, &fam.witness()).expect("witness feasible");
    println!(
        "bins opened online: {opened} (first wave forces dk = {})",
        d * k
    );
    println!(
        "cost({}) = {} >= forced lower bound dk(m-1+m*mu) = {}",
        kind.name(),
        packing.cost(),
        fam.online_cost_lower()
    );
    println!(
        "witness-certified OPT upper bound = {opt_ub} (claim: {})",
        fam.opt_upper()
    );
    println!(
        "ratio = {:.3}  ->  asymptote (mu+1)d = {:.1}",
        packing.cost() as f64 / opt_ub as f64,
        fam.asymptote()
    );
    assert!(packing.cost() >= fam.online_cost_lower());
    assert!(wave1 == 2 * d * k);
}

//! **X1 — Best Fit load-measure ablation.** §2.2 lists several ways to
//! scalarize a bin's load vector for `d ≥ 2` (max load `L∞`, sum of loads
//! `L1`, general `Lp`); the paper's experiments fix `L∞`. This ablation
//! sweeps the measure on the Table 2 grid.
//!
//! ```text
//! cargo run --release -p dvbp-experiments --bin xp_bestfit_loads
//!     [--trials 200] [--json PATH]
//! ```

use dvbp_analysis::report::{mean_pm_std, TextTable};
use dvbp_analysis::stats::{Accumulator, Summary};
use dvbp_core::{LoadMeasure, PackRequest, PolicyKind};
use dvbp_experiments::cli::Args;
use dvbp_experiments::fig4::trial_seed;
use dvbp_offline::lb_load;
use dvbp_parallel::run_trials;
use dvbp_workloads::UniformParams;
use serde::Serialize;
use std::path::Path;

#[derive(Serialize)]
struct Row {
    d: usize,
    mu: u64,
    measure: String,
    ratio: Summary,
}

fn main() {
    let args = Args::from_env();
    let trials: usize = args.get("trials", 200);
    let measures = [
        LoadMeasure::Linf,
        LoadMeasure::L1,
        LoadMeasure::L2,
        LoadMeasure::Lp(4),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for d in [2usize, 5] {
        for mu in [10u64, 100] {
            let params = UniformParams::table2(d, mu);
            let per_trial = run_trials(trials, |t| {
                let seed = trial_seed(0xAB1A, d, mu, t);
                let inst = params.generate(seed);
                let lb = lb_load(&inst);
                measures
                    .iter()
                    .map(|&m| {
                        dvbp_analysis::ratio(
                            PackRequest::new(PolicyKind::BestFit(m))
                                .cost(&inst)
                                .unwrap(),
                            lb,
                        )
                    })
                    .collect::<Vec<f64>>()
            });
            for (mi, &m) in measures.iter().enumerate() {
                let mut acc = Accumulator::new();
                for tr in &per_trial {
                    acc.push(tr[mi]);
                }
                rows.push(Row {
                    d,
                    mu,
                    measure: m.to_string(),
                    ratio: Summary::from(&acc),
                });
            }
        }
    }

    let mut t = TextTable::new(["d", "mu", "measure", "cost/LB (mean ± std)"]);
    for r in &rows {
        t.row([
            r.d.to_string(),
            r.mu.to_string(),
            r.measure.clone(),
            mean_pm_std(r.ratio.mean, r.ratio.std_dev),
        ]);
    }
    println!("X1: Best Fit load-measure ablation ({trials} trials/point; paper uses Linf)\n\n{t}");

    if let Some(path) = args.get_str("json") {
        dvbp_experiments::write_json(Path::new(path), &rows).expect("write json");
        eprintln!("wrote {path}");
    }
}

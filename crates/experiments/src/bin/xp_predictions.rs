//! **X3 — noisy-prediction robustness.** §8 suggests studying DVBP "given
//! additional information about the input, perhaps obtained using machine
//! learning". This experiment feeds duration-class First Fit predictions
//! whose log₂-error grows from 0 (perfect clairvoyance) to ±6 (useless),
//! and tracks when the non-clairvoyant Move To Front overtakes it.
//!
//! ```text
//! cargo run --release -p dvbp-experiments --bin xp_predictions
//!     [--trials 200] [--json PATH]
//! ```

use dvbp_analysis::report::{mean_pm_std, TextTable};
use dvbp_analysis::stats::{Accumulator, Summary};
use dvbp_core::{PackRequest, PolicyKind};
use dvbp_experiments::cli::Args;
use dvbp_experiments::fig4::trial_seed;
use dvbp_offline::lb_load;
use dvbp_parallel::run_trials;
use dvbp_workloads::predictions::announce_noisy;
use dvbp_workloads::UniformParams;
use serde::Serialize;
use std::path::Path;

#[derive(Serialize)]
struct Row {
    err_log2: f64,
    algorithm: String,
    ratio: Summary,
}

fn main() {
    let args = Args::from_env();
    let trials: usize = args.get("trials", 200);
    let errors = [0.0f64, 0.5, 1.0, 2.0, 4.0, 6.0];
    let params = UniformParams::table2(2, 100);

    let mut rows = Vec::new();
    // Baseline: Move To Front needs no predictions; measured once.
    let mtf_ratios = run_trials(trials, |t| {
        let seed = trial_seed(0x9ED1, 2, 100, t);
        let inst = params.generate(seed);
        dvbp_analysis::ratio(
            PackRequest::new(PolicyKind::MoveToFront)
                .cost(&inst)
                .unwrap(),
            lb_load(&inst),
        )
    });
    let mut mtf_acc = Accumulator::new();
    for r in &mtf_ratios {
        mtf_acc.push(*r);
    }

    for &err in &errors {
        let per_trial = run_trials(trials, |t| {
            let seed = trial_seed(0x9ED1, 2, 100, t);
            let inst = params.generate(seed);
            let lb = lb_load(&inst);
            let noisy = announce_noisy(&inst, err, seed ^ 0xFACE);
            dvbp_analysis::ratio(
                PackRequest::new(PolicyKind::DurationClassFirstFit)
                    .cost(&noisy)
                    .unwrap(),
                lb,
            )
        });
        let mut acc = Accumulator::new();
        for r in &per_trial {
            acc.push(*r);
        }
        rows.push(Row {
            err_log2: err,
            algorithm: "DurationClassFF".into(),
            ratio: Summary::from(&acc),
        });
    }
    rows.push(Row {
        err_log2: f64::NAN,
        algorithm: "MoveToFront (no predictions)".into(),
        ratio: Summary::from(&mtf_acc),
    });

    let mut t = TextTable::new([
        "prediction err (±log2)",
        "algorithm",
        "cost/LB (mean ± std)",
    ]);
    for r in &rows {
        t.row([
            if r.err_log2.is_nan() {
                "-".to_string()
            } else {
                format!("{:.1}", r.err_log2)
            },
            r.algorithm.clone(),
            mean_pm_std(r.ratio.mean, r.ratio.std_dev),
        ]);
    }
    println!(
        "X3: robustness of duration-class packing to prediction error\n\
         (d=2, mu=100, {trials} trials/point)\n\n{t}"
    );

    if let Some(path) = args.get_str("json") {
        dvbp_experiments::write_json(Path::new(path), &rows).expect("write json");
        eprintln!("wrote {path}");
    }
}

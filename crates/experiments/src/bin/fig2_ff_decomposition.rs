//! Regenerates **Figure 2**: the `P_i`/`Q_i` decomposition of First Fit's
//! bin usage periods (`▒` = `P_i`, while an older bin is still alive;
//! `█` = `Q_i`, the bin outlives all predecessors), machine-verified
//! against the structural claims of §4.
//!
//! ```text
//! cargo run --release -p dvbp-experiments --bin fig2_ff_decomposition
//!     [--seed 11] [--items 14] [--span 24]
//! ```

use dvbp_analysis::decomposition::first_fit::FirstFitDecomposition;
use dvbp_core::{Instance, Item, PackRequest, PolicyKind};
use dvbp_dimvec::DimVec;
use dvbp_experiments::cli::Args;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let args = Args::from_env();
    let seed: u64 = args.get("seed", 11);
    let n: usize = args.get("items", 14);
    let span: u64 = args.get("span", 24);

    let mut rng = StdRng::seed_from_u64(seed);
    let items: Vec<Item> = (0..n)
        .map(|_| {
            let a = rng.random_range(0..span * 3 / 4);
            let dur = rng.random_range(1..=span / 3);
            Item::new(DimVec::scalar(rng.random_range(3..=7)), a, a + dur)
        })
        .collect();
    let instance = Instance::new(DimVec::scalar(10), items).expect("valid");
    let packing = PackRequest::new(PolicyKind::FirstFit)
        .run(&instance)
        .unwrap();
    let decomp = FirstFitDecomposition::from_packing(&instance, &packing);
    decomp
        .verify(&instance, &packing)
        .expect("Figure 2 structural claims must hold");

    let end = packing.bins.iter().map(|b| b.closed).max().unwrap_or(0);
    println!(
        "Figure 2: First Fit usage periods decomposed into P_i (▒, an older bin\n\
         is still alive) and Q_i (█, outlives all predecessors).\n\
         seed={seed}, n={n}, span(R)={}\n",
        instance.span()
    );
    for (b, split) in decomp.bins.iter().enumerate() {
        let mut line = vec![' '; end as usize];
        for t in split.p.start..split.p.end {
            line[t as usize] = '▒';
        }
        for t in split.q.start..split.q.end {
            line[t as usize] = '█';
        }
        println!(
            "B{b:<3} {}   |R'_{b}| = {}",
            line.iter().collect::<String>(),
            split.cover.len()
        );
    }
    println!("\ntime 0..{end} ->");
    println!(
        "\nClaim 4 check: sum of Q_i = {} = span(R) = {}",
        decomp.q_total(),
        instance.span()
    );
    println!(
        "sum of P_i = {}, cost(FF) = {}",
        decomp.p_total(),
        packing.cost()
    );
}

//! **X7 — billing granularity.** §1 motivates MinUsageTime via
//! "pay-as-you-go" billing "in hourly or monthly basis"; the objective
//! (eq. 1) is its per-tick idealization. This experiment re-scores the
//! same packings under coarser billing periods (a bin open for `t` ticks
//! is billed `⌈t/g⌉·g`) and reports how the algorithm ranking shifts:
//! coarse billing punishes policies that open many short-lived bins.
//!
//! ```text
//! cargo run --release -p dvbp-experiments --bin xp_billing
//!     [--trials 200] [--json PATH]
//! ```

use dvbp_analysis::report::{mean_pm_std, TextTable};
use dvbp_analysis::stats::{Accumulator, Summary};
use dvbp_core::{billing::BillingModel, PackRequest, PolicyKind};
use dvbp_experiments::cli::Args;
use dvbp_experiments::fig4::trial_seed;
use dvbp_offline::lb_load;
use dvbp_parallel::run_trials;
use dvbp_workloads::UniformParams;
use serde::Serialize;
use std::path::Path;

#[derive(Serialize)]
struct Row {
    granularity: u64,
    algorithm: String,
    /// billed cost / (per-tick LB), mean ± std.
    ratio: Summary,
}

fn main() {
    let args = Args::from_env();
    let trials: usize = args.get("trials", 200);
    let granularities = [1u64, 10, 60, 240];
    let params = UniformParams::table2(2, 100);
    let suite = PolicyKind::paper_suite(0);

    let per_trial = run_trials(trials, |t| {
        let seed = trial_seed(0xB111, 2, 100, t);
        let inst = params.generate(seed);
        let lb = lb_load(&inst) as f64;
        let mut out = Vec::with_capacity(suite.len() * granularities.len());
        for kind in PolicyKind::paper_suite(seed ^ 0xD1CE) {
            let packing = PackRequest::new(kind.clone()).run(&inst).unwrap();
            for &g in &granularities {
                out.push(BillingModel::rounded(g).cost(&packing) as f64 / lb);
            }
        }
        out
    });

    let mut rows = Vec::new();
    for (ki, kind) in suite.iter().enumerate() {
        for (gi, &g) in granularities.iter().enumerate() {
            let mut acc = Accumulator::new();
            for tr in &per_trial {
                acc.push(tr[ki * granularities.len() + gi]);
            }
            rows.push(Row {
                granularity: g,
                algorithm: kind.name(),
                ratio: Summary::from(&acc),
            });
        }
    }

    for &g in &granularities {
        let mut t = TextTable::new(["algorithm", "billed/LB (mean ± std)"]);
        let mut subset: Vec<&Row> = rows.iter().filter(|r| r.granularity == g).collect();
        subset.sort_by(|a, b| a.ratio.mean.total_cmp(&b.ratio.mean));
        for r in subset {
            t.row([
                r.algorithm.clone(),
                mean_pm_std(r.ratio.mean, r.ratio.std_dev),
            ]);
        }
        println!("\nBilling period g = {g} ticks (d=2, mu=100, {trials} trials)\n{t}");
    }

    if let Some(path) = args.get_str("json") {
        dvbp_experiments::write_json(Path::new(path), &rows).expect("write json");
        eprintln!("wrote {path}");
    }
}

//! Regenerates **Figure 4** (and prints the Table 2 parameters): the
//! average-case performance of seven Any Fit algorithms on uniform random
//! workloads, as mean ± std of `cost / LB` over seeded trials.
//!
//! ```text
//! cargo run --release -p dvbp-experiments --bin fig4_average_case
//!     [--trials 1000] [--quick] [--json PATH] [--metrics PATH.jsonl]
//!     [--print-params]
//! ```
//!
//! `--quick` runs a reduced grid for smoke testing. The full paper grid
//! (18 points × 1000 trials × 7 algorithms) takes a few minutes.
//! `--metrics` additionally re-runs trial 0 of every grid point with the
//! observer stack attached and streams the labeled engine event feed as
//! JSONL (ingestable by `dvbp_analysis::obs_ingest`).

use dvbp_analysis::report::{mean_pm_std, TextTable};
use dvbp_core::PolicyKind;
use dvbp_experiments::cli::Args;
use dvbp_experiments::fig4::{run, trial_seed, Fig4Config};
use dvbp_experiments::obs_emit::{emit_metrics_jsonl, MetricsRun};
use dvbp_workloads::UniformParams;
use std::path::Path;

fn main() {
    let args = Args::from_env();
    let mut cfg = if args.flag("quick") {
        Fig4Config::quick()
    } else {
        Fig4Config::paper()
    };
    cfg.trials = args.get("trials", cfg.trials);

    if args.flag("print-params") {
        let mut t = TextTable::new(["Parameter", "Description", "Value"]);
        t.row(["d", "Num. dimensions", &format!("{:?}", cfg.dims)]);
        t.row(["n", "Sequence length", &cfg.items.to_string()]);
        t.row(["mu", "Max. item length", &format!("{:?}", cfg.mus)]);
        t.row(["T", "Sequence span", &cfg.span.to_string()]);
        t.row(["B", "Bin size", &cfg.bin_size.to_string()]);
        t.row(["m", "Trials per point", &cfg.trials.to_string()]);
        println!("Table 2: experimental parameters\n\n{t}");
    }

    eprintln!(
        "Figure 4: {} grid points x {} trials x 7 algorithms ...",
        cfg.dims.len() * cfg.mus.len(),
        cfg.trials
    );
    let cells = run(&cfg);

    // One panel (sub-table) per d, algorithms as columns, μ as rows —
    // matching the paper's panel layout.
    for &d in &cfg.dims {
        let algorithms: Vec<String> = cells
            .iter()
            .filter(|c| c.d == d && c.mu == cfg.mus[0])
            .map(|c| c.algorithm.clone())
            .collect();
        let mut headers = vec!["mu".to_string()];
        headers.extend(algorithms.iter().cloned());
        let mut t = TextTable::new(headers);
        for &mu in &cfg.mus {
            let mut row = vec![mu.to_string()];
            for alg in &algorithms {
                let cell = cells
                    .iter()
                    .find(|c| c.d == d && c.mu == mu && &c.algorithm == alg)
                    .expect("cell exists");
                row.push(mean_pm_std(cell.ratio.mean, cell.ratio.std_dev));
            }
            t.row(row);
        }
        println!(
            "\nFigure 4, d = {d} (cost / LB, mean ± std over {} trials)\n",
            cfg.trials
        );
        println!("{t}");
    }

    if let Some(path) = args.get_str("json") {
        dvbp_experiments::write_json(Path::new(path), &cells).expect("write json");
        eprintln!("wrote {path}");
    }

    if let Some(path) = args.get_str("metrics") {
        // Trial 0 of every grid point, regenerated with the same seed
        // derivation the sweep used, observed through the full stack.
        let mut instances = Vec::new();
        for &d in &cfg.dims {
            for &mu in &cfg.mus {
                let seed = trial_seed(cfg.base_seed, d, mu, 0);
                let params = UniformParams {
                    dims: d,
                    items: cfg.items,
                    mu,
                    span: cfg.span,
                    bin_size: cfg.bin_size,
                };
                instances.push((d, mu, seed, params.generate(seed)));
            }
        }
        let mut runs = Vec::new();
        for (d, mu, seed, inst) in &instances {
            for kind in PolicyKind::paper_suite(seed ^ 0xD1CE) {
                runs.push(MetricsRun {
                    kind,
                    d: *d,
                    mu: *mu,
                    seed: *seed,
                    instance: inst,
                });
            }
        }
        let lines = emit_metrics_jsonl(Path::new(path), &runs).expect("write metrics jsonl");
        eprintln!("wrote {path} ({lines} events, {} runs)", runs.len());
    }
}

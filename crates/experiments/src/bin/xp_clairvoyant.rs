//! **X2 — clairvoyant duration classes.** §8 lists the clairvoyant DVBP
//! problem (durations revealed on arrival) as future work. This
//! experiment compares duration-class First Fit (a classic clairvoyant
//! scheme: geometric duration classes, First Fit within a class) against
//! the non-clairvoyant suite on workloads with high duration spread,
//! where alignment matters most.
//!
//! ```text
//! cargo run --release -p dvbp-experiments --bin xp_clairvoyant
//!     [--trials 200] [--json PATH]
//! ```

use dvbp_analysis::report::{mean_pm_std, TextTable};
use dvbp_analysis::stats::{Accumulator, Summary};
use dvbp_core::{PackRequest, PolicyKind};
use dvbp_experiments::cli::Args;
use dvbp_experiments::fig4::trial_seed;
use dvbp_offline::lb_load;
use dvbp_parallel::run_trials;
use dvbp_workloads::predictions::announce_exact;
use dvbp_workloads::UniformParams;
use serde::Serialize;
use std::path::Path;

#[derive(Serialize)]
struct Row {
    d: usize,
    mu: u64,
    algorithm: String,
    ratio: Summary,
}

fn main() {
    let args = Args::from_env();
    let trials: usize = args.get("trials", 200);
    let kinds = [
        PolicyKind::DurationClassFirstFit,
        PolicyKind::AlignedFit,
        PolicyKind::MoveToFront,
        PolicyKind::FirstFit,
        PolicyKind::NextFit,
    ];

    let mut rows = Vec::new();
    for d in [1usize, 2] {
        for mu in [100u64, 200] {
            let params = UniformParams::table2(d, mu);
            let per_trial = run_trials(trials, |t| {
                let seed = trial_seed(0xC1A1, d, mu, t);
                let inst = announce_exact(&params.generate(seed));
                let lb = lb_load(&inst);
                kinds
                    .iter()
                    .map(|k| {
                        dvbp_analysis::ratio(PackRequest::new(k.clone()).cost(&inst).unwrap(), lb)
                    })
                    .collect::<Vec<f64>>()
            });
            for (ki, kind) in kinds.iter().enumerate() {
                let mut acc = Accumulator::new();
                for tr in &per_trial {
                    acc.push(tr[ki]);
                }
                rows.push(Row {
                    d,
                    mu,
                    algorithm: kind.name(),
                    ratio: Summary::from(&acc),
                });
            }
        }
    }

    let mut t = TextTable::new(["d", "mu", "algorithm", "cost/LB (mean ± std)"]);
    for r in &rows {
        t.row([
            r.d.to_string(),
            r.mu.to_string(),
            r.algorithm.clone(),
            mean_pm_std(r.ratio.mean, r.ratio.std_dev),
        ]);
    }
    println!(
        "X2: clairvoyant duration-class First Fit vs non-clairvoyant suite\n\
         ({trials} trials/point; durations announced exactly)\n\n{t}"
    );

    if let Some(path) = args.get_str("json") {
        dvbp_experiments::write_json(Path::new(path), &rows).expect("write json");
        eprintln!("wrote {path}");
    }
}

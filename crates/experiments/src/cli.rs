//! Minimal `--key value` / `--flag` argument parsing for the experiment
//! binaries (no external CLI crate; the flags are few and uniform).

use std::collections::BTreeMap;

/// Parsed command-line arguments.
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()` (skipping the program name).
    ///
    /// # Panics
    ///
    /// Panics with a usage hint on a malformed argument list (a `--key`
    /// at the end without a value is treated as a flag).
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit argument iterator.
    #[must_use]
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let key = arg
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("unexpected positional argument: {arg}"));
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().expect("peeked");
                    out.values.insert(key.to_string(), value);
                }
                _ => out.flags.push(key.to_string()),
            }
        }
        out
    }

    /// A `--key value` as a parsed type, or `default`.
    ///
    /// # Panics
    ///
    /// Panics if the value fails to parse.
    #[must_use]
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        self.values
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|e| panic!("--{key} {v}: {e:?}")))
            .unwrap_or(default)
    }

    /// The raw string value of `--key`, if present.
    #[must_use]
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// `true` iff `--flag` was passed.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse(s.iter().map(ToString::to_string))
    }

    #[test]
    fn values_and_flags() {
        let a = parse(&["--trials", "50", "--quick", "--json", "out.json"]);
        assert_eq!(a.get("trials", 0usize), 50);
        assert!(a.flag("quick"));
        assert!(!a.flag("slow"));
        assert_eq!(a.get_str("json"), Some("out.json"));
        assert_eq!(a.get("missing", 7u64), 7);
    }

    #[test]
    fn trailing_flag() {
        let a = parse(&["--verbose"]);
        assert!(a.flag("verbose"));
    }

    #[test]
    #[should_panic(expected = "positional")]
    fn rejects_positional() {
        let _ = parse(&["oops"]);
    }

    #[test]
    #[should_panic(expected = "--trials")]
    fn rejects_bad_value() {
        let a = parse(&["--trials", "abc"]);
        let _ = a.get("trials", 0usize);
    }
}

//! `--metrics` support: streaming observer metrics from experiment runs.
//!
//! The Figure 4 / Table 2 sweeps run thousands of trials in
//! [`TraceMode::CostOnly`](dvbp_core::TraceMode::CostOnly); replaying
//! every one through an emitter would swamp the output. Instead the
//! harness re-runs **one representative trial (trial 0) per grid point
//! and algorithm** with a [`JsonlEmitter`] + [`MetricsObserver`] pair
//! attached, labeling each run with an [`ObsEvent::Meta`] line so
//! `dvbp-analysis` can group the file back into runs
//! (`dvbp_analysis::obs_ingest::ingest_jsonl`).

use dvbp_core::{Instance, PackRequest, PolicyKind};
use dvbp_obs::{JsonlEmitter, MetricsObserver, ObsEvent};
use std::fs::File;
use std::io::BufWriter;
use std::path::Path;

/// One labeled run to emit: the grid coordinates plus the instance.
pub struct MetricsRun<'a> {
    /// Algorithm to pack with.
    pub kind: PolicyKind,
    /// Dimension label for the `Meta` line.
    pub d: usize,
    /// μ label for the `Meta` line.
    pub mu: u64,
    /// Trial seed label for the `Meta` line.
    pub seed: u64,
    /// The instance the run packs.
    pub instance: &'a Instance,
}

/// Streams the given runs to a JSONL file at `path`, one `Meta` line
/// followed by the full engine event stream per run. Returns the number
/// of JSON lines written.
///
/// Each run also feeds a [`MetricsObserver`] through the tuple-observer
/// composition; its peak-concurrency counter is cross-checked against
/// the packing's sweep-line ground truth, so a corrupted stream fails
/// loudly at emission time rather than at analysis time.
///
/// # Errors
///
/// Returns the first [`ObsError`](dvbp_obs::ObsError) hit (file
/// creation, serialization, write, or final flush).
pub fn emit_metrics_jsonl(path: &Path, runs: &[MetricsRun<'_>]) -> Result<u64, dvbp_obs::ObsError> {
    let mut emitter = JsonlEmitter::new(BufWriter::new(File::create(path)?));
    for run in runs {
        emitter.emit(&ObsEvent::Meta {
            algorithm: run.kind.name(),
            d: run.d,
            mu: run.mu,
            seed: run.seed,
        });
        let mut metrics = MetricsObserver::new();
        let mut both = (&mut emitter, &mut metrics);
        let packing = PackRequest::new(run.kind.clone())
            .observer(&mut both)
            .run(run.instance)
            .unwrap_or_else(|e| panic!("invalid instance in metrics run: {e}"));
        assert_eq!(
            metrics.max_concurrent_bins(),
            packing.max_concurrent_bins(),
            "{}: observer peak concurrency diverged from sweep line",
            run.kind.name()
        );
    }
    let lines = emitter.lines();
    emitter.finish()?;
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvbp_workloads::UniformParams;

    #[test]
    fn emitted_file_ingests_and_replays() {
        let params = UniformParams {
            dims: 2,
            items: 60,
            mu: 10,
            span: 50,
            bin_size: 100,
        };
        let inst = params.generate(7);
        let runs: Vec<MetricsRun<'_>> = [PolicyKind::FirstFit, PolicyKind::MoveToFront]
            .into_iter()
            .map(|kind| MetricsRun {
                kind,
                d: 2,
                mu: 10,
                seed: 7,
                instance: &inst,
            })
            .collect();
        let dir = std::env::temp_dir().join("dvbp_obs_emit_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.jsonl");
        let lines = emit_metrics_jsonl(&path, &runs).unwrap();
        assert!(lines > 0);

        let text = std::fs::read_to_string(&path).unwrap();
        let ingested = dvbp_analysis::obs_ingest::ingest_jsonl(&text).unwrap();
        assert_eq!(ingested.len(), 2);
        for run in &ingested {
            let packing = run.replay().unwrap();
            packing.verify(&inst).unwrap();
            let peak = run
                .open_bins_series()
                .iter()
                .map(|&(_, v)| v)
                .max()
                .unwrap();
            assert_eq!(peak as usize, packing.max_concurrent_bins());
        }
        std::fs::remove_file(&path).ok();
    }
}

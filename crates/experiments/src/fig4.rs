//! Figure 4: average-case performance of the seven Any Fit algorithms on
//! uniform random workloads (§7, Tables 2).
//!
//! For each grid point `(d, μ)` and each of `trials` seeds, the harness
//! generates a Table 2 instance, packs it with every algorithm, and
//! normalizes the cost by the Lemma 1(i) lower bound — exactly the
//! paper's methodology ("since the computation of the optimal packing is
//! NP-hard, we evaluate... comparing its packing cost to the lower bound
//! on OPT from Lemma 1(i)"). Means and standard deviations over trials
//! reproduce the paper's error-bar series.

use dvbp_analysis::stats::{Accumulator, Summary};
use dvbp_core::{PackRequest, PolicyKind};
use dvbp_offline::lb_load;
use dvbp_parallel::run_trials;
use dvbp_workloads::UniformParams;
use serde::{Deserialize, Serialize};

/// Configuration of a Figure 4 run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig4Config {
    /// Trials per grid point (paper: 1000).
    pub trials: usize,
    /// Dimension sweep (paper: `{1, 2, 5}`).
    pub dims: Vec<usize>,
    /// μ sweep (paper: `{1, 2, 5, 10, 100, 200}`).
    pub mus: Vec<u64>,
    /// Base RNG seed; trial `t` at grid point `(d, μ)` uses a seed
    /// derived from `(base_seed, d, μ, t)`.
    pub base_seed: u64,
    /// Items per instance (paper: 1000).
    pub items: usize,
    /// Span `T` (paper: 1000).
    pub span: u64,
    /// Bin size `B` (paper: 100).
    pub bin_size: u64,
}

impl Fig4Config {
    /// The paper's full configuration (18 grid points × 1000 trials).
    #[must_use]
    pub fn paper() -> Self {
        Fig4Config {
            trials: 1000,
            dims: dvbp_workloads::PAPER_DIMS.to_vec(),
            mus: dvbp_workloads::PAPER_MUS.to_vec(),
            base_seed: 0x5eed_2023,
            items: 1000,
            span: 1000,
            bin_size: 100,
        }
    }

    /// A reduced configuration for smoke tests and benches.
    #[must_use]
    pub fn quick() -> Self {
        Fig4Config {
            trials: 20,
            dims: vec![1, 2],
            mus: vec![2, 10],
            items: 200,
            span: 200,
            ..Self::paper()
        }
    }
}

/// One `(d, μ, algorithm)` cell of Figure 4.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cell {
    /// Dimensions.
    pub d: usize,
    /// Max duration μ.
    pub mu: u64,
    /// Algorithm display name.
    pub algorithm: String,
    /// Summary of `cost / LB` over the trials.
    pub ratio: Summary,
}

/// Per-trial seed derivation: decorrelates grid points and trials
/// without overlap (splitmix64 over the packed coordinates).
#[must_use]
pub fn trial_seed(base: u64, d: usize, mu: u64, trial: usize) -> u64 {
    let mut z = base
        .wrapping_add((d as u64) << 48)
        .wrapping_add(mu << 24)
        .wrapping_add(trial as u64)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs one grid point and returns the per-algorithm ratio summaries, in
/// [`PolicyKind::paper_suite`] order.
#[must_use]
pub fn run_grid_point(cfg: &Fig4Config, d: usize, mu: u64) -> Vec<Cell> {
    let params = UniformParams {
        dims: d,
        items: cfg.items,
        mu,
        span: cfg.span,
        bin_size: cfg.bin_size,
    };
    let n_algorithms = PolicyKind::paper_suite(0).len();
    // Collect per-trial ratio vectors in trial order, then fold
    // sequentially: floating-point accumulation order is fixed, so the
    // summaries are bitwise identical regardless of thread count.
    let per_trial = run_trials(cfg.trials, |trial| {
        let seed = trial_seed(cfg.base_seed, d, mu, trial);
        let instance = params.generate(seed);
        let lb = lb_load(&instance);
        // Random Fit's internal seed also varies per trial.
        PolicyKind::paper_suite(seed ^ 0xD1CE)
            .iter()
            .map(|kind| {
                dvbp_analysis::ratio(PackRequest::new(kind.clone()).cost(&instance).unwrap(), lb)
            })
            .collect::<Vec<f64>>()
    });
    let mut accs = vec![Accumulator::new(); n_algorithms];
    for ratios in per_trial {
        for (acc, r) in accs.iter_mut().zip(ratios) {
            acc.push(r);
        }
    }
    PolicyKind::paper_suite(0)
        .iter()
        .zip(accs)
        .map(|(kind, acc)| Cell {
            d,
            mu,
            algorithm: kind.name(),
            ratio: Summary::from(&acc),
        })
        .collect()
}

/// Runs the full grid; cells are ordered by `(d, μ, algorithm)`.
#[must_use]
pub fn run(cfg: &Fig4Config) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &d in &cfg.dims {
        for &mu in &cfg.mus {
            cells.extend(run_grid_point(cfg, d, mu));
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct_across_coordinates() {
        let mut seen = std::collections::HashSet::new();
        for d in [1usize, 2, 5] {
            for mu in [1u64, 200] {
                for t in 0..50 {
                    assert!(seen.insert(trial_seed(1, d, mu, t)));
                }
            }
        }
    }

    #[test]
    fn quick_grid_point_reproduces_ordering() {
        // Even at modest trial counts, the paper's headline ordering is
        // visible at μ=10, d=2: MTF ≤ FF(±) and Worst Fit is the worst.
        let cfg = Fig4Config {
            trials: 30,
            ..Fig4Config::quick()
        };
        let cells = run_grid_point(&cfg, 2, 10);
        assert_eq!(cells.len(), 7);
        let get = |name: &str| {
            cells
                .iter()
                .find(|c| c.algorithm == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .ratio
                .mean
        };
        let mtf = get("MoveToFront");
        let wf = get("WorstFit[Linf]");
        let nf = get("NextFit");
        assert!(mtf < wf, "MTF {mtf} should beat Worst Fit {wf}");
        assert!(mtf < nf, "MTF {mtf} should beat Next Fit {nf}");
        for c in &cells {
            assert!(c.ratio.mean >= 1.0, "{}: ratio below 1", c.algorithm);
            assert_eq!(c.ratio.count, 30);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = Fig4Config {
            trials: 10,
            items: 100,
            span: 100,
            ..Fig4Config::quick()
        };
        let a = run_grid_point(&cfg, 1, 5);
        let b = run_grid_point(&cfg, 1, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.ratio.mean, y.ratio.mean);
            assert_eq!(x.ratio.std_dev, y.ratio.std_dev);
        }
    }
}

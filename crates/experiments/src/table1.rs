//! Table 1: empirical verification of the competitive-ratio bounds.
//!
//! Two halves:
//!
//! * **Lower bounds** — run each §6 construction at growing `k` (or `n`),
//!   measure the targeted algorithm's cost against the *witness-certified*
//!   OPT upper bound, and report the measured ratio converging to the
//!   theorem's asymptote from below.
//! * **Upper bounds** — on batches of small random instances with exact
//!   OPT, report the worst observed `cost/OPT` per algorithm next to the
//!   theorem's formula value; no observation may exceed it.

use dvbp_core::{Instance, Item, PackRequest, PolicyKind};
use dvbp_dimvec::DimVec;
use dvbp_offline::{opt_exact, witness::assignment_cost};
use dvbp_parallel::run_trials;
use dvbp_workloads::adversarial::{AnyFitLb, MtfLb, NextFitLb};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// One lower-bound measurement row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LowerBoundRow {
    /// Which construction ("Thm5", "Thm6", "Thm8").
    pub family: String,
    /// Algorithm the construction targets.
    pub algorithm: String,
    /// Dimensions.
    pub d: usize,
    /// Duration ratio μ.
    pub mu: u64,
    /// Scale parameter (`k` or `n`).
    pub scale: usize,
    /// Measured online cost.
    pub online_cost: u128,
    /// Witness-certified upper bound on OPT.
    pub opt_upper: u128,
    /// Measured ratio `online_cost / opt_upper` (a certified CR lower
    /// bound for this algorithm).
    pub ratio: f64,
    /// The theorem's asymptotic target.
    pub asymptote: f64,
}

/// Runs the Theorem 5 family (targets every full-candidate Any Fit
/// algorithm; reported for each) at the given scales.
#[must_use]
pub fn thm5_rows(dims: &[usize], mu: u64, scales: &[usize], m: u64) -> Vec<LowerBoundRow> {
    let mut rows = Vec::new();
    for &d in dims {
        for &k in scales {
            let c = AnyFitLb { k, d, mu, m };
            let inst = c.instance();
            let opt_upper = assignment_cost(&inst, &c.witness())
                .expect("Thm 5 witness must be feasible")
                .min(c.opt_upper());
            for kind in PolicyKind::paper_suite(7)
                .into_iter()
                .filter(PolicyKind::is_full_candidate_any_fit)
            {
                let cost = PackRequest::new(kind.clone()).cost(&inst).unwrap();
                rows.push(LowerBoundRow {
                    family: "Thm5".into(),
                    algorithm: kind.name(),
                    d,
                    mu,
                    scale: k,
                    online_cost: cost,
                    opt_upper,
                    ratio: cost as f64 / opt_upper as f64,
                    asymptote: c.asymptote(),
                });
            }
        }
    }
    rows
}

/// Runs the Theorem 6 family (targets Next Fit).
#[must_use]
pub fn thm6_rows(dims: &[usize], mu: u64, scales: &[usize]) -> Vec<LowerBoundRow> {
    let mut rows = Vec::new();
    for &d in dims {
        for &k in scales {
            assert!(k % 2 == 0, "Thm 6 needs even k");
            let c = NextFitLb { k, d, mu };
            let inst = c.instance();
            let opt_upper = assignment_cost(&inst, &c.witness())
                .expect("Thm 6 witness must be feasible")
                .min(c.opt_upper());
            let cost = PackRequest::new(PolicyKind::NextFit).cost(&inst).unwrap();
            rows.push(LowerBoundRow {
                family: "Thm6".into(),
                algorithm: "NextFit".into(),
                d,
                mu,
                scale: k,
                online_cost: cost,
                opt_upper,
                ratio: cost as f64 / opt_upper as f64,
                asymptote: c.asymptote(),
            });
        }
    }
    rows
}

/// Runs the Theorem 8 family (targets Move To Front; also forces Next
/// Fit, reported for both).
#[must_use]
pub fn thm8_rows(mu: u64, scales: &[usize]) -> Vec<LowerBoundRow> {
    let mut rows = Vec::new();
    for &n in scales {
        let c = MtfLb { n, mu };
        let inst = c.instance();
        let opt_upper = assignment_cost(&inst, &c.witness())
            .expect("Thm 8 witness must be feasible")
            .min(c.opt_upper());
        for kind in [PolicyKind::MoveToFront, PolicyKind::NextFit] {
            let cost = PackRequest::new(kind.clone()).cost(&inst).unwrap();
            rows.push(LowerBoundRow {
                family: "Thm8".into(),
                algorithm: kind.name(),
                d: 1,
                mu,
                scale: n,
                online_cost: cost,
                opt_upper,
                ratio: cost as f64 / opt_upper as f64,
                asymptote: c.asymptote(),
            });
        }
    }
    rows
}

/// One upper-bound verification row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UpperBoundRow {
    /// Algorithm.
    pub algorithm: String,
    /// Dimensions.
    pub d: usize,
    /// Worst observed `cost / OPT_exact` over the batch.
    pub worst_ratio: f64,
    /// The theorem's bound evaluated at the batch's worst-case μ.
    pub bound_at_max_mu: f64,
    /// Number of instances checked.
    pub instances: usize,
    /// `true` iff no observation exceeded the bound (always expected).
    pub holds: bool,
}

/// The theorem upper-bound formula for a policy, as a function of μ and d.
#[must_use]
pub fn bound_formula(kind: &PolicyKind, mu: f64, d: f64) -> Option<f64> {
    match kind {
        PolicyKind::MoveToFront => Some((2.0 * mu + 1.0) * d + 1.0),
        PolicyKind::FirstFit => Some((mu + 2.0) * d + 1.0),
        PolicyKind::NextFit => Some(2.0 * mu * d + 1.0),
        _ => None, // Best Fit unbounded; others unproven.
    }
}

/// Checks the Theorems 2–4 upper bounds on `trials` random small
/// instances with exact OPT. Returns one row per bounded algorithm and
/// dimension.
///
/// # Panics
///
/// Panics if any observation exceeds its bound (that would falsify the
/// implementation, not the paper).
#[must_use]
pub fn upper_bound_rows(dims: &[usize], trials: usize, seed: u64) -> Vec<UpperBoundRow> {
    let kinds = [
        PolicyKind::MoveToFront,
        PolicyKind::FirstFit,
        PolicyKind::NextFit,
    ];
    let mut rows = Vec::new();
    for &d in dims {
        // Collect per-trial (ratio, mu) per algorithm.
        let per_trial = run_trials(trials, |t| {
            let inst = random_small_instance(d, seed ^ (t as u64).wrapping_mul(0x9E37));
            let opt = opt_exact(&inst, 28).expect("small instances solve exactly");
            let (max_d, min_d) = inst.mu().expect("non-empty");
            let mu = max_d as f64 / min_d as f64;
            kinds
                .iter()
                .map(|kind| {
                    let cost = PackRequest::new(kind.clone()).cost(&inst).unwrap();
                    (cost as f64 / opt as f64, mu)
                })
                .collect::<Vec<(f64, f64)>>()
        });
        for (ki, kind) in kinds.iter().enumerate() {
            let mut worst = 0.0f64;
            let mut max_mu = 1.0f64;
            let mut holds = true;
            for trial in &per_trial {
                let (ratio, mu) = trial[ki];
                let bound = bound_formula(kind, mu, d as f64).expect("bounded policies only");
                if ratio > bound {
                    holds = false;
                }
                if ratio > worst {
                    worst = ratio;
                }
                if mu > max_mu {
                    max_mu = mu;
                }
            }
            assert!(holds, "{} exceeded its CR bound", kind.name());
            rows.push(UpperBoundRow {
                algorithm: kind.name(),
                d,
                worst_ratio: worst,
                bound_at_max_mu: bound_formula(kind, max_mu, d as f64).expect("bounded"),
                instances: trials,
                holds,
            });
        }
    }
    rows
}

/// A random instance small enough for exact OPT (≤ 12 items, short span).
fn random_small_instance(d: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let cap = 10u64;
    let n = rng.random_range(2..=12);
    let items = (0..n)
        .map(|_| {
            let size = DimVec::from_fn(d, |_| rng.random_range(1..=cap));
            let a = rng.random_range(0..10u64);
            let dur = rng.random_range(1..=6u64);
            Item::new(size, a, a + dur)
        })
        .collect();
    Instance::new(DimVec::splat(d, cap), items).expect("valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thm5_ratios_increase_with_k_and_stay_below_asymptote() {
        let rows = thm5_rows(&[2], 3, &[2, 8], 16);
        let ff: Vec<&LowerBoundRow> = rows.iter().filter(|r| r.algorithm == "FirstFit").collect();
        assert_eq!(ff.len(), 2);
        assert!(ff[1].ratio > ff[0].ratio);
        for r in &rows {
            assert!(r.ratio <= r.asymptote * 1.001, "{r:?}");
            assert!(r.ratio >= 1.0);
        }
    }

    #[test]
    fn thm6_ratio_tracks_formula() {
        let rows = thm6_rows(&[1, 2], 4, &[4, 20]);
        for r in &rows {
            assert!(r.ratio <= r.asymptote);
            // Ratio must at least reach the guaranteed closed form.
            let c = NextFitLb {
                k: r.scale,
                d: r.d,
                mu: r.mu,
            };
            assert!(r.ratio + 1e-9 >= c.guaranteed_ratio());
        }
    }

    #[test]
    fn thm8_mtf_hits_exact_cost() {
        let rows = thm8_rows(6, &[4]);
        let mtf = rows.iter().find(|r| r.algorithm == "MoveToFront").unwrap();
        assert_eq!(mtf.online_cost, 2 * 4 * 6);
    }

    #[test]
    fn upper_bounds_hold_on_random_batch() {
        let rows = upper_bound_rows(&[1, 2], 40, 99);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.holds);
            assert!(r.worst_ratio >= 1.0);
            assert!(r.worst_ratio <= r.bound_at_max_mu);
        }
    }

    #[test]
    fn bound_formulas() {
        assert_eq!(bound_formula(&PolicyKind::MoveToFront, 1.0, 1.0), Some(4.0));
        assert_eq!(bound_formula(&PolicyKind::FirstFit, 1.0, 1.0), Some(4.0));
        assert_eq!(bound_formula(&PolicyKind::NextFit, 1.0, 1.0), Some(3.0));
        assert_eq!(
            bound_formula(&PolicyKind::BestFit(dvbp_core::LoadMeasure::Linf), 1.0, 1.0),
            None
        );
    }
}

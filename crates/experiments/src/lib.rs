//! Experiment harness: the logic behind every table/figure binary.
//!
//! Each paper artifact has a binary in `src/bin/` that parses a few
//! flags, calls into this library, prints the paper-style rows, and
//! optionally dumps machine-readable JSON. The heavy lifting lives here
//! so the Criterion benches can reuse it.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig4_average_case` | Figure 4 (+ Table 2 parameters) |
//! | `table1_bounds` | Table 1 lower-bound constructions |
//! | `fig1_mtf_decomposition` | Figure 1 |
//! | `fig2_ff_decomposition` | Figure 2 |
//! | `fig3_anyfit_lb_trace` | Figure 3 |
//! | `xp_bestfit_loads` | X1: Best Fit load-measure ablation |
//! | `xp_clairvoyant` | X2: clairvoyant duration classes |
//! | `xp_predictions` | X3: noisy-prediction robustness |
//! | `xp_distributions` | X4: distribution sensitivity |

pub mod cli;
pub mod fig4;
pub mod obs_emit;
pub mod table1;

use serde::Serialize;
use std::path::Path;

/// Writes any serializable result as pretty JSON to `path`.
///
/// # Errors
///
/// Propagates I/O and serialization failures.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> Result<(), String> {
    let json = serde_json::to_string_pretty(value).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("writing {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_json_roundtrip() {
        let dir = std::env::temp_dir().join("dvbp_test_json");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.json");
        write_json(&path, &vec![1u32, 2, 3]).unwrap();
        let back: Vec<u32> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }
}

//! Deterministic parallel trial runner for DVBP experiments.
//!
//! The online packing algorithms are inherently sequential, but the
//! experiments are embarrassingly parallel across *trials* (Figure 4 runs
//! `m = 1000` seeded instances per grid point) and across grid points.
//! This crate runs a seeded closure over trial indices on scoped std
//! threads with dynamic work stealing via an atomic cursor.
//!
//! Determinism contract: the closure receives the **trial index**, derives
//! its own seed from it, and returns a value; results are written to the
//! trial's slot, so the output vector is identical regardless of thread
//! count or scheduling. (This is the guides' "no data races, same results
//! as sequential" discipline: parallelism only over independent trials.)

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads used by [`run_trials`]: the machine's
/// available parallelism, capped by the trial count.
#[must_use]
pub fn default_threads(trials: usize) -> NonZeroUsize {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    NonZeroUsize::new(hw.min(trials).max(1)).expect("max(1) is nonzero")
}

/// Runs `f(trial_index)` for every index in `0..trials` on `threads`
/// workers and returns the results in index order.
///
/// `f` must derive all randomness from the trial index (e.g.
/// `StdRng::seed_from_u64(base ^ index)`), which makes the output
/// independent of the parallel schedule.
///
/// # Panics
///
/// Propagates the first panic raised by `f`.
#[must_use]
pub fn run_trials_on<T, F>(trials: usize, threads: NonZeroUsize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if trials == 0 {
        return Vec::new();
    }
    let threads = threads.get().min(trials);
    if threads == 1 {
        return (0..trials).map(f).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = (0..trials).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("slot lock") = Some(value);
            });
        }
        // Implicit joins at scope exit re-raise any worker panic.
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every slot filled")
        })
        .collect()
}

/// [`run_trials_on`] with [`default_threads`].
#[must_use]
pub fn run_trials<T, F>(trials: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_trials_on(trials, default_threads(trials), f)
}

/// Runs trials in parallel and folds the results into an accumulator via
/// `fold`, merging per-thread partials with `merge`. Avoids materializing
/// all trial outputs when only an aggregate is needed.
///
/// `fold` is applied in an unspecified trial order within each worker, so
/// the accumulator must be order-insensitive (e.g. Welford merge, sums,
/// min/max) for deterministic-in-distribution results; exact bitwise
/// determinism additionally requires an associative-commutative fold.
#[must_use]
pub fn run_fold<T, A, F, Fold, Merge>(
    trials: usize,
    threads: NonZeroUsize,
    init: impl Fn() -> A + Sync,
    f: F,
    fold: Fold,
    merge: Merge,
) -> A
where
    T: Send,
    A: Send,
    F: Fn(usize) -> T + Sync,
    Fold: Fn(&mut A, T) + Sync,
    Merge: Fn(&mut A, A),
{
    if trials == 0 {
        return init();
    }
    let threads = threads.get().min(trials);
    if threads == 1 {
        let mut acc = init();
        for i in 0..trials {
            fold(&mut acc, f(i));
        }
        return acc;
    }
    let cursor = AtomicUsize::new(0);
    let partials: Vec<Mutex<Option<A>>> = (0..threads).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let partials = &partials;
            let cursor = &cursor;
            let init = &init;
            let f = &f;
            let fold = &fold;
            scope.spawn(move || {
                let mut acc = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= trials {
                        break;
                    }
                    fold(&mut acc, f(i));
                }
                *partials[w].lock().expect("partial lock") = Some(acc);
            });
        }
    });
    let mut result: Option<A> = None;
    for p in partials {
        if let Some(a) = p.into_inner().expect("partial lock") {
            match &mut result {
                None => result = Some(a),
                Some(r) => merge(r, a),
            }
        }
    }
    result.unwrap_or_else(init)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_index_order() {
        let out = run_trials(100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        let f = |i: usize| {
            // A little CPU noise to encourage interleaving.
            let mut x = i as u64 + 1;
            for _ in 0..50 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            x
        };
        let one = run_trials_on(200, NonZeroUsize::new(1).unwrap(), f);
        let four = run_trials_on(200, NonZeroUsize::new(4).unwrap(), f);
        let many = run_trials_on(200, NonZeroUsize::new(16).unwrap(), f);
        assert_eq!(one, four);
        assert_eq!(one, many);
    }

    #[test]
    fn zero_trials() {
        let out: Vec<u32> = run_trials(0, |_| unreachable!("no trials"));
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_trials() {
        let out = run_trials_on(3, NonZeroUsize::new(64).unwrap(), |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn fold_sums_match_sequential() {
        let total = run_fold(
            1000,
            NonZeroUsize::new(8).unwrap(),
            || 0u64,
            |i| i as u64,
            |acc, x| *acc += x,
            |acc, other| *acc += other,
        );
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn fold_with_one_thread() {
        let total = run_fold(
            10,
            NonZeroUsize::new(1).unwrap(),
            || 0u64,
            |i| i as u64,
            |acc, x| *acc += x,
            |acc, other| *acc += other,
        );
        assert_eq!(total, 45);
    }

    #[test]
    fn fold_zero_trials_returns_init() {
        let total = run_fold(
            0,
            NonZeroUsize::new(4).unwrap(),
            || 7u64,
            |_i| 1u64,
            |acc, x| *acc += x,
            |acc, other| *acc += other,
        );
        assert_eq!(total, 7);
    }

    #[test]
    fn default_threads_bounds() {
        assert_eq!(default_threads(0).get(), 1);
        assert_eq!(default_threads(1).get(), 1);
        assert!(default_threads(10_000).get() >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _ = run_trials_on(10, NonZeroUsize::new(4).unwrap(), |i| {
            assert!(i != 5, "boom");
            i
        });
    }
}

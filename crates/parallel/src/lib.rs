//! Deterministic parallel trial runner for DVBP experiments.
//!
//! The online packing algorithms are inherently sequential, but the
//! experiments are embarrassingly parallel across *trials* (Figure 4 runs
//! `m = 1000` seeded instances per grid point) and across grid points.
//! This crate runs a seeded closure over trial indices on scoped std
//! threads. [`run_trials_on`] statically splits the output buffer into
//! per-worker `&mut` chunks, so workers write results without any locks
//! or atomics on the hot path; [`run_fold`] uses an atomic cursor for
//! dynamic balancing since it only merges order-insensitive partials.
//!
//! Determinism contract: the closure receives the **trial index**, derives
//! its own seed from it, and returns a value; results are written to the
//! trial's slot, so the output vector is identical regardless of thread
//! count or scheduling. (This is the guides' "no data races, same results
//! as sequential" discipline: parallelism only over independent trials.)

use std::mem::MaybeUninit;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads used by [`run_trials`]: the machine's
/// available parallelism, capped by the trial count.
#[must_use]
pub fn default_threads(trials: usize) -> NonZeroUsize {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    NonZeroUsize::new(hw.min(trials).max(1)).expect("max(1) is nonzero")
}

/// Runs `f(trial_index)` for every index in `0..trials` on `threads`
/// workers and returns the results in index order.
///
/// `f` must derive all randomness from the trial index (e.g.
/// `StdRng::seed_from_u64(base ^ index)`), which makes the output
/// independent of the parallel schedule.
///
/// The result vector's spare capacity is split into one contiguous
/// `&mut [MaybeUninit<T>]` chunk per worker before the threads start, so
/// each worker writes its trials' results directly into the output with
/// no locks, atomics, or per-slot `Option` wrappers.
///
/// # Panics
///
/// Propagates the first panic raised by `f`. On that path the results
/// already produced by other workers are leaked (never dropped), which is
/// safe; the buffer itself is still freed.
#[must_use]
pub fn run_trials_on<T, F>(trials: usize, threads: NonZeroUsize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if trials == 0 {
        return Vec::new();
    }
    let threads = threads.get().min(trials);
    if threads == 1 {
        return (0..trials).map(f).collect();
    }

    let mut slots: Vec<T> = Vec::with_capacity(trials);
    let spare: &mut [MaybeUninit<T>] = &mut slots.spare_capacity_mut()[..trials];
    std::thread::scope(|scope| {
        // Distribute trials evenly: the first `trials % threads` workers
        // take one extra. Contiguous ranges keep each worker's seeds (and
        // caches) local while the static split stays schedule-independent.
        let base = trials / threads;
        let extra = trials % threads;
        let mut rest = spare;
        let mut start = 0usize;
        for w in 0..threads {
            let len = base + usize::from(w < extra);
            let (chunk, tail) = rest.split_at_mut(len);
            rest = tail;
            let f = &f;
            scope.spawn(move || {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    slot.write(f(start + k));
                }
            });
            start += len;
        }
        // Implicit joins at scope exit re-raise any worker panic.
    });
    // SAFETY: the chunks partition `spare[..trials]` exactly and every
    // worker wrote each slot of its chunk; a panicking worker would have
    // propagated out of the scope above before reaching this point.
    unsafe { slots.set_len(trials) };
    slots
}

/// [`run_trials_on`] with [`default_threads`].
#[must_use]
pub fn run_trials<T, F>(trials: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_trials_on(trials, default_threads(trials), f)
}

/// Runs trials in parallel and folds the results into an accumulator via
/// `fold`, merging per-thread partials with `merge`. Avoids materializing
/// all trial outputs when only an aggregate is needed.
///
/// `fold` is applied in an unspecified trial order within each worker, so
/// the accumulator must be order-insensitive (e.g. Welford merge, sums,
/// min/max) for deterministic-in-distribution results; exact bitwise
/// determinism additionally requires an associative-commutative fold.
#[must_use]
pub fn run_fold<T, A, F, Fold, Merge>(
    trials: usize,
    threads: NonZeroUsize,
    init: impl Fn() -> A + Sync,
    f: F,
    fold: Fold,
    merge: Merge,
) -> A
where
    T: Send,
    A: Send,
    F: Fn(usize) -> T + Sync,
    Fold: Fn(&mut A, T) + Sync,
    Merge: Fn(&mut A, A),
{
    if trials == 0 {
        return init();
    }
    let threads = threads.get().min(trials);
    if threads == 1 {
        let mut acc = init();
        for i in 0..trials {
            fold(&mut acc, f(i));
        }
        return acc;
    }
    let cursor = AtomicUsize::new(0);
    let partials: Vec<Mutex<Option<A>>> = (0..threads).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let partials = &partials;
            let cursor = &cursor;
            let init = &init;
            let f = &f;
            let fold = &fold;
            scope.spawn(move || {
                let mut acc = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= trials {
                        break;
                    }
                    fold(&mut acc, f(i));
                }
                *partials[w].lock().expect("partial lock") = Some(acc);
            });
        }
    });
    let mut result: Option<A> = None;
    for p in partials {
        if let Some(a) = p.into_inner().expect("partial lock") {
            match &mut result {
                None => result = Some(a),
                Some(r) => merge(r, a),
            }
        }
    }
    result.unwrap_or_else(init)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_index_order() {
        let out = run_trials(100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        let f = |i: usize| {
            // A little CPU noise to encourage interleaving.
            let mut x = i as u64 + 1;
            for _ in 0..50 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            x
        };
        let one = run_trials_on(200, NonZeroUsize::new(1).unwrap(), f);
        let four = run_trials_on(200, NonZeroUsize::new(4).unwrap(), f);
        let many = run_trials_on(200, NonZeroUsize::new(16).unwrap(), f);
        assert_eq!(one, four);
        assert_eq!(one, many);
    }

    #[test]
    fn zero_trials() {
        let out: Vec<u32> = run_trials(0, |_| unreachable!("no trials"));
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_trials() {
        let out = run_trials_on(3, NonZeroUsize::new(64).unwrap(), |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn fold_sums_match_sequential() {
        let total = run_fold(
            1000,
            NonZeroUsize::new(8).unwrap(),
            || 0u64,
            |i| i as u64,
            |acc, x| *acc += x,
            |acc, other| *acc += other,
        );
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn fold_with_one_thread() {
        let total = run_fold(
            10,
            NonZeroUsize::new(1).unwrap(),
            || 0u64,
            |i| i as u64,
            |acc, x| *acc += x,
            |acc, other| *acc += other,
        );
        assert_eq!(total, 45);
    }

    #[test]
    fn fold_zero_trials_returns_init() {
        let total = run_fold(
            0,
            NonZeroUsize::new(4).unwrap(),
            || 7u64,
            |_i| 1u64,
            |acc, x| *acc += x,
            |acc, other| *acc += other,
        );
        assert_eq!(total, 7);
    }

    #[test]
    fn default_threads_bounds() {
        assert_eq!(default_threads(0).get(), 1);
        assert_eq!(default_threads(1).get(), 1);
        assert!(default_threads(10_000).get() >= 1);
    }

    #[test]
    fn uneven_chunking_covers_every_trial() {
        // trials not divisible by threads: 7 over 3 workers → 3/2/2.
        for (trials, threads) in [(7, 3), (5, 5), (9, 2), (16, 5)] {
            let out = run_trials_on(trials, NonZeroUsize::new(threads).unwrap(), |i| i);
            assert_eq!(out, (0..trials).collect::<Vec<_>>(), "{trials}/{threads}");
        }
    }

    #[test]
    fn heap_results_survive_the_unsafe_handoff() {
        // String results exercise drop/ownership through the MaybeUninit
        // buffer (miri-style sanity: no double drops, no leaks on success).
        let out = run_trials_on(50, NonZeroUsize::new(4).unwrap(), |i| format!("trial-{i}"));
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s, &format!("trial-{i}"));
        }
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _ = run_trials_on(10, NonZeroUsize::new(4).unwrap(), |i| {
            assert!(i != 5, "boom");
            i
        });
    }
}

//! Packing throughput per policy (items/second) across sequence length
//! and dimensionality — the X6 scaling study. The interesting contrasts:
//! Next Fit is O(1) per arrival while the scanning policies are
//! O(open bins); Best/Worst Fit pay the load-measure evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dvbp_bench::bench_instance;
use dvbp_core::{PackRequest, PolicyKind};
use std::hint::black_box;

fn bench_by_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_by_n");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for &n in &[100usize, 400, 1600] {
        let inst = bench_instance(2, n, 50, 7);
        group.throughput(Throughput::Elements(n as u64));
        for kind in PolicyKind::paper_suite(7) {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &inst, |b, inst| {
                b.iter(|| black_box(PackRequest::new(kind.clone()).run(inst).unwrap().cost()))
            });
        }
    }
    group.finish();
}

fn bench_by_d(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_by_d");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for &d in &[1usize, 2, 5, 8, 16] {
        let inst = bench_instance(d, 400, 50, 11);
        group.throughput(Throughput::Elements(400));
        for kind in [
            PolicyKind::MoveToFront,
            PolicyKind::FirstFit,
            PolicyKind::BestFit(dvbp_core::LoadMeasure::Linf),
        ] {
            group.bench_with_input(BenchmarkId::new(kind.name(), d), &inst, |b, inst| {
                b.iter(|| black_box(PackRequest::new(kind.clone()).run(inst).unwrap().cost()))
            });
        }
    }
    group.finish();
}

/// The segment-tree First Fit vs the scanning First Fit at growing open-bin
/// counts (1-D; identical placements, different query structure).
fn bench_indexed_ff(c: &mut Criterion) {
    let mut group = c.benchmark_group("indexed_first_fit");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for &n in &[400usize, 1600, 6400] {
        // Long durations keep many bins open simultaneously.
        let inst = bench_instance(1, n, (n as u64) / 4, 13);
        group.throughput(Throughput::Elements(n as u64));
        for kind in [PolicyKind::FirstFit, PolicyKind::IndexedFirstFit] {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &inst, |b, inst| {
                b.iter(|| black_box(PackRequest::new(kind.clone()).run(inst).unwrap().cost()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_by_n, bench_by_d, bench_indexed_ff);
criterion_main!(benches);

//! Criterion bench for the Table 1 lower-bound machinery: constructing a
//! §6 adversarial family, packing it with its target algorithm, and
//! certifying the OPT witness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvbp_core::{PackRequest, PolicyKind};
use dvbp_offline::witness::assignment_cost;
use dvbp_workloads::adversarial::{AnyFitLb, MtfLb, NextFitLb};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for &k in &[4usize, 16] {
        group.bench_with_input(BenchmarkId::new("thm5_full", k), &k, |b, &k| {
            b.iter(|| {
                let fam = AnyFitLb {
                    k,
                    d: 2,
                    mu: 8,
                    m: 32,
                };
                let inst = fam.instance();
                let cost = PackRequest::new(PolicyKind::FirstFit)
                    .run(&inst)
                    .unwrap()
                    .cost();
                let opt = assignment_cost(&inst, &fam.witness()).unwrap();
                black_box(cost as f64 / opt as f64)
            });
        });
        group.bench_with_input(BenchmarkId::new("thm6_full", k), &k, |b, &k| {
            b.iter(|| {
                let fam = NextFitLb { k, d: 2, mu: 8 };
                let inst = fam.instance();
                let cost = PackRequest::new(PolicyKind::NextFit)
                    .run(&inst)
                    .unwrap()
                    .cost();
                let opt = assignment_cost(&inst, &fam.witness()).unwrap();
                black_box(cost as f64 / opt as f64)
            });
        });
        group.bench_with_input(BenchmarkId::new("thm8_full", k), &k, |b, &k| {
            b.iter(|| {
                let fam = MtfLb { n: k, mu: 8 };
                let inst = fam.instance();
                let cost = PackRequest::new(PolicyKind::MoveToFront)
                    .run(&inst)
                    .unwrap()
                    .cost();
                let opt = assignment_cost(&inst, &fam.witness()).unwrap();
                black_box(cost as f64 / opt as f64)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

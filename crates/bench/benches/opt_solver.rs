//! Offline machinery benches: the exact branch-and-bound VBP solver vs
//! FFD, and the OPT integral over a full instance — quantifying the
//! design decision to sandwich large slices instead of solving exactly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvbp_bench::bench_instance;
use dvbp_dimvec::DimVec;
use dvbp_offline::{ffd_count, lb_load, opt_bounds, pack_count};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn random_sizes(n: usize, d: usize, seed: u64) -> Vec<DimVec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| DimVec::from_fn(d, |_| rng.random_range(1..=10)))
        .collect()
}

fn bench_static(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_vbp");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    let cap = DimVec::splat(2, 10);
    for &n in &[8usize, 14, 20] {
        let sizes = random_sizes(n, 2, n as u64);
        group.bench_with_input(BenchmarkId::new("exact", n), &sizes, |b, sizes| {
            b.iter(|| black_box(pack_count(sizes, &cap, 28)))
        });
        group.bench_with_input(BenchmarkId::new("ffd", n), &sizes, |b, sizes| {
            b.iter(|| black_box(ffd_count(sizes, &cap)))
        });
    }
    group.finish();
}

fn bench_instance_level(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_machinery");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    let inst = bench_instance(2, 300, 20, 5);
    group.bench_function("lb_load", |b| b.iter(|| black_box(lb_load(&inst))));
    group.bench_function("opt_bounds_limit12", |b| {
        b.iter(|| black_box(opt_bounds(&inst, 12)))
    });
    group.finish();
}

criterion_group!(benches, bench_static, bench_instance_level);
criterion_main!(benches);

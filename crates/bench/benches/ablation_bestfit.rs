//! X1 ablation bench: Best Fit under the §2.2 load measures. `L∞` uses
//! exact cross-multiplied comparisons; `L1`/`L2`/`Lp` go through
//! floating-point norms — this bench quantifies the cost of each.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvbp_bench::bench_instance;
use dvbp_core::{LoadMeasure, PackRequest, PolicyKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("bestfit_load_measures");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    let inst = bench_instance(5, 500, 50, 3);
    for measure in [
        LoadMeasure::Linf,
        LoadMeasure::L1,
        LoadMeasure::L2,
        LoadMeasure::Lp(4),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(measure.to_string()),
            &inst,
            |b, inst| {
                let kind = PolicyKind::BestFit(measure);
                b.iter(|| black_box(PackRequest::new(kind.clone()).run(inst).unwrap().cost()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

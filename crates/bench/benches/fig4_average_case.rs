//! Criterion bench for the Figure 4 harness: full evaluation of one
//! grid point (generate + pack with all 7 algorithms + Lemma 1(i) LB)
//! at reduced scale, across the paper's dimension sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvbp_core::{PackRequest, PolicyKind};
use dvbp_offline::lb_load;
use dvbp_workloads::UniformParams;
use std::hint::black_box;

fn grid_point(d: usize, mu: u64, seed: u64) -> f64 {
    let params = UniformParams {
        dims: d,
        items: 300,
        mu,
        span: 300,
        bin_size: 100,
    };
    let inst = params.generate(seed);
    let lb = lb_load(&inst) as f64;
    PolicyKind::paper_suite(seed)
        .iter()
        .map(|k| PackRequest::new(k.clone()).run(&inst).unwrap().cost() as f64 / lb)
        .sum()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_grid_point");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for &d in &dvbp_workloads::PAPER_DIMS {
        for &mu in &[10u64, 100] {
            group.bench_with_input(
                BenchmarkId::new(format!("d{d}"), mu),
                &(d, mu),
                |b, &(d, mu)| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        black_box(grid_point(d, mu, seed))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Shared fixtures for the Criterion benchmarks.
//!
//! Each paper artifact has a bench target mirroring its experiment
//! binary at reduced scale, plus throughput/ablation benches for the
//! design choices called out in DESIGN.md:
//!
//! * `fig4_average_case` — grid-point evaluation cost (workload
//!   generation + 7 packings + LB).
//! * `table1_bounds` — adversarial construction, packing, and witness
//!   certification.
//! * `throughput` — packing throughput per policy across `n` and `d`.
//! * `ablation_bestfit` — Best Fit under the §2.2 load measures.
//! * `opt_solver` — exact branch-and-bound vs FFD on static VBP.

use dvbp_core::Instance;
use dvbp_workloads::UniformParams;

pub mod seed_engine;

/// A standard benchmark instance: Table 2 shape scaled to `n` items.
#[must_use]
pub fn bench_instance(d: usize, n: usize, mu: u64, seed: u64) -> Instance {
    let span = (n as u64).max(mu + 1);
    UniformParams {
        dims: d,
        items: n,
        mu,
        span,
        bin_size: 100,
    }
    .generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_valid_and_sized() {
        let inst = bench_instance(3, 250, 20, 9);
        assert_eq!(inst.len(), 250);
        assert_eq!(inst.dim(), 3);
        inst.validate().unwrap();
    }
}

//! A faithful copy of the *seed* engine's packing loop, kept as the
//! "before" twin for `BENCH_throughput.json`.
//!
//! The optimized engine in `dvbp-core` replaced this loop wholesale (flat
//! SoA load arena, reusable allocations, fit-index candidate enumeration,
//! optional trace). To keep before/after numbers honest and reproducible
//! on the same machine, this module preserves the seed's per-arrival cost
//! profile exactly:
//!
//! * array-of-structs bin state with a heap-backed [`DimVec`] load per bin
//!   and a per-bin `Vec<usize>` item list, all allocated fresh each run;
//! * the decision trace always recorded (the seed had no cost-only mode);
//! * O(m·d) scanning bin selection over all open bins, with Best/Worst
//!   Fit re-deriving the incumbent's measure on every comparison — the
//!   seed's pairwise `cmp_loads` tournament.
//!
//! Placements are identical to the optimized engine's (the seed *is* the
//! conformance reference behavior), which `tests/seed_twin.rs` checks; the
//! bench artifact additionally records each run's cost so divergence would
//! show up as a cost mismatch across variants of the same grid point.

use dvbp_core::{Instance, Item, LoadMeasure};
use dvbp_dimvec::DimVec;
use dvbp_sim::timeline::{Event, OnlineTimeline};
use dvbp_sim::{Cost, Time};
use std::cmp::Ordering;

/// Seed-engine bin selection rules (the scanning Any-Fit family).
#[derive(Clone, Copy, Debug)]
pub enum SeedSelect {
    /// Lowest-id open bin that fits.
    FirstFit,
    /// Most-loaded open bin that fits under the measure.
    BestFit(LoadMeasure),
    /// Least-loaded open bin that fits under the measure.
    WorstFit(LoadMeasure),
    /// Highest-id open bin that fits.
    LastFit,
}

struct BinState {
    load: DimVec,
    active: usize,
    opened: Time,
    closed: Option<Time>,
    items: Vec<usize>,
}

/// The outputs the throughput bench records per run.
#[derive(Debug)]
pub struct SeedRun {
    /// MinUsageTime objective: total bin usage time.
    pub cost: Cost,
    /// High-water mark of simultaneously open bins.
    pub max_concurrent_bins: usize,
    /// `assignment[i]` = bin index of item `i`.
    pub assignment: Vec<usize>,
}

fn fits(state: &BinState, size: &DimVec, cap: &DimVec) -> bool {
    state.load.fits_with(size, cap)
}

/// Seed scanning selection: returns the chosen open bin, if any fits.
fn choose(
    bins: &[BinState],
    open: &[usize],
    size: &DimVec,
    cap: &DimVec,
    select: SeedSelect,
) -> Option<usize> {
    match select {
        SeedSelect::FirstFit => open.iter().copied().find(|&b| fits(&bins[b], size, cap)),
        SeedSelect::LastFit => open
            .iter()
            .rev()
            .copied()
            .find(|&b| fits(&bins[b], size, cap)),
        SeedSelect::BestFit(m) => tournament(bins, open, size, cap, m, Ordering::Greater),
        SeedSelect::WorstFit(m) => tournament(bins, open, size, cap, m, Ordering::Less),
    }
}

/// The seed's pairwise tournament: `cmp_loads` re-derives both operands'
/// measures on every comparison (no key caching).
fn tournament(
    bins: &[BinState],
    open: &[usize],
    size: &DimVec,
    cap: &DimVec,
    measure: LoadMeasure,
    want: Ordering,
) -> Option<usize> {
    let mut best: Option<usize> = None;
    for &b in open {
        if !fits(&bins[b], size, cap) {
            continue;
        }
        best = Some(match best {
            None => b,
            Some(cur) => {
                let ord = measure.cmp_loads(
                    bins[b].load.as_slice(),
                    bins[cur].load.as_slice(),
                    cap.as_slice(),
                );
                if ord == want {
                    b
                } else {
                    cur
                }
            }
        });
    }
    best
}

/// Runs the seed packing loop over `instance`.
///
/// # Panics
///
/// Panics if the instance is invalid (same contract as the seed `pack`).
#[must_use]
pub fn pack_seed(instance: &Instance, select: SeedSelect) -> SeedRun {
    instance.validate().expect("invalid instance");
    let cap = &instance.capacity;

    let timeline = OnlineTimeline::build(&instance.intervals());
    let mut bins: Vec<BinState> = Vec::new();
    let mut open: Vec<usize> = Vec::new();
    let mut assignment: Vec<Option<usize>> = vec![None; instance.len()];
    // The seed recorded a full trace unconditionally; a (time, bin, kind)
    // tuple preserves that per-event push.
    let mut trace: Vec<(Time, usize, bool)> = Vec::with_capacity(instance.len() * 2);
    let mut open_now = 0usize;
    let mut max_open = 0usize;

    for ev in timeline.events() {
        match *ev {
            Event::Departure { time, item } => {
                let bin = assignment[item].expect("departure before arrival");
                let state = &mut bins[bin];
                state.load.sub_assign(&instance.items[item].size);
                state.active -= 1;
                if state.active == 0 {
                    state.closed = Some(time);
                    let idx = open.binary_search(&bin).expect("closing a non-open bin");
                    open.remove(idx);
                    trace.push((time, bin, false));
                    open_now -= 1;
                }
            }
            Event::Arrival { time, item } => {
                let item_ref: &Item = &instance.items[item];
                let bin = match choose(&bins, &open, &item_ref.size, cap, select) {
                    Some(b) => b,
                    None => {
                        let b = bins.len();
                        bins.push(BinState {
                            load: DimVec::zeros(instance.dim()),
                            active: 0,
                            opened: time,
                            closed: None,
                            items: Vec::new(),
                        });
                        open.push(b);
                        open_now += 1;
                        max_open = max_open.max(open_now);
                        b
                    }
                };
                let state = &mut bins[bin];
                state.load.add_assign(&item_ref.size);
                state.active += 1;
                state.items.push(item);
                assignment[item] = Some(bin);
                trace.push((time, bin, true));
            }
        }
    }

    let cost = bins
        .iter()
        .map(|b| Cost::from(b.closed.expect("bin never closed") - b.opened))
        .sum();
    std::hint::black_box(&trace);
    SeedRun {
        cost,
        max_concurrent_bins: max_open,
        assignment: assignment
            .into_iter()
            .map(|b| b.expect("item never arrived"))
            .collect(),
    }
}

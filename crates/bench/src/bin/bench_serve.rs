//! Serve-stack latency benchmark: an open-loop NDJSON load generator
//! driven against a real, WAL-backed `dvbp-serve` service over loopback
//! TCP, emitting `BENCH_serve.json`.
//!
//! Each config boots a fresh service in-process (real listener, real
//! file WAL with real fsyncs under a scratch directory), opens `K`
//! concurrent connections, and paces requests open-loop at a target
//! aggregate rate: request `i` of the global schedule is due at
//! `start + i/rate`, regardless of how long earlier responses took, so
//! queueing delay shows up in the measured latency instead of silently
//! throttling the offered load. Every worker arrives a block of items
//! and then departs them, so both mutating op kinds are on the wire.
//!
//! Two latency views per config, cross-checked against each other:
//!
//! * **client-side** — exact RTT percentiles over every request
//!   (send to response line), computed from the raw sample;
//! * **server-side** — per-stage quantiles scraped from `/metrics`
//!   (`dvbp_serve_stage_latency_ns`), where the sum of the stage
//!   `_sum`s must account for (almost all of) the end-to-end `_sum`.
//!
//! `--check` turns the cross-checks into hard failures — the CI
//! latency-smoke job runs `bench_serve --scale smoke --check
//! --slow-us 1` and also requires the flight recorder's slow ring to be
//! non-empty for the fsync-per-event configs.
//!
//! Usage:
//!   bench_serve [--out FILE] [--scale full|smoke] [--check]
//!               [--slow-us US]

use dvbp_core::{PolicyKind, RepackPolicy, TimeMode, TraceMode};
use dvbp_dimvec::DimVec;
use dvbp_obs::{LogHistogram, Stage, SyncPolicy};
use dvbp_serve::router::RouterKind;
use dvbp_serve::server::{serve, ServeState};
use dvbp_serve::spans::parse_histograms;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency quantiles in nanoseconds (exact for the client-side sample,
/// bucket upper bounds for scraped histograms).
#[derive(Debug, Serialize, Deserialize)]
struct Quantiles {
    count: u64,
    mean_ns: f64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    max_ns: u64,
}

impl Quantiles {
    /// Exact quantiles of a raw sample (same rank convention as
    /// `LogHistogram::quantile`: element at rank `max(1, ceil(q·n))`).
    fn exact(samples: &mut [u64]) -> Quantiles {
        samples.sort_unstable();
        let n = samples.len();
        let at = |q: f64| {
            if n == 0 {
                return 0;
            }
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            samples[rank - 1]
        };
        Quantiles {
            count: n as u64,
            mean_ns: if n == 0 {
                0.0
            } else {
                samples.iter().map(|&v| v as f64).sum::<f64>() / n as f64
            },
            p50_ns: at(0.5),
            p99_ns: at(0.99),
            p999_ns: at(0.999),
            max_ns: samples.last().copied().unwrap_or(0),
        }
    }

    fn scraped(h: &LogHistogram) -> Quantiles {
        Quantiles {
            count: h.total(),
            mean_ns: h.mean(),
            p50_ns: h.quantile(0.5),
            p99_ns: h.quantile(0.99),
            p999_ns: h.quantile(0.999),
            max_ns: h.max(),
        }
    }
}

/// One stage's scraped latency distribution.
#[derive(Debug, Serialize, Deserialize)]
struct StageRow {
    stage: String,
    latency: Quantiles,
}

/// One swept configuration's results.
#[derive(Debug, Serialize, Deserialize)]
struct ConfigResult {
    /// Stable identity: `s<shards>/<sync>/<repack>`.
    key: String,
    shards: usize,
    sync: String,
    repack: String,
    connections: usize,
    requests: u64,
    target_rate_rps: f64,
    throughput_rps: f64,
    /// Client-side RTT (exact over every request).
    e2e: Quantiles,
    /// Server-side per-stage quantiles from `/metrics`, merged over
    /// every op and shard, in serving-path order.
    stages: Vec<StageRow>,
    /// Server-side end-to-end from `/metrics` (bucket upper bounds).
    server_e2e: Quantiles,
    /// Sum over stages of the scraped `_sum`s (ns).
    stage_sum_ns: u64,
    /// The scraped end-to-end `_sum` (ns).
    e2e_sum_ns: u64,
    /// `stage_sum_ns / e2e_sum_ns` — the span accounting identity; the
    /// only unattributed time is the tail after the `reply` mark.
    stage_coverage: f64,
    /// `dvbp_serve_slow_requests_total` after the run.
    slow_total: u64,
    /// `"kind":"slow"` records captured in the `/spans` dump.
    slow_ring_len: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    schema: String,
    scale: String,
    slow_us: u64,
    configs: Vec<ConfigResult>,
}

struct Sweep {
    connections: usize,
    /// Arrive/depart pairs per connection (requests = 2 × this × K).
    items_per_conn: usize,
    rate_rps: f64,
}

fn sweep(scale: &str) -> Sweep {
    match scale {
        "smoke" => Sweep {
            connections: 2,
            items_per_conn: 60,
            rate_rps: 4_000.0,
        },
        _ => Sweep {
            connections: 8,
            items_per_conn: 250,
            rate_rps: 20_000.0,
        },
    }
}

/// The sweep grid: shard count × WAL sync policy × repack policy.
fn grid() -> Vec<(usize, &'static str, &'static str)> {
    let mut cells = Vec::new();
    for shards in [1usize, 2] {
        for sync in ["per-event", "batch:64"] {
            for repack in ["none", "drain:2"] {
                cells.push((shards, sync, repack));
            }
        }
    }
    cells
}

/// POST to a service route (the shutdown nudge).
fn http_post(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut text = String::new();
    BufReader::new(stream).read_to_string(&mut text)?;
    Ok(text)
}

/// Drives one config and returns its results row.
fn run_config(
    shards: usize,
    sync_spec: &str,
    repack_spec: &str,
    sweep: &Sweep,
    slow_us: u64,
) -> ConfigResult {
    let sync = SyncPolicy::from_str(sync_spec).expect("sweep sync spec");
    let repack = RepackPolicy::from_str(repack_spec).expect("sweep repack spec");
    let wal_dir = std::env::temp_dir().join(format!(
        "bench_serve_{}_{shards}_{}_{}",
        std::process::id(),
        sync_spec.replace(':', "-"),
        repack_spec.replace(':', "-"),
    ));
    let _ = std::fs::remove_dir_all(&wal_dir);
    std::fs::create_dir_all(&wal_dir).expect("create WAL scratch dir");

    let (state, _reports) = ServeState::open(
        &wal_dir,
        &DimVec::from_slice(&[100, 100]),
        &PolicyKind::FirstFit,
        repack,
        shards,
        RouterKind::Hash,
        TraceMode::CostOnly,
        // Concurrent connections interleave ticks arbitrarily; clamp
        // keeps every shard's clock monotone without rejections.
        TimeMode::Clamp,
        sync,
        None,
    )
    .expect("boot WAL-backed service");
    state.span_hub().set_slow_threshold_ns(slow_us * 1_000);
    let state = Arc::new(state);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap().to_string();
    let server = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || serve(&state, &listener).expect("serve loop"))
    };

    // Open-loop drive: request `i` of the global schedule is due at
    // `start + i/rate`; workers claim schedule slots with a shared
    // counter and never wait on each other.
    let schedule = Arc::new(AtomicU64::new(0));
    let ticks = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let rate = sweep.rate_rps;
    let mut workers = Vec::new();
    for c in 0..sweep.connections {
        let addr = addr.clone();
        let schedule = Arc::clone(&schedule);
        let ticks = Arc::clone(&ticks);
        let items = sweep.items_per_conn;
        workers.push(std::thread::spawn(move || {
            let conn = TcpStream::connect(&addr).expect("worker connect");
            conn.set_nodelay(true).expect("nodelay");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            let mut writer = conn;
            let mut rtts = Vec::with_capacity(2 * items);
            let mut line = String::new();
            let mut send = |req: String,
                            reader: &mut BufReader<TcpStream>,
                            writer: &mut TcpStream,
                            rtts: &mut Vec<u64>| {
                let slot = schedule.fetch_add(1, Ordering::Relaxed);
                let due = Duration::from_secs_f64(slot as f64 / rate);
                if let Some(wait) = due.checked_sub(start.elapsed()) {
                    std::thread::sleep(wait);
                }
                let sent = Instant::now();
                writeln!(writer, "{req}").expect("send request");
                line.clear();
                reader.read_line(&mut line).expect("read response");
                rtts.push(u64::try_from(sent.elapsed().as_nanos()).unwrap_or(u64::MAX));
                assert!(
                    !line.contains("\"Error\""),
                    "service rejected {req}: {line}"
                );
            };
            for i in 0..items {
                let t = ticks.fetch_add(1, Ordering::Relaxed);
                send(
                    format!(r#"{{"Arrive":{{"id":"c{c}-{i}","size":[2,3],"time":{t}}}}}"#),
                    &mut reader,
                    &mut writer,
                    &mut rtts,
                );
            }
            for i in 0..items {
                let t = ticks.fetch_add(1, Ordering::Relaxed);
                send(
                    format!(r#"{{"Depart":{{"id":"c{c}-{i}","time":{t}}}}}"#),
                    &mut reader,
                    &mut writer,
                    &mut rtts,
                );
            }
            rtts
        }));
    }
    let mut rtts: Vec<u64> = Vec::new();
    for w in workers {
        rtts.extend(w.join().expect("worker thread"));
    }
    let elapsed = start.elapsed();
    let requests = rtts.len() as u64;

    // Server-side view, scraped before shutdown.
    let metrics = dvbp_serve::http_get(&addr, "/metrics").expect("scrape /metrics");
    let spans_dump = dvbp_serve::http_get(&addr, "/spans").expect("fetch /spans");
    let _ = http_post(&addr, "/shutdown");
    server.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&wal_dir);

    let merge = |family: &str, by: &str| -> BTreeMap<String, LogHistogram> {
        let mut out: BTreeMap<String, LogHistogram> = BTreeMap::new();
        for sh in parse_histograms(&metrics, family) {
            out.entry(sh.label(by).to_string())
                .or_default()
                .merge(&sh.hist);
        }
        out
    };
    let stage_hists = merge("dvbp_serve_stage_latency_ns", "stage");
    let mut server_e2e = LogHistogram::new();
    for h in merge("dvbp_serve_request_latency_ns", "").values() {
        server_e2e.merge(h);
    }
    let stage_sum_ns: u64 = stage_hists.values().map(LogHistogram::sum).sum();
    let e2e_sum_ns = server_e2e.sum();
    let slow_total = metrics
        .lines()
        .find_map(|l| l.strip_prefix("dvbp_serve_slow_requests_total "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    let slow_ring_len = spans_dump
        .lines()
        .filter(|l| l.contains("\"kind\":\"slow\""))
        .count() as u64;

    ConfigResult {
        key: format!("s{shards}/{sync_spec}/{repack_spec}"),
        shards,
        sync: sync_spec.to_string(),
        repack: repack_spec.to_string(),
        connections: sweep.connections,
        requests,
        target_rate_rps: rate,
        throughput_rps: requests as f64 / elapsed.as_secs_f64(),
        e2e: Quantiles::exact(&mut rtts),
        stages: Stage::ALL
            .iter()
            .filter_map(|s| {
                stage_hists.get(s.name()).map(|h| StageRow {
                    stage: s.name().to_string(),
                    latency: Quantiles::scraped(h),
                })
            })
            .collect(),
        server_e2e: Quantiles::scraped(&server_e2e),
        stage_sum_ns,
        e2e_sum_ns,
        stage_coverage: if e2e_sum_ns == 0 {
            0.0
        } else {
            stage_sum_ns as f64 / e2e_sum_ns as f64
        },
        slow_total,
        slow_ring_len,
    }
}

/// `--check` validation: schema-level sanity plus the span accounting
/// identity. Returns every violated invariant.
fn check(report: &Report) -> Vec<String> {
    let mut bad = Vec::new();
    for c in &report.configs {
        let k = &c.key;
        if c.requests == 0 || c.e2e.count != c.requests {
            bad.push(format!(
                "{k}: client sample incomplete ({} RTTs)",
                c.e2e.count
            ));
        }
        if c.e2e.p50_ns == 0 || c.e2e.p999_ns < c.e2e.p50_ns {
            bad.push(format!("{k}: degenerate client quantiles {:?}", c.e2e));
        }
        if !c.throughput_rps.is_finite() || c.throughput_rps <= 0.0 {
            bad.push(format!("{k}: bad throughput {}", c.throughput_rps));
        }
        // Server saw every mutating request (plus nothing phantom).
        if c.server_e2e.count != c.requests {
            bad.push(format!(
                "{k}: server counted {} requests, client sent {}",
                c.server_e2e.count, c.requests
            ));
        }
        for stage in Stage::ALL {
            match c.stages.iter().find(|r| r.stage == stage.name()) {
                Some(r) if r.latency.count == c.requests => {}
                Some(r) => bad.push(format!(
                    "{k}: stage {} counted {} of {} requests",
                    stage.name(),
                    r.latency.count,
                    c.requests
                )),
                None => bad.push(format!("{k}: stage {} missing from scrape", stage.name())),
            }
        }
        // Stage sums must account for the end-to-end total: everything
        // except the post-reply tail is attributed to some stage.
        if c.stage_coverage < 0.90 || c.stage_coverage > 1.001 {
            bad.push(format!(
                "{k}: stage sums cover {:.1}% of end-to-end ({} vs {} ns)",
                100.0 * c.stage_coverage,
                c.stage_sum_ns,
                c.e2e_sum_ns
            ));
        }
        // With a ~zero threshold the fsync-per-event configs must have
        // captured slow outliers into the keep-ring.
        if report.slow_us <= 1
            && c.sync == "per-event"
            && (c.slow_total == 0 || c.slow_ring_len == 0)
        {
            bad.push(format!(
                "{k}: slow ring empty under per-event sync (total {}, ring {})",
                c.slow_total, c.slow_ring_len
            ));
        }
    }
    bad
}

fn main() -> ExitCode {
    let mut out = String::from("BENCH_serve.json");
    let mut scale = String::from("full");
    let mut run_check = false;
    let mut slow_us = 1_000u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--out" => out = value("--out"),
            "--scale" => scale = value("--scale"),
            "--check" => run_check = true,
            "--slow-us" => {
                slow_us = value("--slow-us")
                    .parse()
                    .expect("--slow-us takes microseconds")
            }
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let params = sweep(&scale);
    let mut configs = Vec::new();
    for (shards, sync, repack) in grid() {
        let row = run_config(shards, sync, repack, &params, slow_us);
        eprintln!(
            "{}: {} req @ {:.0} rps, e2e p50 {:.1}us p99 {:.1}us p999 {:.1}us, \
             stage coverage {:.1}%, {} slow",
            row.key,
            row.requests,
            row.throughput_rps,
            row.e2e.p50_ns as f64 / 1000.0,
            row.e2e.p99_ns as f64 / 1000.0,
            row.e2e.p999_ns as f64 / 1000.0,
            100.0 * row.stage_coverage,
            row.slow_total,
        );
        configs.push(row);
    }
    let report = Report {
        schema: "dvbp-bench-serve/1".to_string(),
        scale,
        slow_us,
        configs,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write report");
    eprintln!("wrote {out} ({} configs)", report.configs.len());

    if run_check {
        let bad = check(&report);
        if !bad.is_empty() {
            eprintln!("bench_serve check failures:");
            for line in &bad {
                eprintln!("  {line}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!("all checks passed");
    }
    ExitCode::SUCCESS
}

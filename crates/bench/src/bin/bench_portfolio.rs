//! Meta-policy regret emitter: every static candidate plus both
//! adaptive meta-policies driven over four trace families, written as
//! `BENCH_portfolio.json`.
//!
//! Each static row is one deterministic cost-only run of a candidate
//! policy; each meta row drives the full portfolio engine (live policy
//! plus one cost-only shadow per candidate) and lets the meta-policy
//! switch at bin closes. The row's `cr` is `cost / lb_load`; a meta
//! row additionally carries its regret against the family's best and
//! worst static candidates:
//!
//! * `regret_vs_best_pct`  — how far above the best static CR the
//!   meta-policy landed (0 = matched the oracle pick).
//! * `gain_vs_worst_pct`   — how far below the worst static CR it
//!   stayed (the payoff of not committing to a bad policy up front).
//!
//! The packing metric is deterministic, so `--baseline` gates exactly
//! like `bench_repack`: any shared key whose `cr` grows by more than
//! `--max-regression` percent fails the process.
//!
//! The report also times the dispatch layer itself: a portfolio drive
//! is compared against the sum of its parts (the plain live drive plus
//! one standalone cost-only drive per candidate). The difference is
//! pure dispatch glue — id translation, scoreboard upkeep, meta-policy
//! checks — and `--max-overhead-pct` bounds it (CI smoke uses 30).
//!
//! Usage:
//!   bench_portfolio [--out FILE] [--baseline FILE]
//!                   [--max-regression PCT] [--max-overhead-pct PCT]
//!                   [--scale full|smoke]

use dvbp_bench::bench_instance;
use dvbp_core::{
    live_ops, Instance, InstanceSource, Item, LiveOp, LiveRequest, LoadMeasure, PolicyKind,
    TraceMode,
};
use dvbp_offline::lower_bounds::lb_load;
use dvbp_portfolio::{MetaPolicy, PortfolioEngine, DEFAULT_BEST_OF_WINDOW};
use dvbp_traces::{Diurnal, HeavyTail};
use dvbp_workloads::extended::{ArrivalDist, DurationDist, ExtendedParams, SizeDist};
use dvbp_workloads::uniform::UniformParams;
use serde::{Deserialize, Serialize};
use std::process::ExitCode;
use std::time::Instant;

/// One run's outcome: a static candidate or a meta-policy drive.
#[derive(Debug, Serialize, Deserialize)]
struct Entry {
    /// Stable identity: `family/{static:<kind>|meta:<name>}/n<N>`.
    key: String,
    family: String,
    /// `static:<kind>` or `meta:<name>`.
    policy: String,
    n: usize,
    seed: u64,
    /// MinUsageTime cost of the final packing.
    cost: u64,
    /// Offline load lower bound of the instance (eq. 2).
    lb_load: u64,
    /// `cost / lb_load` — the row's empirical competitive ratio.
    cr: f64,
    /// Policy switches taken (0 for static rows).
    switches: u64,
    /// Meta rows: percent above the family's best static CR.
    regret_vs_best_pct: f64,
    /// Meta rows: percent below the family's worst static CR.
    gain_vs_worst_pct: f64,
}

/// Wall-clock cost of the dispatch layer, measured on the smoke-scale
/// uniform family: the portfolio drive against the sum of its parts.
#[derive(Debug, Serialize, Deserialize)]
struct Overhead {
    /// Min-over-reps nanoseconds for the portfolio drive (live + one
    /// shadow per candidate, static meta).
    portfolio_ns: u64,
    /// Min-over-reps nanoseconds for the plain live drive plus one
    /// standalone cost-only drive per candidate.
    components_ns: u64,
    /// `(portfolio - components) / components`, as a percentage.
    overhead_pct: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    schema: String,
    scale: String,
    overhead: Overhead,
    entries: Vec<Entry>,
}

const SEED: u64 = 7;

/// The candidate set every family is judged over: diverse enough that
/// no single policy wins everywhere, small enough that the shadow cost
/// stays readable in the overhead numbers.
fn candidates() -> [PolicyKind; 4] {
    [
        PolicyKind::FirstFit,
        PolicyKind::NextFit,
        PolicyKind::BestFit(LoadMeasure::Linf),
        PolicyKind::MoveToFront,
    ]
}

/// Both adaptive disciplines under test, with their default tunings.
fn metas() -> [MetaPolicy; 2] {
    [
        MetaPolicy::BestOf {
            window: DEFAULT_BEST_OF_WINDOW,
        },
        MetaPolicy::SwitchThreshold {
            threshold_pct: dvbp_portfolio::DEFAULT_SWITCH_THRESHOLD_PCT,
        },
    ]
}

/// `(family, n)` grid per scale; the smoke grid is a subset of the
/// full grid so baseline keys always match.
fn grid(scale: &str) -> Vec<(&'static str, usize)> {
    match scale {
        "smoke" => vec![
            ("uniform", 600),
            ("zipf-bursty", 600),
            ("diurnal", 400),
            ("heavy-tail", 400),
        ],
        _ => vec![
            ("uniform", 600),
            ("uniform", 2400),
            ("zipf-bursty", 600),
            ("zipf-bursty", 2400),
            ("diurnal", 400),
            ("diurnal", 1600),
            ("heavy-tail", 400),
            ("heavy-tail", 1600),
        ],
    }
}

/// Generates one family instance at size `n`.
///
/// * `uniform` — the Table 2 shape: stationary, the regime every
///   static policy was tuned for.
/// * `zipf-bursty` — heavy-tailed sizes in bursty waves: utilization
///   whipsaws, so the best policy changes across the run.
/// * `diurnal` — day/night arrival waves (dvbp-traces synth): long
///   quiet troughs where bins drain and close, the meta-policy's
///   natural decision points.
/// * `heavy-tail` — Pareto lifetimes: a few stragglers pin bins open,
///   punishing policies that scatter long-lived items.
fn family_instance(family: &str, n: usize) -> Instance {
    let synth = |items: dvbp_traces::ItemIter, capacity: dvbp_dimvec::DimVec| {
        let items: Vec<Item> = items.map(|(a, d, size)| Item::new(size, a, d)).collect();
        Instance::new(capacity, items).expect("synth instance valid")
    };
    match family {
        "uniform" => bench_instance(2, n, (n as u64) / 10, SEED),
        "zipf-bursty" => ExtendedParams {
            base: UniformParams {
                dims: 2,
                items: n,
                mu: 20,
                span: (n as u64) / 2,
                bin_size: 10,
            },
            sizes: SizeDist::Zipf { exponent: 1.2 },
            durations: DurationDist::Geometric { p: 0.3 },
            arrivals: ArrivalDist::Bursty { waves: 6, width: 3 },
        }
        .generate(SEED),
        "diurnal" => {
            let capacity = dvbp_dimvec::DimVec::from_slice(&[10, 10]);
            let gen = Diurnal::new(n, capacity.clone(), SEED);
            synth(gen.items(), capacity)
        }
        "heavy-tail" => {
            let capacity = dvbp_dimvec::DimVec::from_slice(&[10, 10]);
            let mut gen = HeavyTail::new(n, capacity.clone(), SEED);
            gen.max_duration = 2_000;
            synth(gen.items(), capacity)
        }
        other => panic!("unknown trace family {other}"),
    }
}

/// Drives one static candidate cost-only over `inst` and returns its
/// final packing cost.
fn run_static(inst: &Instance, kind: &PolicyKind) -> u64 {
    let mut live = LiveRequest::new(kind.clone())
        .capacity(inst.capacity.clone())
        .trace_mode(TraceMode::CostOnly)
        .items_hint(inst.items.len())
        .build()
        .expect("candidates are non-clairvoyant");
    let mut source = InstanceSource::new(inst).expect("bench instance valid");
    live.drive_source(&mut source).expect("live drive succeeds");
    let packing = live.into_packing().expect("all items departed");
    u64::try_from(packing.cost()).expect("bench costs fit in u64")
}

/// Drives the full portfolio over `inst` under `meta` and returns the
/// final packing cost plus the switch count.
///
/// `live_ops` names items by instance index while every engine assigns
/// dense arrival-order indices, so departures go through a translation
/// map — the same discipline conformance layer 11 uses.
fn run_meta(inst: &Instance, live_kind: &PolicyKind, meta: MetaPolicy) -> (u64, u64) {
    let live = LiveRequest::new(live_kind.clone())
        .capacity(inst.capacity.clone())
        .trace_mode(TraceMode::CostOnly)
        .shadow_policies(candidates())
        .items_hint(inst.items.len())
        .build()
        .expect("candidates are non-clairvoyant");
    let mut pf =
        PortfolioEngine::new(live, meta, inst.items.len()).expect("portfolio boot succeeds");
    let mut ids = vec![usize::MAX; inst.items.len()];
    for op in live_ops(inst) {
        match op {
            LiveOp::Arrive { item, size, time } => {
                ids[item] = pf.arrive(size, time).expect("arrive succeeds").item;
            }
            LiveOp::Depart { item, time } => {
                pf.depart(ids[item], time).expect("depart succeeds");
            }
        }
    }
    let switches = pf.switches().len() as u64;
    let packing = pf.into_live().into_packing().expect("all items departed");
    (
        u64::try_from(packing.cost()).expect("bench costs fit in u64"),
        switches,
    )
}

/// Min-over-reps wall time of `f`, in nanoseconds.
fn time_min<F: FnMut()>(reps: u32, mut f: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    best
}

/// Times the dispatch layer on a smoke-scale uniform instance: the
/// portfolio drive (static meta, so the live engine does exactly what
/// the plain drive does) against the plain drive plus one standalone
/// cost-only drive per candidate.
fn measure_overhead() -> Overhead {
    let inst = family_instance("uniform", 600);
    let live_kind = PolicyKind::FirstFit;
    const REPS: u32 = 5;
    let portfolio_ns = time_min(REPS, || {
        let (cost, switches) = run_meta(&inst, &live_kind, MetaPolicy::Static);
        assert!(cost > 0 && switches == 0);
    });
    let components_ns = time_min(REPS, || {
        assert!(run_static(&inst, &live_kind) > 0);
        for kind in candidates() {
            assert!(run_static(&inst, &kind) > 0);
        }
    });
    let overhead_pct = if components_ns == 0 {
        0.0
    } else {
        (portfolio_ns as f64 - components_ns as f64) / components_ns as f64 * 100.0
    };
    Overhead {
        portfolio_ns,
        components_ns,
        overhead_pct,
    }
}

fn run_grid(scale: &str) -> Report {
    let mut entries = Vec::new();
    for (family, n) in grid(scale) {
        let inst = family_instance(family, n);
        let lb = u64::try_from(lb_load(&inst)).expect("bench bounds fit in u64");
        let mut best = f64::INFINITY;
        let mut worst = f64::NEG_INFINITY;
        for kind in candidates() {
            let cost = run_static(&inst, &kind);
            let cr = cost as f64 / lb as f64;
            best = best.min(cr);
            worst = worst.max(cr);
            eprintln!("{family}/static:{}/n{n}: cr {cr:.4}", kind.name());
            entries.push(Entry {
                key: format!("{family}/static:{}/n{n}", kind.name()),
                family: family.to_string(),
                policy: format!("static:{}", kind.name()),
                n,
                seed: SEED,
                cost,
                lb_load: lb,
                cr,
                switches: 0,
                regret_vs_best_pct: 0.0,
                gain_vs_worst_pct: 0.0,
            });
        }
        for meta in metas() {
            let (cost, switches) = run_meta(&inst, &PolicyKind::FirstFit, meta);
            let cr = cost as f64 / lb as f64;
            let regret_vs_best_pct = (cr - best) / best * 100.0;
            let gain_vs_worst_pct = (worst - cr) / worst * 100.0;
            eprintln!(
                "{family}/meta:{}/n{n}: cr {cr:.4} ({switches} switch(es), \
                 regret {regret_vs_best_pct:+.2}% vs best, gain {gain_vs_worst_pct:+.2}% vs worst)",
                meta.name()
            );
            entries.push(Entry {
                key: format!("{family}/meta:{}/n{n}", meta.name()),
                family: family.to_string(),
                policy: format!("meta:{}", meta.name()),
                n,
                seed: SEED,
                cost,
                lb_load: lb,
                cr,
                switches,
                regret_vs_best_pct,
                gain_vs_worst_pct,
            });
        }
    }
    Report {
        schema: "dvbp-bench-portfolio/1".to_string(),
        scale: scale.to_string(),
        overhead: measure_overhead(),
        entries,
    }
}

/// Keys whose `cr` grew by more than `max_regression_pct` over the
/// baseline — the same deterministic gate as `bench_repack`.
fn regressions(report: &Report, baseline: &Report, max_regression_pct: f64) -> Vec<String> {
    let ceiling = 1.0 + max_regression_pct / 100.0;
    let mut bad = Vec::new();
    for e in &report.entries {
        if let Some(b) = baseline.entries.iter().find(|b| b.key == e.key) {
            if e.cr > b.cr * ceiling {
                bad.push(format!(
                    "{}: cr {:.4} vs baseline {:.4} (ceiling {:.4})",
                    e.key,
                    e.cr,
                    b.cr,
                    b.cr * ceiling
                ));
            }
        }
    }
    bad
}

fn main() -> ExitCode {
    let mut out = String::from("BENCH_portfolio.json");
    let mut baseline: Option<String> = None;
    let mut max_regression = 30.0f64;
    let mut max_overhead: Option<f64> = None;
    let mut scale = String::from("full");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--out" => out = value("--out"),
            "--baseline" => baseline = Some(value("--baseline")),
            "--max-regression" => {
                max_regression = value("--max-regression")
                    .parse()
                    .expect("--max-regression takes a percentage")
            }
            "--max-overhead-pct" => {
                max_overhead = Some(
                    value("--max-overhead-pct")
                        .parse()
                        .expect("--max-overhead-pct takes a percentage"),
                )
            }
            "--scale" => scale = value("--scale"),
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = run_grid(&scale);
    eprintln!(
        "dispatch overhead: portfolio {} ns vs components {} ns ({:+.2}%)",
        report.overhead.portfolio_ns, report.overhead.components_ns, report.overhead.overhead_pct
    );
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write report");
    eprintln!("wrote {out} ({} entries)", report.entries.len());

    let mut failed = false;
    if let Some(ceiling) = max_overhead {
        if report.overhead.overhead_pct > ceiling {
            eprintln!(
                "dispatch overhead {:+.2}% exceeds the {ceiling}% gate",
                report.overhead.overhead_pct
            );
            failed = true;
        } else {
            eprintln!(
                "dispatch overhead {:+.2}% within the {ceiling}% gate",
                report.overhead.overhead_pct
            );
        }
    }
    if let Some(path) = baseline {
        let data = std::fs::read_to_string(&path).expect("read baseline");
        let base: Report = serde_json::from_str(&data).expect("parse baseline");
        let bad = regressions(&report, &base, max_regression);
        if !bad.is_empty() {
            eprintln!("portfolio CR regressions over {max_regression}% vs {path}:");
            for line in &bad {
                eprintln!("  {line}");
            }
            failed = true;
        } else {
            eprintln!("no CR regression over {max_regression}% vs {path}");
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! Wall-clock throughput emitter: items packed per second for every
//! Any-Fit policy (indexed and scanning variants) across a fixed
//! `(d, n, μ)` grid, written as `BENCH_throughput.json`.
//!
//! Unlike the Criterion benches (statistical, human-oriented), this
//! binary produces one machine-readable artifact per run for regression
//! tracking: scores are also *normalized* by the run's geometric mean, so
//! two runs on different machines compare by relative shape rather than
//! absolute speed. `--baseline <file>` fails the process when any shared
//! grid key's normalized score regresses by more than `--max-regression`
//! percent (CI runs the `smoke` scale against the committed artifact).
//!
//! Usage:
//!   bench_throughput [--out FILE] [--baseline FILE]
//!                    [--max-regression PCT] [--scale full|smoke]

use dvbp_bench::bench_instance;
use dvbp_bench::seed_engine::{pack_seed, SeedSelect};
use dvbp_core::policy::best_fit::BestFit;
use dvbp_core::policy::first_fit::FirstFit;
use dvbp_core::policy::last_fit::LastFit;
use dvbp_core::policy::worst_fit::WorstFit;
use dvbp_core::{Engine, Instance, LoadMeasure, Policy, PolicyKind, TraceMode};
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// One measured grid point.
#[derive(Debug, Serialize, Deserialize)]
struct Entry {
    /// Stable identity: `policy/variant/d<D>/n<N>/mu<MU>`.
    key: String,
    policy: String,
    variant: String,
    d: usize,
    n: usize,
    mu: u64,
    seed: u64,
    items_per_sec: f64,
    /// Items/sec of the *fastest* repetition (minimum-time estimator;
    /// scheduling noise only ever adds time, so the min is the most
    /// reproducible statistic).
    ///
    /// `normalized` is `items_per_sec` divided by the geometric mean of
    /// this run's scores on the [`SMOKE_GRID`] keys — a key set every
    /// scale measures, so normalized scores compare across scales and
    /// machines. This is what the regression gate checks.
    normalized: f64,
    max_concurrent_bins: usize,
    cost: u64,
    reps: u32,
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    schema: String,
    scale: String,
    entries: Vec<Entry>,
}

/// `(policy, variant)` rows of the grid, three variants per Any-Fit
/// policy:
///
/// * `seed` — the seed engine's packing loop and O(m·d) scanning
///   selection, preserved verbatim in [`dvbp_bench::seed_engine`]. This is
///   the "before" of the before/after comparison.
/// * `scan` — the same O(m·d) selection running inside the optimized
///   engine (isolates selection cost from engine-loop cost).
/// * `indexed` — fit-index candidate enumeration in the optimized engine.
///
/// All three produce identical placements; only the per-arrival cost
/// differs.
const POLICIES: [(&str, &str); 14] = [
    ("FirstFit", "indexed"),
    ("FirstFit", "scan"),
    ("FirstFit", "seed"),
    ("BestFit", "indexed"),
    ("BestFit", "scan"),
    ("BestFit", "seed"),
    ("WorstFit", "indexed"),
    ("WorstFit", "scan"),
    ("WorstFit", "seed"),
    ("LastFit", "indexed"),
    ("LastFit", "scan"),
    ("LastFit", "seed"),
    ("NextFit", "-"),
    ("MoveToFront", "-"),
];

/// `(d, n, mu)` grid points. `mu = n / 2` keeps thousands of bins
/// concurrently open (the regime the fit index targets); the small-μ
/// points pin down the small-m overhead.
const FULL_GRID: [(usize, usize, u64); 5] = [
    (1, 2000, 60),
    (2, 2000, 60),
    (2, 8000, 4000),
    (5, 2000, 1000),
    (9, 2000, 500),
];

/// Smoke grid: the `n ≤ 2000` subset of [`FULL_GRID`], so every smoke key
/// exists in a committed full-scale artifact.
const SMOKE_GRID: [(usize, usize, u64); 4] = [
    (1, 2000, 60),
    (2, 2000, 60),
    (5, 2000, 1000),
    (9, 2000, 500),
];

const SEED: u64 = 1;

fn seed_select(policy: &str) -> SeedSelect {
    match policy {
        "FirstFit" => SeedSelect::FirstFit,
        "BestFit" => SeedSelect::BestFit(LoadMeasure::Linf),
        "WorstFit" => SeedSelect::WorstFit(LoadMeasure::Linf),
        "LastFit" => SeedSelect::LastFit,
        other => panic!("no seed twin for {other}"),
    }
}

fn build_policy(policy: &str, variant: &str) -> Box<dyn Policy> {
    match (policy, variant) {
        ("FirstFit", "indexed") => Box::new(FirstFit::new()),
        ("FirstFit", "scan") => Box::new(FirstFit::scanning()),
        ("BestFit", "indexed") => Box::new(BestFit::new(LoadMeasure::Linf)),
        ("BestFit", "scan") => Box::new(BestFit::scanning(LoadMeasure::Linf)),
        ("WorstFit", "indexed") => Box::new(WorstFit::new(LoadMeasure::Linf)),
        ("WorstFit", "scan") => Box::new(WorstFit::scanning(LoadMeasure::Linf)),
        ("LastFit", "indexed") => Box::new(LastFit::new()),
        ("LastFit", "scan") => Box::new(LastFit::scanning()),
        ("NextFit", _) => PolicyKind::NextFit.build(),
        ("MoveToFront", _) => PolicyKind::MoveToFront.build(),
        other => panic!("unknown policy row {other:?}"),
    }
}

/// Times repeated warm `CostOnly` runs of `policy` over `inst` until
/// `budget` elapses (at least 3 reps), returning items/sec and the run's
/// invariant outputs.
fn measure(inst: &Instance, policy: &mut dyn Policy, budget: Duration) -> (f64, usize, u64, u32) {
    let mut engine = Engine::new();
    // Warm run: grows the engine arenas and fit index; also the one place
    // the per-config outputs (cost, concurrency) are taken from.
    let warm = engine.pack(inst, policy, TraceMode::CostOnly);
    let max_conc = warm.max_concurrent_bins();
    let cost = u64::try_from(warm.cost()).expect("bench costs fit in u64");

    let start = Instant::now();
    let mut reps = 0u32;
    let mut fastest = Duration::MAX;
    loop {
        let t0 = Instant::now();
        black_box(engine.pack(inst, policy, TraceMode::CostOnly).cost());
        fastest = fastest.min(t0.elapsed());
        reps += 1;
        if reps >= 3 && start.elapsed() >= budget {
            break;
        }
    }
    let ips = inst.len() as f64 / fastest.as_secs_f64();
    (ips, max_conc, cost, reps)
}

/// Same timing protocol for the seed-engine twin (no warm state to reuse —
/// the seed allocated everything per run, and that cost is part of what it
/// measures).
fn measure_seed(inst: &Instance, select: SeedSelect, budget: Duration) -> (f64, usize, u64, u32) {
    let first = pack_seed(inst, select);
    let max_conc = first.max_concurrent_bins;
    let cost = u64::try_from(first.cost).expect("bench costs fit in u64");

    let start = Instant::now();
    let mut reps = 0u32;
    let mut fastest = Duration::MAX;
    loop {
        let t0 = Instant::now();
        black_box(pack_seed(inst, select).cost);
        fastest = fastest.min(t0.elapsed());
        reps += 1;
        if reps >= 3 && start.elapsed() >= budget {
            break;
        }
    }
    let ips = inst.len() as f64 / fastest.as_secs_f64();
    (ips, max_conc, cost, reps)
}

fn run_grid(scale: &str) -> Report {
    let (grid, budget): (&[(usize, usize, u64)], Duration) = match scale {
        "smoke" => (&SMOKE_GRID, Duration::from_millis(120)),
        _ => (&FULL_GRID, Duration::from_millis(400)),
    };
    let mut entries = Vec::new();
    for &(d, n, mu) in grid {
        let inst = bench_instance(d, n, mu, SEED);
        for (policy, variant) in POLICIES {
            let (ips, max_conc, cost, reps) = if variant == "seed" {
                measure_seed(&inst, seed_select(policy), budget)
            } else {
                let mut p = build_policy(policy, variant);
                measure(&inst, p.as_mut(), budget)
            };
            eprintln!("{policy}/{variant} d={d} n={n} mu={mu}: {ips:.0} items/s (m={max_conc})");
            entries.push(Entry {
                key: format!("{policy}/{variant}/d{d}/n{n}/mu{mu}"),
                policy: policy.to_string(),
                variant: variant.to_string(),
                d,
                n,
                mu,
                seed: SEED,
                items_per_sec: ips,
                normalized: 0.0,
                max_concurrent_bins: max_conc,
                cost,
                reps,
            });
        }
    }
    // Normalize by the geometric mean over the smoke-grid keys only: the
    // smoke grid is a subset of every scale's grid, so the denominator is
    // computed from the same key set no matter the scale and normalized
    // scores stay comparable between a smoke run and a full baseline.
    let shared: Vec<f64> = entries
        .iter()
        .filter(|e| SMOKE_GRID.contains(&(e.d, e.n, e.mu)))
        .map(|e| e.items_per_sec.ln())
        .collect();
    let geo_mean = (shared.iter().sum::<f64>() / shared.len() as f64).exp();
    for e in &mut entries {
        e.normalized = e.items_per_sec / geo_mean;
    }
    Report {
        schema: "dvbp-bench-throughput/1".to_string(),
        scale: scale.to_string(),
        entries,
    }
}

/// Compares normalized scores against `baseline`; returns the offending
/// keys (regressed by more than `max_regression_pct`).
fn regressions(report: &Report, baseline: &Report, max_regression_pct: f64) -> Vec<String> {
    let floor = 1.0 - max_regression_pct / 100.0;
    let mut bad = Vec::new();
    for e in &report.entries {
        if let Some(b) = baseline.entries.iter().find(|b| b.key == e.key) {
            if e.normalized < b.normalized * floor {
                bad.push(format!(
                    "{}: normalized {:.3} vs baseline {:.3} (floor {:.3})",
                    e.key,
                    e.normalized,
                    b.normalized,
                    b.normalized * floor
                ));
            }
        }
    }
    bad
}

fn main() -> ExitCode {
    let mut out = String::from("BENCH_throughput.json");
    let mut baseline: Option<String> = None;
    let mut max_regression = 30.0f64;
    let mut scale = String::from("full");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--out" => out = value("--out"),
            "--baseline" => baseline = Some(value("--baseline")),
            "--max-regression" => {
                max_regression = value("--max-regression")
                    .parse()
                    .expect("--max-regression takes a percentage")
            }
            "--scale" => scale = value("--scale"),
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = run_grid(&scale);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write report");
    eprintln!("wrote {out} ({} entries)", report.entries.len());

    if let Some(path) = baseline {
        let data = std::fs::read_to_string(&path).expect("read baseline");
        let base: Report = serde_json::from_str(&data).expect("parse baseline");
        let bad = regressions(&report, &base, max_regression);
        if !bad.is_empty() {
            eprintln!("throughput regressions over {max_regression}% vs {path}:");
            for line in &bad {
                eprintln!("  {line}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!("no regression over {max_regression}% vs {path}");
    }
    ExitCode::SUCCESS
}

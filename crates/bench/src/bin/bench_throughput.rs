//! Wall-clock throughput emitter: items packed per second for every
//! Any-Fit policy (indexed and scanning variants) across a fixed
//! `(d, n, μ)` grid, plus the `ServeDispatch` scenario (requests per
//! second through the sharded `dvbp-serve` dispatch service, in-process
//! and over loopback TCP, versus shard count), written as
//! `BENCH_throughput.json`.
//!
//! Unlike the Criterion benches (statistical, human-oriented), this
//! binary produces one machine-readable artifact per run for regression
//! tracking: scores are also *normalized* by the run's geometric mean, so
//! two runs on different machines compare by relative shape rather than
//! absolute speed. `--baseline <file>` fails the process when any shared
//! grid key's normalized score regresses by more than `--max-regression`
//! percent (CI runs the `smoke` scale against the committed artifact).
//!
//! Usage:
//!   bench_throughput [--out FILE] [--baseline FILE]
//!                    [--max-regression PCT] [--scale full|smoke]

use dvbp_bench::bench_instance;
use dvbp_bench::seed_engine::{pack_seed, SeedSelect};
use dvbp_core::policy::best_fit::BestFit;
use dvbp_core::policy::first_fit::FirstFit;
use dvbp_core::policy::last_fit::LastFit;
use dvbp_core::policy::worst_fit::WorstFit;
use dvbp_core::{
    live_ops, Engine, Instance, LiveOp, LoadMeasure, Policy, PolicyKind, TimeMode, TraceMode,
};
use dvbp_obs::SyncPolicy;
use dvbp_serve::client::item_id;
use dvbp_serve::protocol::{Request, Response};
use dvbp_serve::router::{fnv1a, RouterKind};
use dvbp_serve::server::{serve, ServeState};
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One measured grid point.
#[derive(Debug, Serialize, Deserialize)]
struct Entry {
    /// Stable identity: `policy/variant/d<D>/n<N>/mu<MU>`.
    key: String,
    policy: String,
    variant: String,
    d: usize,
    n: usize,
    mu: u64,
    seed: u64,
    items_per_sec: f64,
    /// Items/sec of the *fastest* repetition (minimum-time estimator;
    /// scheduling noise only ever adds time, so the min is the most
    /// reproducible statistic).
    ///
    /// `normalized` is `items_per_sec` divided by the geometric mean of
    /// this run's scores on the [`SMOKE_GRID`] keys — a key set every
    /// scale measures, so normalized scores compare across scales and
    /// machines. This is what the regression gate checks.
    normalized: f64,
    max_concurrent_bins: usize,
    cost: u64,
    reps: u32,
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    schema: String,
    scale: String,
    entries: Vec<Entry>,
}

/// `(policy, variant)` rows of the grid, four variants per Any-Fit
/// policy:
///
/// * `seed` — the seed engine's packing loop and O(m·d) scanning
///   selection, preserved verbatim in [`dvbp_bench::seed_engine`]. This is
///   the "before" of the before/after comparison.
/// * `scalar` — the same O(m·d) per-bin selection loop running inside
///   the optimized engine (isolates selection cost from engine-loop
///   cost). The before-side of the simd-vs-scalar ablation.
/// * `simd` — the vectorized block scan over the engine's SoA residual
///   mirror (8 bins per mask step). Same asymptotics as `scalar`,
///   lane-parallel constants.
/// * `indexed` — fit-index candidate enumeration in the optimized engine.
///
/// All four produce identical placements; only the per-arrival cost
/// differs.
const POLICIES: [(&str, &str); 18] = [
    ("FirstFit", "indexed"),
    ("FirstFit", "simd"),
    ("FirstFit", "scalar"),
    ("FirstFit", "seed"),
    ("BestFit", "indexed"),
    ("BestFit", "simd"),
    ("BestFit", "scalar"),
    ("BestFit", "seed"),
    ("WorstFit", "indexed"),
    ("WorstFit", "simd"),
    ("WorstFit", "scalar"),
    ("WorstFit", "seed"),
    ("LastFit", "indexed"),
    ("LastFit", "simd"),
    ("LastFit", "scalar"),
    ("LastFit", "seed"),
    ("NextFit", "-"),
    ("MoveToFront", "-"),
];

/// `(d, n, mu)` grid points. `mu = n / 2` keeps thousands of bins
/// concurrently open (the regime the fit index and the block scan
/// target); the small-μ points pin down the small-m overhead. The
/// `d ∈ {4, 8}` points hold hundreds-to-thousands of bins open at
/// power-of-two dimension counts — the simd-vs-scalar ablation's
/// headline rows.
const FULL_GRID: [(usize, usize, u64); 7] = [
    (1, 2000, 60),
    (2, 2000, 60),
    (2, 8000, 4000),
    (4, 2000, 1000),
    (5, 2000, 1000),
    (8, 4000, 2000),
    (9, 2000, 500),
];

/// Smoke grid: a subset of [`FULL_GRID`] (every smoke key exists in a
/// committed full-scale artifact), capped at `n ≤ 2000` to keep the CI
/// job fast. Includes the `d = 4` ablation point so the smoke gate
/// covers the vectorized kernel.
const SMOKE_GRID: [(usize, usize, u64); 5] = [
    (1, 2000, 60),
    (2, 2000, 60),
    (4, 2000, 1000),
    (5, 2000, 1000),
    (9, 2000, 500),
];

const SEED: u64 = 1;

fn seed_select(policy: &str) -> SeedSelect {
    match policy {
        "FirstFit" => SeedSelect::FirstFit,
        "BestFit" => SeedSelect::BestFit(LoadMeasure::Linf),
        "WorstFit" => SeedSelect::WorstFit(LoadMeasure::Linf),
        "LastFit" => SeedSelect::LastFit,
        other => panic!("no seed twin for {other}"),
    }
}

fn build_policy(policy: &str, variant: &str) -> Box<dyn Policy> {
    match (policy, variant) {
        ("FirstFit", "indexed") => Box::new(FirstFit::new()),
        ("FirstFit", "simd") => Box::new(FirstFit::scanning()),
        ("FirstFit", "scalar") => Box::new(FirstFit::scanning_scalar()),
        ("BestFit", "indexed") => Box::new(BestFit::new(LoadMeasure::Linf)),
        ("BestFit", "simd") => Box::new(BestFit::scanning(LoadMeasure::Linf)),
        ("BestFit", "scalar") => Box::new(BestFit::scanning_scalar(LoadMeasure::Linf)),
        ("WorstFit", "indexed") => Box::new(WorstFit::new(LoadMeasure::Linf)),
        ("WorstFit", "simd") => Box::new(WorstFit::scanning(LoadMeasure::Linf)),
        ("WorstFit", "scalar") => Box::new(WorstFit::scanning_scalar(LoadMeasure::Linf)),
        ("LastFit", "indexed") => Box::new(LastFit::new()),
        ("LastFit", "simd") => Box::new(LastFit::scanning()),
        ("LastFit", "scalar") => Box::new(LastFit::scanning_scalar()),
        ("NextFit", _) => PolicyKind::NextFit.build(),
        ("MoveToFront", _) => PolicyKind::MoveToFront.build(),
        other => panic!("unknown policy row {other:?}"),
    }
}

/// Times repeated warm `CostOnly` runs of `policy` over `inst` until
/// `budget` elapses (at least 3 reps), returning items/sec and the run's
/// invariant outputs.
fn measure(inst: &Instance, policy: &mut dyn Policy, budget: Duration) -> (f64, usize, u64, u32) {
    let mut engine = Engine::new();
    // Warm run: grows the engine arenas and fit index; also the one place
    // the per-config outputs (cost, concurrency) are taken from.
    let warm = engine.pack(inst, policy, TraceMode::CostOnly);
    let max_conc = warm.max_concurrent_bins();
    let cost = u64::try_from(warm.cost()).expect("bench costs fit in u64");

    let start = Instant::now();
    let mut reps = 0u32;
    let mut fastest = Duration::MAX;
    loop {
        let t0 = Instant::now();
        black_box(engine.pack(inst, policy, TraceMode::CostOnly).cost());
        fastest = fastest.min(t0.elapsed());
        reps += 1;
        if reps >= 3 && start.elapsed() >= budget {
            break;
        }
    }
    let ips = inst.len() as f64 / fastest.as_secs_f64();
    (ips, max_conc, cost, reps)
}

/// Same timing protocol for the seed-engine twin (no warm state to reuse —
/// the seed allocated everything per run, and that cost is part of what it
/// measures).
fn measure_seed(inst: &Instance, select: SeedSelect, budget: Duration) -> (f64, usize, u64, u32) {
    let first = pack_seed(inst, select);
    let max_conc = first.max_concurrent_bins;
    let cost = u64::try_from(first.cost).expect("bench costs fit in u64");

    let start = Instant::now();
    let mut reps = 0u32;
    let mut fastest = Duration::MAX;
    loop {
        let t0 = Instant::now();
        black_box(pack_seed(inst, select).cost);
        fastest = fastest.min(t0.elapsed());
        reps += 1;
        if reps >= 3 && start.elapsed() >= budget {
            break;
        }
    }
    let ips = inst.len() as f64 / fastest.as_secs_f64();
    (ips, max_conc, cost, reps)
}

/// `(d, n, mu)` of the `ServeDispatch` scenario — off the engine grid,
/// big enough that dispatch overhead (routing, journaling, locking)
/// dominates instance setup.
const SERVE_POINT: (usize, usize, u64) = (2, 6000, 100);

/// The canonical feed as protocol requests, each tagged with its item's
/// router hash so driver threads can pre-partition exactly the way the
/// service's hash router will.
fn serve_requests(inst: &Instance) -> Vec<(u64, Request)> {
    live_ops(inst)
        .into_iter()
        .map(|op| match op {
            LiveOp::Arrive { item, size, time } => (
                fnv1a(item_id(item).as_bytes()),
                Request::Arrive {
                    id: item_id(item),
                    size: size.as_slice().to_vec(),
                    time,
                },
            ),
            LiveOp::Depart { item, time } => (
                fnv1a(item_id(item).as_bytes()),
                Request::Depart {
                    id: item_id(item),
                    time,
                },
            ),
        })
        .collect()
}

/// Splits the tagged feed into one per-shard request stream (an item's
/// arrival and departure always land in the same partition).
fn partition(reqs: &[(u64, Request)], shards: usize) -> Vec<Vec<&Request>> {
    let mut parts = vec![Vec::new(); shards];
    for (hash, req) in reqs {
        parts[usize::try_from(hash % shards as u64).expect("shard index fits")].push(req);
    }
    parts
}

/// A fresh in-memory dispatch service for one bench repetition. `Clamp`
/// time mode: concurrent driver threads hit different shards, so each
/// shard's own feed stays ordered, but clamping keeps the scenario
/// honest about wall-clock skew.
fn serve_state(inst: &Instance, shards: usize) -> ServeState<Vec<u8>> {
    ServeState::in_memory(
        &inst.capacity,
        &PolicyKind::FirstFit,
        dvbp_core::RepackPolicy::NoRepack,
        shards,
        RouterKind::Hash,
        TraceMode::CostOnly,
        TimeMode::Clamp,
        SyncPolicy::OnClose,
        None,
    )
    .expect("FirstFit serves")
}

/// Requests/sec through an in-process service: one driver thread per
/// shard, each feeding its own partition through `ServeState::handle`.
fn measure_serve_inproc(
    inst: &Instance,
    reqs: &[(u64, Request)],
    shards: usize,
    budget: Duration,
) -> (f64, u64, u32) {
    let parts = partition(reqs, shards);
    let start = Instant::now();
    let mut reps = 0u32;
    let mut fastest = Duration::MAX;
    let cost = loop {
        let state = serve_state(inst, shards);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for part in &parts {
                let state = &state;
                s.spawn(move || {
                    for req in part {
                        match state.handle(req) {
                            Response::Placed { .. } | Response::Departed { .. } => {}
                            other => panic!("serve bench rejected {req:?}: {other:?}"),
                        }
                    }
                });
            }
        });
        fastest = fastest.min(t0.elapsed());
        reps += 1;
        if reps >= 3 && start.elapsed() >= budget {
            break state
                .status()
                .usage_time
                .parse()
                .expect("bench serve costs fit in u64");
        }
    };
    (reqs.len() as f64 / fastest.as_secs_f64(), cost, reps)
}

/// Requests/sec over loopback TCP: one NDJSON connection per shard,
/// strict request/response round trips (the latency a real client
/// pays). Boot and shutdown sit outside the timed window.
fn measure_serve_tcp(
    inst: &Instance,
    reqs: &[(u64, Request)],
    shards: usize,
    budget: Duration,
) -> (f64, u64, u32) {
    let parts = partition(reqs, shards);
    let start = Instant::now();
    let mut reps = 0u32;
    let mut fastest = Duration::MAX;
    let cost = loop {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        let state = Arc::new(serve_state(inst, shards));
        let srv = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || serve(&state, &listener).expect("serve loop"))
        };
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for part in &parts {
                s.spawn(move || {
                    let conn = TcpStream::connect(addr).expect("connect loopback");
                    // Strict round trips: Nagle + delayed ACK would put
                    // a ~40ms timer on every request.
                    conn.set_nodelay(true).expect("set TCP_NODELAY");
                    let mut reader = BufReader::new(conn.try_clone().expect("clone stream"));
                    let mut writer = conn;
                    let mut line = String::new();
                    for req in part {
                        let mut out = serde_json::to_string(req).expect("request serializes");
                        out.push('\n');
                        writer.write_all(out.as_bytes()).expect("send request");
                        line.clear();
                        reader.read_line(&mut line).expect("read response");
                        let resp: Response =
                            serde_json::from_str(line.trim()).expect("parse response");
                        match resp {
                            Response::Placed { .. } | Response::Departed { .. } => {}
                            other => panic!("serve bench rejected {req:?}: {other:?}"),
                        }
                    }
                });
            }
        });
        fastest = fastest.min(t0.elapsed());
        // Stop the accept loop; the nudge connection in `serve` unblocks it.
        state.handle(&Request::Shutdown);
        let _ = TcpStream::connect(addr);
        srv.join().expect("server thread");
        reps += 1;
        if reps >= 3 && start.elapsed() >= budget {
            break state
                .status()
                .usage_time
                .parse()
                .expect("bench serve costs fit in u64");
        }
    };
    (reqs.len() as f64 / fastest.as_secs_f64(), cost, reps)
}

/// `ServeDispatch` rows: `(transport, shard counts)` per scale. The
/// shared smoke/full keys feed the regression gate (TCP rows are
/// recorded but not gated — loopback latency is too machine-dependent).
fn serve_dispatch_entries(scale: &str, budget: Duration) -> Vec<Entry> {
    let (d, n, mu) = SERVE_POINT;
    let inst = bench_instance(d, n, mu, SEED);
    let reqs = serve_requests(&inst);
    let rows: &[(&str, &[usize])] = match scale {
        "smoke" => &[("inproc", &[1, 4]), ("tcp", &[1])],
        _ => &[("inproc", &[1, 2, 4, 8]), ("tcp", &[1, 4])],
    };
    let mut entries = Vec::new();
    for &(transport, shard_counts) in rows {
        for &shards in shard_counts {
            let (rps, cost, reps) = match transport {
                "inproc" => measure_serve_inproc(&inst, &reqs, shards, budget),
                _ => measure_serve_tcp(&inst, &reqs, shards, budget),
            };
            let variant = format!("{transport}-s{shards}");
            eprintln!(
                "ServeDispatch/{variant} d={d} n={n} mu={mu}: {rps:.0} req/s ({} ops)",
                reqs.len()
            );
            entries.push(Entry {
                key: format!("ServeDispatch/{variant}/d{d}/n{n}/mu{mu}"),
                policy: "ServeDispatch".to_string(),
                variant,
                d,
                n,
                mu,
                seed: SEED,
                items_per_sec: rps,
                normalized: 0.0,
                max_concurrent_bins: 0,
                cost,
                reps,
            });
        }
    }
    entries
}

fn run_grid(scale: &str) -> Report {
    let (grid, budget): (&[(usize, usize, u64)], Duration) = match scale {
        "smoke" => (&SMOKE_GRID, Duration::from_millis(120)),
        _ => (&FULL_GRID, Duration::from_millis(400)),
    };
    let mut entries = Vec::new();
    for &(d, n, mu) in grid {
        let inst = bench_instance(d, n, mu, SEED);
        for (policy, variant) in POLICIES {
            let (ips, max_conc, cost, reps) = if variant == "seed" {
                measure_seed(&inst, seed_select(policy), budget)
            } else {
                let mut p = build_policy(policy, variant);
                measure(&inst, p.as_mut(), budget)
            };
            eprintln!("{policy}/{variant} d={d} n={n} mu={mu}: {ips:.0} items/s (m={max_conc})");
            entries.push(Entry {
                key: format!("{policy}/{variant}/d{d}/n{n}/mu{mu}"),
                policy: policy.to_string(),
                variant: variant.to_string(),
                d,
                n,
                mu,
                seed: SEED,
                items_per_sec: ips,
                normalized: 0.0,
                max_concurrent_bins: max_conc,
                cost,
                reps,
            });
        }
    }
    entries.extend(serve_dispatch_entries(scale, budget));
    // Normalize by the geometric mean over the smoke-grid keys only: the
    // smoke grid is a subset of every scale's grid, so the denominator is
    // computed from the same key set no matter the scale and normalized
    // scores stay comparable between a smoke run and a full baseline.
    let shared: Vec<f64> = entries
        .iter()
        .filter(|e| SMOKE_GRID.contains(&(e.d, e.n, e.mu)))
        .map(|e| e.items_per_sec.ln())
        .collect();
    let geo_mean = (shared.iter().sum::<f64>() / shared.len() as f64).exp();
    for e in &mut entries {
        e.normalized = e.items_per_sec / geo_mean;
    }
    Report {
        schema: "dvbp-bench-throughput/1".to_string(),
        scale: scale.to_string(),
        entries,
    }
}

/// Compares normalized scores against `baseline`; returns the offending
/// keys (regressed by more than `max_regression_pct`).
fn regressions(report: &Report, baseline: &Report, max_regression_pct: f64) -> Vec<String> {
    let floor = 1.0 - max_regression_pct / 100.0;
    let mut bad = Vec::new();
    for e in &report.entries {
        // Loopback TCP round-trip latency is dominated by the kernel and
        // scheduler, not this codebase; those rows are informational only.
        if e.variant.starts_with("tcp") {
            continue;
        }
        if let Some(b) = baseline.entries.iter().find(|b| b.key == e.key) {
            if e.normalized < b.normalized * floor {
                bad.push(format!(
                    "{}: normalized {:.3} vs baseline {:.3} (floor {:.3})",
                    e.key,
                    e.normalized,
                    b.normalized,
                    b.normalized * floor
                ));
            }
        }
    }
    bad
}

fn main() -> ExitCode {
    let mut out = String::from("BENCH_throughput.json");
    let mut baseline: Option<String> = None;
    let mut max_regression = 30.0f64;
    let mut scale = String::from("full");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--out" => out = value("--out"),
            "--baseline" => baseline = Some(value("--baseline")),
            "--max-regression" => {
                max_regression = value("--max-regression")
                    .parse()
                    .expect("--max-regression takes a percentage")
            }
            "--scale" => scale = value("--scale"),
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = run_grid(&scale);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write report");
    eprintln!("wrote {out} ({} entries)", report.entries.len());

    if let Some(path) = baseline {
        let data = std::fs::read_to_string(&path).expect("read baseline");
        let base: Report = serde_json::from_str(&data).expect("parse baseline");
        let bad = regressions(&report, &base, max_regression);
        if !bad.is_empty() {
            eprintln!("throughput regressions over {max_regression}% vs {path}:");
            for line in &bad {
                eprintln!("  {line}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!("no regression over {max_regression}% vs {path}");
    }
    ExitCode::SUCCESS
}

//! Crossover calibration for the scan-vs-index hybrid: times First Fit's
//! pure block-scan path against its pure fit-index path across a sweep of
//! steady-state open-bin counts `m` and dimension counts `d`, and prints
//! the smallest measured `m` at which the index wins.
//!
//! The per-`(m, d)` table in `dvbp_core::hybrid` is set from this
//! binary's output on an AVX2 host (see DESIGN.md "Vectorized
//! feasibility"). Rerun after kernel changes:
//!
//!   cargo run --release -p dvbp-bench --bin calibrate_hybrid
//!
//! The scan variant runs the vectorized block kernel end to end (mask
//! dispatch included); the index variant forces the segment-tree descent
//! at every arrival. Both produce identical packings, so the timing
//! difference is pure selection cost.

use dvbp_bench::bench_instance;
use dvbp_core::policy::first_fit::FirstFit;
use dvbp_core::{Engine, Instance, Policy, TraceMode};
use std::hint::black_box;
use std::time::{Duration, Instant};

const SEED: u64 = 1;
const BUDGET: Duration = Duration::from_millis(250);

/// Minimum-time estimator over warm repetitions (same protocol as
/// `bench_throughput`); returns (items/sec, max concurrent bins).
fn measure(inst: &Instance, policy: &mut dyn Policy) -> (f64, usize) {
    let mut engine = Engine::new();
    let warm = engine.pack(inst, policy, TraceMode::CostOnly);
    let max_conc = warm.max_concurrent_bins();
    let start = Instant::now();
    let mut reps = 0u32;
    let mut fastest = Duration::MAX;
    loop {
        let t0 = Instant::now();
        black_box(engine.pack(inst, policy, TraceMode::CostOnly).cost());
        fastest = fastest.min(t0.elapsed());
        reps += 1;
        if reps >= 3 && start.elapsed() >= BUDGET {
            break;
        }
    }
    (inst.len() as f64 / fastest.as_secs_f64(), max_conc)
}

fn main() {
    println!(
        "{:>3} {:>6} {:>6} {:>12} {:>12} {:>7}",
        "d", "mu", "m", "scan it/s", "index it/s", "winner"
    );
    for d in [1usize, 2, 3, 4, 5, 8, 9, 12, 16] {
        let mut crossover: Option<usize> = None;
        for mu in [60u64, 120, 250, 500, 1000, 2000, 4000] {
            // n = 4μ keeps the steady state (m ≈ 0.8μ open bins) long
            // relative to ramp-up/down.
            let n = usize::try_from(4 * mu)
                .expect("grid n fits usize")
                .max(2000);
            let inst = bench_instance(d, n, mu, SEED);
            let (scan_ips, m) = measure(&inst, &mut FirstFit::scanning());
            let (index_ips, _) = measure(&inst, &mut FirstFit::indexed());
            let winner = if index_ips > scan_ips {
                "index"
            } else {
                "scan"
            };
            if index_ips > scan_ips && crossover.is_none() {
                crossover = Some(m);
            }
            println!("{d:>3} {mu:>6} {m:>6} {scan_ips:>12.0} {index_ips:>12.0} {winner:>7}");
        }
        match crossover {
            Some(m) => println!("  -> d={d}: index first wins at m ≈ {m}"),
            None => println!("  -> d={d}: scan won everywhere measured"),
        }
    }
}

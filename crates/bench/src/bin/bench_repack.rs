//! CR-vs-migration-cost frontier emitter: every repack policy in a
//! budget ladder (none → drain:k → budgeted defrag) driven live over
//! two trace families, written as `BENCH_repack.json`.
//!
//! Each row is one deterministic live run — no wall-clock timing — so
//! the artifact is exactly reproducible: `cost` (the MinUsageTime
//! objective of the final packing, migrations included), the offline
//! load lower bound `lb_load`, their ratio `cr`, and the migration
//! counters the policy spent to get there. Reading a family's rows
//! top-to-bottom is the frontier: how much competitive ratio each
//! marginal unit of migration budget buys.
//!
//! `--baseline <file>` fails the process when any shared key's `cr`
//! regresses (grows) by more than `--max-regression` percent — the same
//! gate shape as `bench_throughput`, but on a deterministic metric, so
//! CI's smoke scale catches real packing regressions rather than
//! scheduler noise.
//!
//! Usage:
//!   bench_repack [--out FILE] [--baseline FILE]
//!                [--max-regression PCT] [--scale full|smoke]

use dvbp_bench::bench_instance;
use dvbp_core::{Instance, InstanceSource, LiveRequest, PolicyKind, RepackPolicy, TraceMode};
use dvbp_offline::lower_bounds::lb_load;
use dvbp_workloads::extended::{ArrivalDist, DurationDist, ExtendedParams, SizeDist};
use dvbp_workloads::uniform::UniformParams;
use serde::{Deserialize, Serialize};
use std::process::ExitCode;

/// One live run's outcome on the frontier.
#[derive(Debug, Serialize, Deserialize)]
struct Entry {
    /// Stable identity: `family/kind/repack/d<D>/n<N>`.
    key: String,
    family: String,
    policy: String,
    repack: String,
    d: usize,
    n: usize,
    seed: u64,
    /// MinUsageTime cost of the final packing (migrations included).
    cost: u64,
    /// Offline load lower bound of the instance (eq. 2).
    lb_load: u64,
    /// `cost / lb_load` — the row's empirical competitive ratio.
    cr: f64,
    /// Items moved by the repack policy over the run.
    migrations: u64,
    /// Total migration cost charged (unit per drain move, L1 size per
    /// defrag move).
    migration_cost: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    schema: String,
    scale: String,
    entries: Vec<Entry>,
}

/// The migration-budget ladder, cheapest first. `none` anchors the
/// irrevocable baseline every other row is read against.
const REPACKS: [RepackPolicy; 6] = [
    RepackPolicy::NoRepack,
    RepackPolicy::DrainOnDepart { k: 1 },
    RepackPolicy::DrainOnDepart { k: 2 },
    RepackPolicy::DrainOnDepart { k: 4 },
    RepackPolicy::BudgetedDefrag {
        budget: 32,
        period: 4,
    },
    RepackPolicy::BudgetedDefrag {
        budget: 128,
        period: 2,
    },
];

/// Placement kinds on the frontier (non-clairvoyant — the live engine
/// rejects duration-announced kinds).
fn kinds() -> [PolicyKind; 2] {
    [
        PolicyKind::FirstFit,
        PolicyKind::BestFit(dvbp_core::LoadMeasure::Linf),
    ]
}

const SEED: u64 = 7;

/// `(family, n)` grid per scale; the smoke grid is a subset of the full
/// grid so baseline keys always match.
fn grid(scale: &str) -> Vec<(&'static str, usize)> {
    match scale {
        "smoke" => vec![("uniform", 600), ("zipf-bursty", 600)],
        _ => vec![
            ("uniform", 600),
            ("uniform", 2400),
            ("zipf-bursty", 600),
            ("zipf-bursty", 2400),
        ],
    }
}

/// Generates one family instance at size `n`.
///
/// * `uniform` — the Table 2 shape (`bench_instance`), few large items
///   per bin: departures routinely strand 1–2 stragglers, the
///   `DrainOnDepart` regime.
/// * `zipf-bursty` — heavy-tailed sizes in bursty waves over small
///   bins: many small residents, where only the close-paced defrag
///   sweeps find whole bins to drain.
fn family_instance(family: &str, n: usize) -> Instance {
    match family {
        "uniform" => bench_instance(2, n, (n as u64) / 10, SEED),
        "zipf-bursty" => ExtendedParams {
            base: UniformParams {
                dims: 2,
                items: n,
                mu: 20,
                span: (n as u64) / 2,
                bin_size: 10,
            },
            sizes: SizeDist::Zipf { exponent: 1.2 },
            durations: DurationDist::Geometric { p: 0.3 },
            arrivals: ArrivalDist::Bursty { waves: 6, width: 3 },
        }
        .generate(SEED),
        other => panic!("unknown trace family {other}"),
    }
}

/// Drives one `(kind, repack)` cell live over `inst` and returns
/// `(cost, migrations, migration_cost)`.
fn run_cell(inst: &Instance, kind: &PolicyKind, repack: RepackPolicy) -> (u64, u64, u64) {
    let mut live = LiveRequest::new(kind.clone())
        .capacity(inst.capacity.clone())
        .trace_mode(TraceMode::CostOnly)
        .repack(repack)
        .build()
        .expect("frontier kinds are non-clairvoyant");
    let mut source = InstanceSource::new(inst).expect("bench instance valid");
    live.drive_source(&mut source).expect("live drive succeeds");
    let migrations = live.migrations();
    let migration_cost = live.migration_cost();
    let packing = live.into_packing().expect("all items departed");
    let cost = u64::try_from(packing.cost()).expect("bench costs fit in u64");
    (cost, migrations, migration_cost)
}

fn run_grid(scale: &str) -> Report {
    let mut entries = Vec::new();
    for (family, n) in grid(scale) {
        let inst = family_instance(family, n);
        let d = inst.dim();
        let lb = u64::try_from(lb_load(&inst)).expect("bench bounds fit in u64");
        for kind in kinds() {
            for repack in REPACKS {
                let (cost, migrations, migration_cost) = run_cell(&inst, &kind, repack);
                if repack == RepackPolicy::NoRepack {
                    assert_eq!(migrations, 0, "NoRepack migrated");
                }
                let cr = cost as f64 / lb as f64;
                eprintln!(
                    "{family}/{}/{} n={n}: cr {cr:.4} ({migrations} moves, cost {migration_cost})",
                    kind.name(),
                    repack.name()
                );
                entries.push(Entry {
                    key: format!("{family}/{}/{}/d{d}/n{n}", kind.name(), repack.name()),
                    family: family.to_string(),
                    policy: kind.name(),
                    repack: repack.name(),
                    d,
                    n,
                    seed: SEED,
                    cost,
                    lb_load: lb,
                    cr,
                    migrations,
                    migration_cost,
                });
            }
        }
    }
    Report {
        schema: "dvbp-bench-repack/1".to_string(),
        scale: scale.to_string(),
        entries,
    }
}

/// Keys whose `cr` grew by more than `max_regression_pct` over the
/// baseline. The metric is deterministic, so any drift at all is a real
/// behavior change; the tolerance only keeps intentional retunings from
/// needing lockstep artifact updates.
fn regressions(report: &Report, baseline: &Report, max_regression_pct: f64) -> Vec<String> {
    let ceiling = 1.0 + max_regression_pct / 100.0;
    let mut bad = Vec::new();
    for e in &report.entries {
        if let Some(b) = baseline.entries.iter().find(|b| b.key == e.key) {
            if e.cr > b.cr * ceiling {
                bad.push(format!(
                    "{}: cr {:.4} vs baseline {:.4} (ceiling {:.4})",
                    e.key,
                    e.cr,
                    b.cr,
                    b.cr * ceiling
                ));
            }
        }
    }
    bad
}

fn main() -> ExitCode {
    let mut out = String::from("BENCH_repack.json");
    let mut baseline: Option<String> = None;
    let mut max_regression = 30.0f64;
    let mut scale = String::from("full");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--out" => out = value("--out"),
            "--baseline" => baseline = Some(value("--baseline")),
            "--max-regression" => {
                max_regression = value("--max-regression")
                    .parse()
                    .expect("--max-regression takes a percentage")
            }
            "--scale" => scale = value("--scale"),
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = run_grid(&scale);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write report");
    eprintln!("wrote {out} ({} entries)", report.entries.len());

    if let Some(path) = baseline {
        let data = std::fs::read_to_string(&path).expect("read baseline");
        let base: Report = serde_json::from_str(&data).expect("parse baseline");
        let bad = regressions(&report, &base, max_regression);
        if !bad.is_empty() {
            eprintln!("repack CR regressions over {max_regression}% vs {path}:");
            for line in &bad {
                eprintln!("  {line}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!("no CR regression over {max_regression}% vs {path}");
    }
    ExitCode::SUCCESS
}

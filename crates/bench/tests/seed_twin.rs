//! The seed-engine twin in `dvbp_bench::seed_engine` must be
//! placement-identical to the optimized engine — otherwise the
//! before/after numbers in `BENCH_throughput.json` would compare
//! different algorithms.

use dvbp_bench::bench_instance;
use dvbp_bench::seed_engine::{pack_seed, SeedSelect};
use dvbp_core::policy::best_fit::BestFit;
use dvbp_core::policy::first_fit::FirstFit;
use dvbp_core::policy::last_fit::LastFit;
use dvbp_core::policy::worst_fit::WorstFit;
use dvbp_core::{LoadMeasure, PackRequest, Policy};

fn check(select: SeedSelect, policy: &mut dyn Policy) {
    for seed in 0..4 {
        let inst = bench_instance(2, 400, 80, seed);
        let optimized = PackRequest::with_policy(policy).run(&inst).unwrap();
        let twin = pack_seed(&inst, select);
        let twin_bins: Vec<usize> = optimized.assignment.iter().map(|b| b.0).collect();
        assert_eq!(twin.assignment, twin_bins, "assignment diverged");
        assert_eq!(twin.cost, optimized.cost(), "cost diverged");
        assert_eq!(
            twin.max_concurrent_bins,
            optimized.max_concurrent_bins(),
            "concurrency diverged"
        );
    }
}

#[test]
fn seed_twin_matches_first_fit() {
    check(SeedSelect::FirstFit, &mut FirstFit::new());
}

#[test]
fn seed_twin_matches_best_fit() {
    check(
        SeedSelect::BestFit(LoadMeasure::Linf),
        &mut BestFit::new(LoadMeasure::Linf),
    );
}

#[test]
fn seed_twin_matches_worst_fit() {
    check(
        SeedSelect::WorstFit(LoadMeasure::Linf),
        &mut WorstFit::new(LoadMeasure::Linf),
    );
}

#[test]
fn seed_twin_matches_last_fit() {
    check(SeedSelect::LastFit, &mut LastFit::new());
}
